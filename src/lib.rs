//! # xfrag — algebraic retrieval of XML fragments
//!
//! A production-quality Rust implementation of Pradhan, *"An Algebraic
//! Query Model for Effective and Efficient Retrieval of XML Fragments"*
//! (VLDB 2006). This facade crate re-exports the workspace:
//!
//! * [`doc`] — document trees, XML parsing, keyword indexing;
//! * [`core`] — the fragment algebra (joins, fixed points, filters,
//!   strategies, planner);
//! * [`rel`] — the relational-engine implementation of the same algebra;
//! * [`baseline`] — SLCA / ELCA / smallest-subtree baselines;
//! * [`corpus`] — the paper's running examples and synthetic generators.
//!
//! ## Quickstart
//!
//! ```
//! use xfrag::prelude::*;
//!
//! let doc = parse_str(r#"
//!   <article>
//!     <sec><title>Query optimization</title>
//!       <p>XQuery engines rewrite algebraic plans.</p>
//!       <p>Cost-based optimization of XQuery joins.</p>
//!     </sec>
//!   </article>"#).unwrap();
//! let index = InvertedIndex::build(&doc);
//! let query = Query::parse("xquery optimization", FilterExpr::MaxSize(3));
//! let result = evaluate(&doc, &index, &query, Strategy::PushDown).unwrap();
//! assert!(!result.fragments.is_empty());
//! ```

pub use xfrag_baseline as baseline;
pub use xfrag_core as core;
pub use xfrag_corpus as corpus;
pub use xfrag_doc as doc;
pub use xfrag_rel as rel;

/// The common imports for applications.
pub mod prelude {
    pub use xfrag_core::{
        evaluate, fragment_join, pairwise_join, powerset_join, select, EvalStats, FilterExpr,
        FixpointMode, Fragment, FragmentSet, LogicalPlan, Optimizer, Query, QueryResult, Strategy,
    };
    pub use xfrag_doc::{parse_str, Document, DocumentBuilder, InvertedIndex, NodeId};
}
