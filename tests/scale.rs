//! Moderate-scale sanity tests: the engine on documents one to two
//! orders of magnitude larger than the paper's example. These stay fast
//! enough for the default test run; the `#[ignore]`d ones push further
//! and run with `cargo test -- --ignored`.

use xfrag::core::{evaluate, FilterExpr, Query, Strategy};
use xfrag::corpus::docgen::{generate, DocGenConfig};
use xfrag::doc::InvertedIndex;

fn fixture(nodes: usize, df: usize, seed: u64) -> (xfrag::doc::Document, InvertedIndex) {
    let cfg = DocGenConfig {
        seed,
        ..DocGenConfig::default()
    }
    .with_approx_nodes(nodes)
    .plant_near("needleone", "needletwo", 1)
    .plant("needleone", df.saturating_sub(1))
    .plant("needletwo", df.saturating_sub(1));
    let doc = generate(&cfg);
    let idx = InvertedIndex::build(&doc);
    (doc, idx)
}

#[test]
fn ten_thousand_nodes_under_filter() {
    let (doc, idx) = fixture(10_000, 8, 21);
    let q = Query::new(["needleone", "needletwo"], FilterExpr::MaxSize(4));
    let push = evaluate(&doc, &idx, &q, Strategy::PushDown).unwrap();
    let naive = evaluate(&doc, &idx, &q, Strategy::FixedPointNaive).unwrap();
    assert_eq!(push.fragments, naive.fragments);
    assert!(!push.fragments.is_empty());
    // Push-down's join work stays small even at this scale.
    assert!(push.stats.joins < naive.stats.joins / 5);
    // Answers respect the filter.
    for f in push.fragments.iter() {
        assert!(f.size() <= 4);
    }
}

#[test]
fn deep_chain_document() {
    // A pathological 3000-deep chain (recursion-free code paths only).
    let mut b = xfrag::doc::DocumentBuilder::new();
    for i in 0..3_000 {
        b.begin(format!("lvl{i}"));
    }
    b.text("needleone needletwo");
    for _ in 0..3_000 {
        b.end();
    }
    let doc = b.finish().unwrap();
    let idx = InvertedIndex::build(&doc);
    let q = Query::new(["needleone", "needletwo"], FilterExpr::MaxSize(2));
    let r = evaluate(&doc, &idx, &q, Strategy::PushDown).unwrap();
    assert_eq!(r.fragments.len(), 1);
    assert_eq!(r.fragments.iter().next().unwrap().size(), 1);
}

#[test]
fn wide_star_document() {
    // 5000 siblings; the two needles in two of them.
    let mut b = xfrag::doc::DocumentBuilder::new();
    b.begin("root");
    for i in 0..5_000 {
        b.leaf(
            "p",
            if i == 17 {
                "needleone"
            } else if i == 4_200 {
                "needletwo"
            } else {
                "x"
            },
        );
    }
    b.end();
    let doc = b.finish().unwrap();
    let idx = InvertedIndex::build(&doc);
    let q = Query::new(["needleone", "needletwo"], FilterExpr::True);
    let r = evaluate(&doc, &idx, &q, Strategy::FixedPointReduced).unwrap();
    // Single answer: the two leaves plus the root.
    assert_eq!(r.fragments.len(), 1);
    assert_eq!(r.fragments.iter().next().unwrap().size(), 3);
}

#[test]
#[ignore = "heavy: ~100k nodes; run with cargo test -- --ignored"]
fn hundred_thousand_nodes() {
    let (doc, idx) = fixture(100_000, 12, 33);
    assert!(doc.len() > 50_000);
    let q = Query::new(["needleone", "needletwo"], FilterExpr::MaxSize(4));
    let r = evaluate(&doc, &idx, &q, Strategy::PushDown).unwrap();
    assert!(!r.fragments.is_empty());
}

#[test]
#[ignore = "heavy: relational engine on 20k nodes; run with cargo test -- --ignored"]
fn relational_at_scale() {
    use xfrag::rel::{encode_document, evaluate_relational};
    let (doc, idx) = fixture(20_000, 4, 55);
    let db = encode_document(&doc);
    let q = Query::new(["needleone", "needletwo"], FilterExpr::MaxSize(4));
    let native = evaluate(&doc, &idx, &q, Strategy::PushDown).unwrap();
    let rel = evaluate_relational(&db, &doc, &q).unwrap();
    assert_eq!(rel, native.fragments);
}
