//! Cache-equivalence differential suite: evaluation through the
//! generation-keyed [`QueryCache`] must be **observably identical** to
//! evaluation without it — same fragments (byte-identical), same
//! degradation report, same compute counters (modulo the cache's own
//! hit/miss bookkeeping) — across every strategy, budget policy, and
//! injected fault. A cache that changes any answer is a correctness bug,
//! not a performance feature.
//!
//! Also pins the two key-soundness guarantees from the issue:
//! term-order-insensitive result keys (`Q{a,b}` and `Q{b,a}` share one
//! entry) and rung-in-key isolation (a degraded answer stored under a
//! tight budget never satisfies a full-budget request).

use std::sync::Arc;

use xfrag::core::fault::site;
use xfrag::core::{
    evaluate_budgeted_cached_traced, Budget, CacheRef, DegradeMode, EvalStats, ExecPolicy,
    FaultAction, FaultPlan, FilterExpr, GenerationTag, Query, QueryCache, QueryError, QueryResult,
    Strategy, Tracer,
};
use xfrag::doc::{Document, DocumentBuilder, InvertedIndex};

/// A deterministic tree from a parent-choice vector, with tags cycling
/// through `alpha`/`beta`/`gamma` so every keyword has several postings.
fn build_doc(choices: &[usize]) -> Document {
    let n = choices.len() + 1;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &c) in choices.iter().enumerate() {
        children[c % (i + 1)].push(i + 1);
    }
    const TAGS: [&str; 3] = ["alpha", "beta", "gamma"];
    let mut b = DocumentBuilder::new();
    fn emit(b: &mut DocumentBuilder, children: &[Vec<usize>], v: usize) {
        b.begin(TAGS[v % 3]);
        for &c in &children[v] {
            emit(b, children, c);
        }
        b.end();
    }
    emit(&mut b, &children, 0);
    b.finish().expect("choice vector encodes a valid tree")
}

/// The corpus of documents the whole suite runs against: a path, a star,
/// a bushy tree and two irregular shapes.
fn corpus() -> Vec<Document> {
    vec![
        build_doc(&[0, 1, 2, 3, 4, 5]),
        build_doc(&[0, 0, 0, 0, 0, 0]),
        build_doc(&[0, 0, 1, 1, 2, 2, 3, 3]),
        build_doc(&[0, 1, 0, 2, 1, 3, 0, 5]),
        build_doc(&[0, 1, 1, 0, 4, 4, 2, 7, 3]),
    ]
}

fn queries() -> Vec<Query> {
    vec![
        Query::new(["alpha".to_string(), "beta".to_string()], FilterExpr::True),
        Query::new(
            ["alpha".to_string(), "beta".to_string(), "gamma".to_string()],
            FilterExpr::MaxSize(5),
        ),
        Query::new(["gamma".to_string()], FilterExpr::MaxHeight(2)),
        Query::new(
            ["beta".to_string(), "gamma".to_string()],
            FilterExpr::and([FilterExpr::MaxSize(6), FilterExpr::MaxWidth(3)]),
        ),
    ]
}

/// One evaluation, cached or not, under a freshly built policy (fresh so
/// fault injectors restart their hit counters every pass).
fn run(
    doc: &Document,
    idx: &InvertedIndex,
    q: &Query,
    s: Strategy,
    policy: &ExecPolicy,
    cache: Option<CacheRef<'_>>,
) -> Result<QueryResult, QueryError> {
    evaluate_budgeted_cached_traced(doc, idx, q, s, policy, &Tracer::disabled(), cache)
}

/// Assert the cached pipeline (cold fill, then warm replay) is observably
/// identical to the uncached one under `mk_policy`.
fn assert_differential(
    doc: &Document,
    idx: &InvertedIndex,
    q: &Query,
    s: Strategy,
    mk_policy: &dyn Fn() -> ExecPolicy,
    label: &str,
) {
    let uncached = run(doc, idx, q, s, &mk_policy(), None);
    let cache = QueryCache::with_capacity_mb(8);
    let generation = GenerationTag::fresh();
    let cref = CacheRef {
        cache: &cache,
        gen: generation,
        doc: 0,
    };
    let cold = run(doc, idx, q, s, &mk_policy(), Some(cref));
    let warm = run(doc, idx, q, s, &mk_policy(), Some(cref));

    match (&uncached, &cold, &warm) {
        (Ok(u), Ok(c), Ok(w)) => {
            // Byte-identical answers: structural equality AND an identical
            // rendered form (insertion order included).
            assert_eq!(u.fragments, c.fragments, "{label}: cold fragments diverge");
            assert_eq!(u.fragments, w.fragments, "{label}: warm fragments diverge");
            assert_eq!(
                format!("{:?}", u.fragments),
                format!("{:?}", w.fragments),
                "{label}: warm rendering diverges"
            );
            assert_eq!(
                u.degradation, c.degradation,
                "{label}: cold degradation diverges"
            );
            assert_eq!(
                u.degradation, w.degradation,
                "{label}: warm degradation diverges"
            );
            // Compute counters match exactly once the cache's own
            // bookkeeping is stripped — the replay contract.
            assert_eq!(
                u.stats.without_cache_counters(),
                c.stats.without_cache_counters(),
                "{label}: cold stats diverge"
            );
            assert_eq!(
                u.stats.without_cache_counters(),
                w.stats.without_cache_counters(),
                "{label}: warm stats diverge"
            );
            assert_eq!(u.stats.cache_hits, 0, "{label}: uncached run counted a hit");
        }
        (Err(ue), Err(ce), Err(we)) => {
            assert_eq!(ue, ce, "{label}: cold error diverges");
            assert_eq!(ue, we, "{label}: warm error diverges");
        }
        _ => panic!(
            "{label}: cached and uncached disagree on success: \
             uncached={uncached:?} cold={cold:?} warm={warm:?}"
        ),
    }
}

/// A labelled policy constructor; fresh per pass so fault hit counters
/// restart.
type PolicyCase = (&'static str, Box<dyn Fn() -> ExecPolicy>);

/// The policy matrix: unlimited, tight work budgets with degradation off
/// and on, and deterministic fault injections at the evaluation site.
fn policies() -> Vec<PolicyCase> {
    vec![
        ("unlimited", Box::new(ExecPolicy::unlimited)),
        (
            "tight-joins-off",
            Box::new(|| ExecPolicy::with_budget(Budget::unlimited().with_max_joins(3))),
        ),
        (
            "tight-joins-ladder",
            Box::new(|| {
                ExecPolicy::with_budget(Budget::unlimited().with_max_joins(3))
                    .with_degrade(DegradeMode::Ladder)
            }),
        ),
        (
            "tight-fragments-ladder",
            Box::new(|| {
                ExecPolicy::with_budget(Budget::unlimited().with_max_fragments(4))
                    .with_degrade(DegradeMode::Ladder)
            }),
        ),
        (
            "fault-cancel",
            Box::new(|| {
                let inj: Arc<_> = FaultPlan::new()
                    .arm(site::QUERY_EVAL, 1, FaultAction::Cancel)
                    .build();
                ExecPolicy::unlimited().with_fault(inj)
            }),
        ),
        (
            "fault-delay",
            Box::new(|| {
                let inj: Arc<_> = FaultPlan::new()
                    .arm(
                        site::QUERY_EVAL,
                        1,
                        FaultAction::Delay(std::time::Duration::ZERO),
                    )
                    .build();
                ExecPolicy::unlimited().with_fault(inj)
            }),
        ),
    ]
}

/// The full differential matrix: every document × query × strategy ×
/// policy. ~480 triples, each run three times (uncached, cold, warm).
#[test]
fn cached_equals_uncached_across_strategies_policies_and_faults() {
    for doc in corpus() {
        let idx = InvertedIndex::build(&doc);
        for q in queries() {
            for s in Strategy::ALL {
                for (name, mk) in &policies() {
                    let label = format!(
                        "doc={} q={:?} strategy={} policy={name}",
                        doc.len(),
                        q.terms,
                        s.name()
                    );
                    assert_differential(&doc, &idx, &q, s, mk.as_ref(), &label);
                }
            }
        }
    }
}

/// Warm replays actually hit: the second identical request is served from
/// the result tier and says so in its stats.
#[test]
fn warm_pass_reports_result_tier_hit() {
    let doc = build_doc(&[0, 0, 1, 1, 2, 2]);
    let idx = InvertedIndex::build(&doc);
    let q = Query::new(["alpha".to_string(), "beta".to_string()], FilterExpr::True);
    let cache = QueryCache::with_capacity_mb(8);
    let cref = CacheRef {
        cache: &cache,
        gen: GenerationTag::fresh(),
        doc: 0,
    };
    let policy = ExecPolicy::unlimited();

    let cold = run(
        &doc,
        &idx,
        &q,
        Strategy::FixedPointReduced,
        &policy,
        Some(cref),
    )
    .unwrap();
    assert_eq!(cold.stats.cache_hits, 0);
    assert!(
        cold.stats.cache_misses >= 1,
        "cold pass must count its misses"
    );

    let warm = run(
        &doc,
        &idx,
        &q,
        Strategy::FixedPointReduced,
        &policy,
        Some(cref),
    )
    .unwrap();
    assert!(warm.stats.cache_hits >= 1, "warm pass must count its hit");
    assert_eq!(
        cache.stats().result.hits,
        1,
        "result tier records exactly one hit"
    );
}

/// Issue satellite: result keys normalize term order and multiplicity, so
/// `Q{a,b}`, `Q{b,a}` and `Q{b,a,b}` share one cache entry.
#[test]
fn result_key_is_term_order_insensitive() {
    let doc = build_doc(&[0, 0, 1, 1, 2, 2, 3]);
    let idx = InvertedIndex::build(&doc);
    let cache = QueryCache::with_capacity_mb(8);
    let cref = CacheRef {
        cache: &cache,
        gen: GenerationTag::fresh(),
        doc: 0,
    };
    let policy = ExecPolicy::unlimited();

    let ab = Query::new(["alpha".to_string(), "beta".to_string()], FilterExpr::True);
    let ba = Query::new(["beta".to_string(), "alpha".to_string()], FilterExpr::True);
    let bab = Query::new(
        ["beta".to_string(), "alpha".to_string(), "beta".to_string()],
        FilterExpr::True,
    );

    let first = run(&doc, &idx, &ab, Strategy::PushDown, &policy, Some(cref)).unwrap();
    let second = run(&doc, &idx, &ba, Strategy::PushDown, &policy, Some(cref)).unwrap();
    let third = run(&doc, &idx, &bab, Strategy::PushDown, &policy, Some(cref)).unwrap();

    assert!(
        second.stats.cache_hits >= 1,
        "Q{{b,a}} must hit Q{{a,b}}'s entry"
    );
    assert!(
        third.stats.cache_hits >= 1,
        "duplicate terms must not change the key"
    );
    assert_eq!(first.fragments, second.fragments);
    assert_eq!(first.fragments, third.fragments);
    assert_eq!(cache.stats().result.hits, 2);
}

/// Issue satellite: the degradation rung is part of the result key. A
/// degraded answer produced under a tight deterministic budget must never
/// be replayed for a full-budget request — which gets the exact answer.
#[test]
fn degraded_entry_never_serves_full_budget_request() {
    let doc = build_doc(&[0, 0, 1, 1, 2, 2, 3, 3]);
    let idx = InvertedIndex::build(&doc);
    let q = Query::new(["alpha".to_string(), "beta".to_string()], FilterExpr::True);
    let cache = QueryCache::with_capacity_mb(8);
    let cref = CacheRef {
        cache: &cache,
        gen: GenerationTag::fresh(),
        doc: 0,
    };

    let tight = ExecPolicy::with_budget(Budget::unlimited().with_max_joins(2))
        .with_degrade(DegradeMode::Ladder);
    let degraded = run(
        &doc,
        &idx,
        &q,
        Strategy::FixedPointNaive,
        &tight,
        Some(cref),
    )
    .unwrap();
    assert!(
        degraded.degradation.is_degraded(),
        "tight budget must degrade this query"
    );

    // Same tight policy again: the degraded entry IS replayable (same
    // expectations), and replays with its degradation report intact.
    let replay = run(
        &doc,
        &idx,
        &q,
        Strategy::FixedPointNaive,
        &tight,
        Some(cref),
    )
    .unwrap();
    assert!(replay.stats.cache_hits >= 1);
    assert_eq!(replay.degradation, degraded.degradation);
    assert_eq!(replay.fragments, degraded.fragments);

    // Full-budget request: different fingerprint, different key — the
    // exact answer is computed, never the degraded leftovers.
    let full = run(
        &doc,
        &idx,
        &q,
        Strategy::FixedPointNaive,
        &ExecPolicy::unlimited(),
        Some(cref),
    )
    .unwrap();
    assert!(!full.degradation.is_degraded());
    let exact = run(
        &doc,
        &idx,
        &q,
        Strategy::FixedPointNaive,
        &ExecPolicy::unlimited(),
        None,
    )
    .unwrap();
    assert_eq!(full.fragments, exact.fragments);
    for f in degraded.fragments.iter() {
        assert!(
            exact.fragments.contains(f),
            "degraded answer must be a subset of exact"
        );
    }
}

/// A new generation tag is a different key space: entries filled under one
/// generation are invisible to the next (implicit invalidation), and the
/// stale generation's entries stop being served.
#[test]
fn generation_bump_invalidates_implicitly() {
    let doc = build_doc(&[0, 0, 1, 1, 2]);
    let idx = InvertedIndex::build(&doc);
    let q = Query::new(["alpha".to_string(), "gamma".to_string()], FilterExpr::True);
    let cache = QueryCache::with_capacity_mb(8);
    let policy = ExecPolicy::unlimited();

    let gen1 = GenerationTag::fresh();
    let old = CacheRef {
        cache: &cache,
        gen: gen1,
        doc: 0,
    };
    run(&doc, &idx, &q, Strategy::PushDown, &policy, Some(old)).unwrap();
    let hit = run(&doc, &idx, &q, Strategy::PushDown, &policy, Some(old)).unwrap();
    assert!(hit.stats.cache_hits >= 1);
    let hits_before = cache.stats().result.hits;

    let gen2 = GenerationTag::fresh();
    assert_ne!(gen1.as_u64(), gen2.as_u64());
    let fresh = CacheRef {
        cache: &cache,
        gen: gen2,
        doc: 0,
    };
    let after = run(&doc, &idx, &q, Strategy::PushDown, &policy, Some(fresh)).unwrap();
    assert_eq!(
        cache.stats().result.hits,
        hits_before,
        "a new generation must not hit the old generation's entries"
    );
    assert!(after.stats.cache_misses >= 1);
    // But the new generation caches normally from then on.
    let again = run(&doc, &idx, &q, Strategy::PushDown, &policy, Some(fresh)).unwrap();
    assert!(again.stats.cache_hits >= 1);
}

/// EvalStats arithmetic sanity for the two new counters: they accumulate
/// and strip exactly as documented.
#[test]
fn cache_counters_strip_cleanly() {
    let mut a = EvalStats::new();
    a.cache_hits = 3;
    a.cache_misses = 5;
    a.joins = 7;
    let stripped = a.without_cache_counters();
    assert_eq!(stripped.cache_hits, 0);
    assert_eq!(stripped.cache_misses, 0);
    assert_eq!(stripped.joins, 7);
    let rendered = format!("{a}");
    assert!(
        rendered.contains("cache_hits=3"),
        "Display must show cache counters: {rendered}"
    );
    assert!(rendered.contains("cache_misses=5"));
}
