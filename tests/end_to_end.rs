//! Whole-pipeline tests: raw XML text in, answer fragments as XML out.

use xfrag::core::{evaluate, FilterExpr, Query, Strategy};
use xfrag::doc::serialize::{fragment_to_xml, WriteOptions};
use xfrag::doc::{parse_str, InvertedIndex};

const ARTICLE: &str = r#"<?xml version="1.0"?>
<article>
  <title>Fragment retrieval</title>
  <section>
    <title>Processing</title>
    <subsection>
      <par>XQuery processors apply algebraic optimization.</par>
      <par>XQuery plans are rewritten for efficiency.</par>
    </subsection>
    <par>Unrelated material about storage layouts.</par>
  </section>
</article>"#;

#[test]
fn parse_query_serialize_roundtrip() {
    let doc = parse_str(ARTICLE).unwrap();
    let idx = InvertedIndex::build(&doc);
    let q = Query::parse("XQuery optimization", FilterExpr::MaxSize(4));
    let r = evaluate(&doc, &idx, &q, Strategy::PushDown).unwrap();
    assert!(!r.fragments.is_empty());

    // The best (maximal) answer contains the whole subsection.
    let best = xfrag::core::overlap::maximal_only(&r.fragments);
    let f = best.iter().next().unwrap();
    let xml = fragment_to_xml(&doc, f.nodes(), WriteOptions { indent: None });
    assert!(xml.contains("XQuery processors"));
    // Re-parse of the fragment is well-formed XML.
    let frag_doc = parse_str(&xml).unwrap();
    assert!(frag_doc.len() >= 2);
}

#[test]
fn queries_with_unicode_and_case() {
    let doc = parse_str("<d><p>Größe naïve</p><p>NAÏVE</p></d>").unwrap();
    let idx = InvertedIndex::build(&doc);
    let q = Query::parse("naïve größe", FilterExpr::True);
    let r = evaluate(&doc, &idx, &q, Strategy::FixedPointNaive).unwrap();
    assert!(!r.fragments.is_empty());
}

#[test]
fn malformed_xml_is_rejected_cleanly() {
    for bad in ["<a><b></a>", "", "<a>&bogus;</a>", "<a x='1' x='2'/>"] {
        assert!(parse_str(bad).is_err(), "{bad:?} should fail to parse");
    }
}

#[test]
fn single_node_document_query() {
    let doc = parse_str("<note>meeting agenda</note>").unwrap();
    let idx = InvertedIndex::build(&doc);
    let q = Query::parse("meeting agenda", FilterExpr::True);
    let r = evaluate(&doc, &idx, &q, Strategy::BruteForce).unwrap();
    assert_eq!(r.fragments.len(), 1);
    assert_eq!(r.fragments.iter().next().unwrap().size(), 1);
}
