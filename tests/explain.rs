//! Figure 5 reproduction: the initial query evaluation tree vs the
//! push-down tree, rendered by the planner, and the equivalence of every
//! optimization stage end-to-end through the interpreter.

use xfrag::core::cost::CostModel;
use xfrag::core::plan::{execute, PowersetToFixpoint, PushDownSelection};
use xfrag::core::{
    evaluate, EvalStats, FilterExpr, LogicalPlan, Optimizer, OptimizerRule, Query, Strategy,
};
use xfrag::corpus::figure1;
use xfrag::doc::InvertedIndex;

#[test]
fn figure5_trees_render() {
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
    // Figure 5 (a): σ_Pa over the join of the expanded operand joins.
    let initial = PowersetToFixpoint.apply(LogicalPlan::for_query(&q).unwrap());
    let a = initial.render();
    assert!(a.starts_with("σ[size≤3]"), "{a}");
    assert!(a.contains("⋈ (pairwise)"));
    assert!(a.contains("σ[keyword=xquery](nodes(D))"));

    // Figure 5 (b): selections pushed below the joins.
    let pushed = PushDownSelection.apply(initial);
    let b = pushed.render();
    // The size filter now guards both operand branches and the join.
    assert!(b.matches("σ[size≤3]").count() >= 3, "{b}");
    let kw_pos = b.find("keyword=xquery").unwrap();
    let push_pos = b[..kw_pos].rfind("σ[size≤3]").unwrap();
    assert!(push_pos > 0, "a pushed selection precedes the keyword leaf");
}

#[test]
fn optimizer_pipeline_equivalent_on_figure1() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));

    let oracle = evaluate(d, &idx, &q, Strategy::BruteForce)
        .unwrap()
        .fragments;
    let optimizer = Optimizer::standard(d, &idx, CostModel::default());
    let trace = optimizer.optimize_traced(LogicalPlan::for_query(&q).unwrap());
    assert_eq!(trace.len(), 4);

    let mut join_counts = Vec::new();
    for (stage, plan) in &trace {
        let mut st = EvalStats::new();
        let got = execute(plan, d, &idx, &mut st).unwrap();
        assert_eq!(&got, &oracle, "stage {stage}");
        join_counts.push((stage.clone(), st.joins));
    }
    // The fully-optimized plan does no more join work than the initial one.
    let initial = join_counts.first().unwrap().1;
    let final_ = join_counts.last().unwrap().1;
    assert!(
        final_ <= initial,
        "optimized plan regressed: {join_counts:?}"
    );
}

#[test]
fn mixed_filter_split_in_plan() {
    // size ≤ 4 (anti-monotonic) ∧ size ≥ 2 (not): only the former is
    // pushed; the latter must remain exactly once, on top.
    let q = Query::new(
        ["xquery", "optimization"],
        FilterExpr::and([FilterExpr::MaxSize(4), FilterExpr::MinSize(2)]),
    );
    let plan =
        PushDownSelection.apply(PowersetToFixpoint.apply(LogicalPlan::for_query(&q).unwrap()));
    let r = plan.render();
    assert_eq!(r.matches("size≥2").count(), 1, "{r}");
    assert!(r.matches("size≤4").count() >= 3, "{r}");

    // And it still evaluates correctly.
    let fig = figure1();
    let idx = InvertedIndex::build(&fig.doc);
    let mut st = EvalStats::new();
    let got = execute(&plan, &fig.doc, &idx, &mut st).unwrap();
    let oracle = evaluate(&fig.doc, &idx, &q, Strategy::FixedPointNaive)
        .unwrap()
        .fragments;
    assert_eq!(got, oracle);
    // size ≥ 2 removes ⟨n17⟩ from the Table 1 answer: 3 fragments remain.
    assert_eq!(got.len(), 3);
}
