//! Delta carry-over differential suite (ISSUE 6 acceptance bar): after
//! [`QueryCache::carry_over`] rekeys a generation's entries to a new
//! [`GenerationTag`], a warm hit on a carried entry must be **observably
//! identical** to evaluating the same document cold with no cache at
//! all — byte-identical fragments (structural equality and rendered
//! form), identical degradation reports, and identical compute counters
//! including budget checkpoints, once the cache's own hit/miss
//! bookkeeping is stripped. This holds across every strategy, every
//! budget policy (degradation ladder rungs included), and deterministic
//! fault injection; documents outside the carry map (changed/removed)
//! must miss and recompute, never replay stale bytes.

use std::collections::HashMap;
use std::sync::Arc;

use xfrag::core::fault::site;
use xfrag::core::{
    evaluate_budgeted_cached_traced, Budget, CacheRef, DegradeMode, ExecPolicy, FaultAction,
    FaultPlan, FilterExpr, GenerationTag, Query, QueryCache, QueryError, QueryResult, Strategy,
    Tracer,
};
use xfrag::doc::{Document, DocumentBuilder, InvertedIndex};

/// A deterministic tree from a parent-choice vector, with tags cycling
/// through `alpha`/`beta`/`gamma` so every keyword has several postings.
fn build_doc(choices: &[usize]) -> Document {
    let n = choices.len() + 1;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &c) in choices.iter().enumerate() {
        children[c % (i + 1)].push(i + 1);
    }
    const TAGS: [&str; 3] = ["alpha", "beta", "gamma"];
    let mut b = DocumentBuilder::new();
    fn emit(b: &mut DocumentBuilder, children: &[Vec<usize>], v: usize) {
        b.begin(TAGS[v % 3]);
        for &c in &children[v] {
            emit(b, children, c);
        }
        b.end();
    }
    emit(&mut b, &children, 0);
    b.finish().expect("choice vector encodes a valid tree")
}

/// Four distinct shapes: doc 0 plays the "changed" document (no carry
/// mapping), docs 1..4 are carried across the generation bump.
fn corpus() -> Vec<Document> {
    vec![
        build_doc(&[0, 1, 2, 3, 4, 5]),
        build_doc(&[0, 0, 0, 0, 0, 0]),
        build_doc(&[0, 0, 1, 1, 2, 2, 3, 3]),
        build_doc(&[0, 1, 0, 2, 1, 3, 0, 5]),
    ]
}

fn queries() -> Vec<Query> {
    vec![
        Query::new(["alpha".to_string(), "beta".to_string()], FilterExpr::True),
        Query::new(
            ["alpha".to_string(), "beta".to_string(), "gamma".to_string()],
            FilterExpr::MaxSize(5),
        ),
        Query::new(["gamma".to_string()], FilterExpr::MaxHeight(2)),
    ]
}

fn run(
    doc: &Document,
    idx: &InvertedIndex,
    q: &Query,
    s: Strategy,
    policy: &ExecPolicy,
    cache: Option<CacheRef<'_>>,
) -> Result<QueryResult, QueryError> {
    evaluate_budgeted_cached_traced(doc, idx, q, s, policy, &Tracer::disabled(), cache)
}

/// A labelled policy constructor; fresh per pass so fault hit counters
/// restart.
type PolicyCase = (&'static str, Box<dyn Fn() -> ExecPolicy>);

/// Unlimited, tight budgets with the degradation ladder off and on
/// (rung-bearing entries must carry with their rung), and deterministic
/// fault injection at the evaluation site (fault replay).
fn policies() -> Vec<PolicyCase> {
    vec![
        ("unlimited", Box::new(ExecPolicy::unlimited)),
        (
            "tight-joins-off",
            Box::new(|| ExecPolicy::with_budget(Budget::unlimited().with_max_joins(3))),
        ),
        (
            "tight-joins-ladder",
            Box::new(|| {
                ExecPolicy::with_budget(Budget::unlimited().with_max_joins(3))
                    .with_degrade(DegradeMode::Ladder)
            }),
        ),
        (
            "tight-fragments-ladder",
            Box::new(|| {
                ExecPolicy::with_budget(Budget::unlimited().with_max_fragments(4))
                    .with_degrade(DegradeMode::Ladder)
            }),
        ),
        (
            "fault-cancel",
            Box::new(|| {
                let inj: Arc<_> = FaultPlan::new()
                    .arm(site::QUERY_EVAL, 1, FaultAction::Cancel)
                    .build();
                ExecPolicy::unlimited().with_fault(inj)
            }),
        ),
    ]
}

/// The carry map used throughout: doc 0 changed (evicted), docs 1.. are
/// carried with shifted ids so the rekey path is exercised, not just the
/// same-id keep path.
fn carry_map(n: usize) -> HashMap<u32, u32> {
    (1..n as u32).map(|i| (i, i + 3)).collect()
}

/// Post-carry doc id for document `i` under the new generation.
fn new_id(i: usize) -> u32 {
    if i == 0 {
        9 // the "changed" doc gets a fresh id with no carried entries
    } else {
        i as u32 + 3
    }
}

/// The full matrix: every query × strategy × policy fills the cache for
/// all documents under generation A, carries to generation B, then
/// asserts every post-carry evaluation — carried hit or changed-doc
/// miss — is observably identical to uncached evaluation.
#[test]
fn carried_hits_are_byte_identical_to_cold_evaluation() {
    let docs = corpus();
    let idxs: Vec<InvertedIndex> = docs.iter().map(InvertedIndex::build).collect();
    for q in queries() {
        for s in Strategy::ALL {
            for (name, mk) in &policies() {
                let cache = QueryCache::with_capacity_mb(8);
                let gen_a = GenerationTag::fresh();
                let gen_b = GenerationTag::fresh();
                for (i, doc) in docs.iter().enumerate() {
                    let _ = run(
                        doc,
                        &idxs[i],
                        &q,
                        s,
                        &mk(),
                        Some(CacheRef {
                            cache: &cache,
                            gen: gen_a,
                            doc: i as u32,
                        }),
                    );
                }
                cache.carry_over(gen_a, gen_b, &carry_map(docs.len()));
                for (i, doc) in docs.iter().enumerate() {
                    let label = format!(
                        "doc={i} q={:?} strategy={} policy={name}",
                        q.terms,
                        s.name()
                    );
                    let uncached = run(doc, &idxs[i], &q, s, &mk(), None);
                    let carried = run(
                        doc,
                        &idxs[i],
                        &q,
                        s,
                        &mk(),
                        Some(CacheRef {
                            cache: &cache,
                            gen: gen_b,
                            doc: new_id(i),
                        }),
                    );
                    match (&uncached, &carried) {
                        (Ok(u), Ok(c)) => {
                            assert_eq!(u.fragments, c.fragments, "{label}: fragments diverge");
                            assert_eq!(
                                format!("{:?}", u.fragments),
                                format!("{:?}", c.fragments),
                                "{label}: rendering diverges"
                            );
                            assert_eq!(
                                u.degradation, c.degradation,
                                "{label}: degradation diverges"
                            );
                            assert_eq!(
                                u.stats.without_cache_counters(),
                                c.stats.without_cache_counters(),
                                "{label}: stats diverge"
                            );
                        }
                        (Err(ue), Err(ce)) => {
                            assert_eq!(ue, ce, "{label}: error diverges");
                        }
                        _ => panic!(
                            "{label}: carried and uncached disagree on success: \
                             uncached={uncached:?} carried={carried:?}"
                        ),
                    }
                }
            }
        }
    }
}

/// Counter-level proof that the carry actually happened: kept entries
/// hit under the same doc id, rekeyed entries hit under their new id,
/// and the changed document misses and re-caches under the new
/// generation without resurrecting old bytes.
#[test]
fn carry_over_splits_hits_by_the_changed_set() {
    let docs = corpus();
    let idxs: Vec<InvertedIndex> = docs.iter().map(InvertedIndex::build).collect();
    let q = Query::new(["alpha".to_string(), "beta".to_string()], FilterExpr::True);
    let policy = ExecPolicy::unlimited();
    let cache = QueryCache::with_capacity_mb(8);
    let gen_a = GenerationTag::fresh();
    let gen_b = GenerationTag::fresh();
    let s = Strategy::FixedPointReduced;

    let mut cold = Vec::new();
    for (i, doc) in docs.iter().enumerate() {
        let r = run(
            doc,
            &idxs[i],
            &q,
            s,
            &policy,
            Some(CacheRef {
                cache: &cache,
                gen: gen_a,
                doc: i as u32,
            }),
        )
        .unwrap();
        assert_eq!(r.stats.cache_hits, 0, "doc {i}: fill pass must be cold");
        cold.push(r);
    }

    // Doc 1 keeps its id, docs 2.. are rekeyed, doc 0 is dropped.
    let co = cache.carry_over(gen_a, gen_b, &carry_map(docs.len()));
    assert!(
        co.kept == 0,
        "ids all shifted, nothing kept in place: {co:?}"
    );
    assert!(co.rekeyed > 0, "{co:?}");
    assert!(co.evicted > 0, "changed doc should lose entries: {co:?}");

    let hits_before = cache.stats().result.hits;
    for (i, doc) in docs.iter().enumerate() {
        let r = run(
            doc,
            &idxs[i],
            &q,
            s,
            &policy,
            Some(CacheRef {
                cache: &cache,
                gen: gen_b,
                doc: new_id(i),
            }),
        )
        .unwrap();
        assert_eq!(r.fragments, cold[i].fragments, "doc {i}");
        if i == 0 {
            assert_eq!(
                r.stats.cache_hits, 0,
                "changed doc must miss: {:?}",
                r.stats
            );
        } else {
            assert!(r.stats.cache_hits >= 1, "carried doc {i} must hit");
        }
    }
    assert_eq!(
        cache.stats().result.hits - hits_before,
        (docs.len() - 1) as u64,
        "exactly the carried documents hit the result tier"
    );

    // The old generation's key space is dead: replaying under gen A
    // cannot hit anything (its entries moved or died).
    let hits_now = cache.stats().result.hits;
    let r = run(
        &docs[1],
        &idxs[1],
        &q,
        s,
        &policy,
        Some(CacheRef {
            cache: &cache,
            gen: gen_a,
            doc: 1,
        }),
    )
    .unwrap();
    assert_eq!(r.stats.cache_hits, 0, "old generation hit after carry");
    assert_eq!(cache.stats().result.hits, hits_now);
}
