//! Tracing must be observationally free: evaluation with a recording
//! tracer returns exactly the fragments and [`EvalStats`] of untraced
//! evaluation (spans only snapshot counters, never mutate them), and the
//! no-op tracer adds no observable work. Checked across all four §4
//! strategies, on the Figure 1 document and generated corpora.

use xfrag::core::trace::{render_spans, spans_to_json, LatencyHistogram, RecordingSink, Tracer};
use xfrag::core::{
    evaluate, evaluate_budgeted, evaluate_budgeted_traced, evaluate_traced, EvalStats, ExecPolicy,
    FilterExpr, Query, Strategy,
};
use xfrag::corpus::docgen::{generate, DocGenConfig};
use xfrag::corpus::figure1;
use xfrag::doc::InvertedIndex;

#[test]
fn all_strategies_agree_traced_and_untraced() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    for filter in [FilterExpr::True, FilterExpr::MaxSize(3)] {
        let q = Query::new(["xquery", "optimization"], filter.clone());
        let mut answers = Vec::new();
        for &s in &Strategy::ALL {
            let plain = evaluate(d, &idx, &q, s).unwrap();

            let sink = RecordingSink::new();
            let tracer = Tracer::new(&sink);
            let traced = evaluate_traced(d, &idx, &q, s, &tracer).unwrap();

            // Identical answers AND identical counters, field for field.
            assert_eq!(traced.fragments, plain.fragments, "{s:?} {filter}");
            assert_eq!(traced.stats, plain.stats, "{s:?} {filter}");
            // The recorder actually saw the evaluation.
            let spans = sink.take();
            assert!(!spans.is_empty(), "{s:?} recorded no spans");
            assert!(
                spans.iter().any(|sp| sp.stage.starts_with("term-lookup:")),
                "{s:?}"
            );
            answers.push(plain.fragments);
        }
        // And all four strategies still agree with each other.
        for a in &answers[1..] {
            assert_eq!(*a, answers[0], "{filter}");
        }
    }
}

#[test]
fn generated_corpora_agree_traced_and_untraced() {
    for seed in [7, 11] {
        let cfg = DocGenConfig {
            seed,
            ..DocGenConfig::default()
        }
        .with_approx_nodes(250)
        .plant("kwone", 3)
        .plant("kwtwo", 4);
        let d = generate(&cfg);
        let idx = InvertedIndex::build(&d);
        let q = Query::new(["kwone", "kwtwo"], FilterExpr::MaxSize(6));
        for &s in &Strategy::ALL {
            let plain = evaluate(&d, &idx, &q, s).unwrap();
            let sink = RecordingSink::new();
            let tracer = Tracer::new(&sink);
            let traced = evaluate_traced(&d, &idx, &q, s, &tracer).unwrap();
            assert_eq!(traced.fragments, plain.fragments, "seed {seed} {s:?}");
            assert_eq!(traced.stats, plain.stats, "seed {seed} {s:?}");
        }
    }
}

#[test]
fn budgeted_evaluation_agrees_traced_and_untraced() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
    for policy in [
        ExecPolicy::unlimited(),
        ExecPolicy::with_budget(xfrag::core::Budget::unlimited().with_max_joins(25)),
    ] {
        for &s in &Strategy::ALL {
            let plain = evaluate_budgeted(d, &idx, &q, s, &policy).unwrap();
            let sink = RecordingSink::new();
            let tracer = Tracer::new(&sink);
            let traced = evaluate_budgeted_traced(d, &idx, &q, s, &policy, &tracer).unwrap();
            assert_eq!(traced.fragments, plain.fragments, "{s:?}");
            assert_eq!(traced.stats, plain.stats, "{s:?}");
            assert_eq!(traced.degradation.rung, plain.degradation.rung, "{s:?}");
            // Every run opens at least the first ladder rung.
            let spans = sink.take();
            assert!(
                spans.iter().any(|sp| sp.stage.starts_with("rung:")),
                "{s:?}"
            );
        }
    }
}

#[test]
fn span_trees_sum_and_emit() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
    let sink = RecordingSink::new();
    let tracer = Tracer::new(&sink);
    let r = evaluate_traced(d, &idx, &q, Strategy::FixedPointReduced, &tracer).unwrap();
    let spans = sink.take();

    // Top-level span deltas sum to the query's total stats.
    let mut summed = EvalStats::new();
    for s in &spans {
        summed += s.stats_delta;
    }
    assert_eq!(summed, r.stats);

    // Both emitters accept the real tree.
    let text = render_spans(&spans);
    assert!(text.contains("fixpoint-reduced"), "{text}");
    assert!(text.contains("round"), "{text}");
    let json = spans_to_json(&spans);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"stage\":\"fixpoint-reduced\""), "{json}");

    // Histograms aggregate over any span selection.
    let hist = LatencyHistogram::from_spans(&spans);
    assert_eq!(hist.count(), spans.len() as u64);
    assert!(hist.total() >= hist.max());
}
