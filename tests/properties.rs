//! Property-based verification of every algebraic law and theorem the
//! paper states, over randomly generated trees and fragment sets.
//!
//! | Property | Paper source |
//! |---|---|
//! | join idempotent/commutative/associative/absorptive | Definition 4 laws |
//! | `f1 ⊆ f1 ⋈ f2` (Lemma 1) | Appendix |
//! | join result is minimal (no smaller connected superset) | Definition 4 |
//! | pairwise join commutative/associative/monotone/distributive | Definition 5 laws |
//! | `F1 ⋈* F2 = F1⁺ ⋈ F2⁺` | Theorem 2 |
//! | `⋈_k(F) = ⋈_{k+1}(F)` with `k = |⊖(F)|` | Theorem 1 |
//! | `σ_Pa(F1 ⋈ F2) = σ_Pa(σ_Pa F1 ⋈ σ_Pa F2)` | Theorem 3 |
//! | size/height/width filters satisfy Definition 11 | §3.3 |
//! | all four strategies agree | §4 |
//! | budgeted answers ⊆ exact; undegraded ⇒ equal | robustness layer |

use proptest::prelude::*;
use xfrag::core::{
    evaluate, evaluate_budgeted, fixed_point_naive, fixed_point_reduced, fragment_join,
    fragment_join_all, fragment_join_many, pairwise_join, powerset_join, powerset_via_fixpoint,
    reduce, select, Budget, EvalStats, ExecPolicy, FilterExpr, FixpointMode, Fragment, FragmentSet,
    Query, Strategy,
};
use xfrag::doc::{Document, DocumentBuilder, InvertedIndex, NodeId};

/// Build a random tree from a parent-choice vector: node `i+1` attaches
/// to node `choices[i] % (i+1)`. The result is re-numbered in pre-order
/// by the builder, which is fine — any rooted ordered tree will do.
fn build_tree(choices: &[usize]) -> Document {
    let n = choices.len() + 1;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &c) in choices.iter().enumerate() {
        children[c % (i + 1)].push(i + 1);
    }
    let mut b = DocumentBuilder::new();
    fn emit(b: &mut DocumentBuilder, children: &[Vec<usize>], v: usize) {
        b.begin(format!("t{v}"));
        for &c in &children[v] {
            emit(b, children, c);
        }
        b.end();
    }
    emit(&mut b, &children, 0);
    b.finish().expect("random tree is well-formed")
}

prop_compose! {
    /// A random document of 1..=20 nodes.
    fn arb_doc()(choices in prop::collection::vec(any::<usize>(), 0..19)) -> Document {
        build_tree(&choices)
    }
}

/// A random connected fragment: the path between two random nodes,
/// possibly widened by joining a third.
fn arb_fragment(doc: &Document, picks: &[usize]) -> Fragment {
    let n = doc.len() as u32;
    let a = NodeId(picks.first().copied().unwrap_or(0) as u32 % n);
    let b = NodeId(picks.get(1).copied().unwrap_or(0) as u32 % n);
    let mut st = EvalStats::new();
    let mut f = fragment_join(doc, &Fragment::node(a), &Fragment::node(b), &mut st);
    if let Some(&c) = picks.get(2) {
        if c % 3 == 0 {
            let c = NodeId(c as u32 % n);
            f = fragment_join(doc, &f, &Fragment::node(c), &mut st);
        }
    }
    f
}

fn arb_set(doc: &Document, seeds: &[Vec<usize>]) -> FragmentSet {
    FragmentSet::from_iter(seeds.iter().map(|s| arb_fragment(doc, s)))
}

/// A random connected sub-fragment of `f`: all members of `f` that lie in
/// the document subtree of a member pivot.
fn connected_subfragment(doc: &Document, f: &Fragment, pick: usize) -> Fragment {
    let pivot = f.nodes()[pick % f.size()];
    let nodes: Vec<NodeId> = f
        .iter()
        .filter(|&n| doc.is_ancestor_or_self(pivot, n))
        .collect();
    Fragment::from_nodes(doc, nodes).expect("subtree restriction is connected")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn join_laws(
        choices in prop::collection::vec(any::<usize>(), 0..19),
        s1 in prop::collection::vec(any::<usize>(), 3),
        s2 in prop::collection::vec(any::<usize>(), 3),
        s3 in prop::collection::vec(any::<usize>(), 3),
    ) {
        let doc = build_tree(&choices);
        let (f1, f2, f3) = (
            arb_fragment(&doc, &s1),
            arb_fragment(&doc, &s2),
            arb_fragment(&doc, &s3),
        );
        let mut st = EvalStats::new();
        // Idempotency
        prop_assert_eq!(fragment_join(&doc, &f1, &f1, &mut st), f1.clone());
        // Commutativity
        prop_assert_eq!(
            fragment_join(&doc, &f1, &f2, &mut st),
            fragment_join(&doc, &f2, &f1, &mut st)
        );
        // Associativity
        let ab = fragment_join(&doc, &f1, &f2, &mut st);
        let bc = fragment_join(&doc, &f2, &f3, &mut st);
        prop_assert_eq!(
            fragment_join(&doc, &ab, &f3, &mut st),
            fragment_join(&doc, &f1, &bc, &mut st)
        );
        // Lemma 1: f1 ⊆ f1 ⋈ f2.
        let j = fragment_join(&doc, &f1, &f2, &mut st);
        prop_assert!(f1.is_subfragment_of(&j));
        prop_assert!(f2.is_subfragment_of(&j));
        // Absorption: f2' ⊆ f1 ⇒ f1 ⋈ f2' = f1.
        let sub = connected_subfragment(&doc, &f1, s2[0]);
        prop_assert_eq!(fragment_join(&doc, &f1, &sub, &mut st), f1.clone());
    }

    /// The single-pass n-ary join (Steiner span of roots) agrees with the
    /// binary fold for arbitrary fragment lists.
    #[test]
    fn join_many_equals_fold(
        choices in prop::collection::vec(any::<usize>(), 0..19),
        seeds in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..6),
    ) {
        let doc = build_tree(&choices);
        let frags: Vec<Fragment> = seeds.iter().map(|s| arb_fragment(&doc, s)).collect();
        let mut st = EvalStats::new();
        let fold = fragment_join_all(&doc, frags.iter(), &mut st);
        let many = fragment_join_many(&doc, frags.iter(), &mut st);
        prop_assert_eq!(fold, many);
    }

    /// Minimality of Definition 4: removing any node of the join result
    /// that is not in f1 ∪ f2 disconnects it or stops containing an input.
    #[test]
    fn join_is_minimal(
        choices in prop::collection::vec(any::<usize>(), 0..19),
        s1 in prop::collection::vec(any::<usize>(), 3),
        s2 in prop::collection::vec(any::<usize>(), 3),
    ) {
        let doc = build_tree(&choices);
        let f1 = arb_fragment(&doc, &s1);
        let f2 = arb_fragment(&doc, &s2);
        let mut st = EvalStats::new();
        let j = fragment_join(&doc, &f1, &f2, &mut st);
        for drop in j.iter() {
            if f1.contains_node(drop) || f2.contains_node(drop) {
                continue;
            }
            let rest: Vec<NodeId> = j.iter().filter(|&n| n != drop).collect();
            // Either the rest is disconnected, or (impossible by
            // construction) it would be a smaller fragment containing both.
            prop_assert!(
                Fragment::from_nodes(&doc, rest).is_err(),
                "join result has a removable extraneous node {drop}"
            );
        }
    }

    #[test]
    fn pairwise_laws(
        choices in prop::collection::vec(any::<usize>(), 0..15),
        a in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..4),
        b in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..4),
        c in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..4),
    ) {
        let doc = build_tree(&choices);
        let (sa, sb, sc) = (arb_set(&doc, &a), arb_set(&doc, &b), arb_set(&doc, &c));
        let mut st = EvalStats::new();
        // Commutativity
        prop_assert_eq!(
            pairwise_join(&doc, &sa, &sb, &mut st),
            pairwise_join(&doc, &sb, &sa, &mut st)
        );
        // Associativity
        let l = pairwise_join(&doc, &pairwise_join(&doc, &sa, &sb, &mut st), &sc, &mut st);
        let r = pairwise_join(&doc, &sa, &pairwise_join(&doc, &sb, &sc, &mut st), &mut st);
        prop_assert_eq!(l, r);
        // Monotonicity: F ⊆ F ⋈ F.
        let sq = pairwise_join(&doc, &sa, &sa, &mut st);
        for f in sa.iter() {
            prop_assert!(sq.contains(f));
        }
        // Distributivity over union.
        let lhs = pairwise_join(&doc, &sa, &sb.union(&sc), &mut st);
        let rhs = pairwise_join(&doc, &sa, &sb, &mut st)
            .union(&pairwise_join(&doc, &sa, &sc, &mut st));
        prop_assert_eq!(lhs, rhs);
    }

    /// Theorem 2 with both fixed-point modes, against the literal
    /// powerset-join oracle.
    #[test]
    fn theorem2_powerset_equals_fixpoint_join(
        choices in prop::collection::vec(any::<usize>(), 0..15),
        a in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..4),
        b in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..4),
    ) {
        let doc = build_tree(&choices);
        let (sa, sb) = (arb_set(&doc, &a), arb_set(&doc, &b));
        let mut st = EvalStats::new();
        let oracle = powerset_join(&doc, &sa, &sb, &mut st).unwrap();
        for mode in [FixpointMode::Naive, FixpointMode::Reduced] {
            let got = powerset_via_fixpoint(&doc, &sa, &sb, mode, &mut st);
            prop_assert_eq!(&got, &oracle);
        }
    }

    /// Theorem 1: k = |⊖(F)| rounds reach the fixed point — and the
    /// reduced computation equals the naive one.
    #[test]
    fn theorem1_reduced_iterations_suffice(
        choices in prop::collection::vec(any::<usize>(), 0..15),
        a in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..6),
    ) {
        let doc = build_tree(&choices);
        let f = arb_set(&doc, &a);
        let mut st = EvalStats::new();
        let naive = fixed_point_naive(&doc, &f, &mut st);
        let reduced = fixed_point_reduced(&doc, &f, &mut st);
        prop_assert_eq!(&naive, &reduced);
        // ⋈_k(F) is already stable: one more round adds nothing.
        let again = pairwise_join(&doc, &reduced, &f, &mut st).union(&reduced);
        prop_assert_eq!(&again, &reduced);
        // And ⊖(F) ⊆ F.
        let r = reduce(&doc, &f, &mut st);
        for frag in r.iter() {
            prop_assert!(f.contains(frag));
        }
    }

    /// Theorem 3 for each anti-monotonic filter shape.
    #[test]
    fn theorem3_selection_commutes_below_join(
        choices in prop::collection::vec(any::<usize>(), 0..15),
        a in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..4),
        b in prop::collection::vec(prop::collection::vec(any::<usize>(), 3), 1..4),
        beta in 1u32..6,
    ) {
        let doc = build_tree(&choices);
        let (sa, sb) = (arb_set(&doc, &a), arb_set(&doc, &b));
        for p in [
            FilterExpr::MaxSize(beta),
            FilterExpr::MaxHeight(beta % 3),
            FilterExpr::MaxWidth(beta),
            FilterExpr::and([FilterExpr::MaxSize(beta + 1), FilterExpr::MaxHeight(2)]),
            FilterExpr::or([FilterExpr::MaxSize(beta), FilterExpr::MaxWidth(1)]),
        ] {
            prop_assert!(p.is_anti_monotonic());
            let mut st = EvalStats::new();
            let lhs = select(&doc, &p, &pairwise_join(&doc, &sa, &sb, &mut st), &mut st);
            let fa = select(&doc, &p, &sa, &mut st);
            let fb = select(&doc, &p, &sb, &mut st);
            let rhs = select(&doc, &p, &pairwise_join(&doc, &fa, &fb, &mut st), &mut st);
            prop_assert_eq!(lhs, rhs, "filter {}", p);
        }
    }

    /// Definition 11 for the anti-monotonic family, on random connected
    /// sub-fragments.
    #[test]
    fn definition11_anti_monotonicity(
        choices in prop::collection::vec(any::<usize>(), 0..19),
        s in prop::collection::vec(any::<usize>(), 3),
        pick in any::<usize>(),
        bound in 0u32..8,
    ) {
        let doc = build_tree(&choices);
        let f = arb_fragment(&doc, &s);
        let sub = connected_subfragment(&doc, &f, pick);
        for p in [
            FilterExpr::MaxSize(bound.max(1)),
            FilterExpr::MaxHeight(bound),
            FilterExpr::MaxWidth(bound),
        ] {
            if p.eval_uncounted(&doc, &f) {
                prop_assert!(
                    p.eval_uncounted(&doc, &sub),
                    "{} passed {} but failed sub-fragment {}",
                    p, f, sub
                );
            }
        }
    }

    /// All four strategies produce the same answer on random documents
    /// and random two-term queries (keywords planted via tag names).
    #[test]
    fn strategies_agree_on_random_queries(
        choices in prop::collection::vec(any::<usize>(), 0..12),
        t1 in any::<usize>(),
        t2 in any::<usize>(),
        beta in 1u32..8,
    ) {
        let doc = build_tree(&choices);
        let n = doc.len();
        // Tag names are t0..t{n-1} and are indexed as keywords.
        let term1 = format!("t{}", t1 % n);
        let term2 = format!("t{}", t2 % n);
        let idx = InvertedIndex::build(&doc);
        let q = Query::new([term1, term2], FilterExpr::MaxSize(beta));
        let oracle = evaluate(&doc, &idx, &q, Strategy::BruteForce).unwrap();
        for s in [Strategy::FixedPointNaive, Strategy::FixedPointReduced, Strategy::PushDown] {
            let r = evaluate(&doc, &idx, &q, s).unwrap();
            prop_assert_eq!(&r.fragments, &oracle.fragments, "strategy {}", s.name());
        }
    }

    /// Budget soundness: under ANY join/fragment budget, every strategy
    /// either completes exactly (no degradation report, answer equal to
    /// the exact one) or degrades to a subset of the exact answer. The
    /// ladder may drop answers; it must never invent them.
    #[test]
    fn budgeted_answers_are_sound_subsets(
        choices in prop::collection::vec(any::<usize>(), 0..12),
        t1 in any::<usize>(),
        t2 in any::<usize>(),
        max_joins in 0u64..60,
        max_fragments in 1u64..40,
    ) {
        let doc = build_tree(&choices);
        let n = doc.len();
        let term1 = format!("t{}", t1 % n);
        let term2 = format!("t{}", t2 % n);
        let idx = InvertedIndex::build(&doc);
        let q = Query::new([term1, term2], FilterExpr::True);
        let exact = evaluate(&doc, &idx, &q, Strategy::FixedPointNaive).unwrap();
        let policy = ExecPolicy::with_budget(
            Budget::unlimited()
                .with_max_joins(max_joins)
                .with_max_fragments(max_fragments),
        );
        for s in [
            Strategy::BruteForce,
            Strategy::FixedPointNaive,
            Strategy::FixedPointReduced,
            Strategy::PushDown,
        ] {
            let r = evaluate_budgeted(&doc, &idx, &q, s, &policy).unwrap();
            for f in r.fragments.iter() {
                prop_assert!(
                    exact.fragments.contains(f),
                    "strategy {}: budgeted answer not in exact set", s.name()
                );
            }
            if !r.degradation.is_degraded() {
                prop_assert_eq!(
                    &r.fragments, &exact.fragments,
                    "strategy {}: undegraded but not exact", s.name()
                );
            } else {
                prop_assert!(!r.degradation.trips.is_empty());
            }
        }
    }
}
