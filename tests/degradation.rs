//! Fault injection for budgeted execution: tiny budgets on adversarial
//! trees must degrade gracefully — never panic, never return an unsound
//! answer.
//!
//! | Guarantee | Test |
//! |---|---|
//! | every ladder rung returns a subset of the exact answer | `*_budgeted_is_subset_of_exact` |
//! | no degradation report ⇒ answer equals the exact answer | `unlimited_policy_is_exact_everywhere` |
//! | `PowersetTooLarge` abort becomes a degraded answer | `powerset_abort_becomes_degraded_answer` |
//! | degraded answers are non-empty when the exact answer is | `powerset_abort_becomes_degraded_answer` |
//! | cancellation aborts with an error, never a partial answer | `cancellation_aborts_instead_of_degrading` |
//! | `--degrade off` surfaces the breach as an error | `degrade_off_surfaces_breach` |
//! | collection budgets skip documents instead of failing | `collection_budget_skips_documents` |

use std::time::Duration;

use xfrag::core::{
    evaluate, evaluate_budgeted, evaluate_collection, evaluate_collection_budgeted, Budget,
    CancelToken, DegradeMode, ExecPolicy, FilterExpr, Query, QueryError, QueryResult, Strategy,
};
use xfrag::corpus::adversarial::{comb, deep_chain, wide_star};
use xfrag::doc::{Collection, Document, InvertedIndex};

const STRATEGIES: [Strategy; 4] = [
    Strategy::BruteForce,
    Strategy::FixedPointNaive,
    Strategy::FixedPointReduced,
    Strategy::PushDown,
];

/// Exact (unbudgeted) answer via a strategy that cannot abort on size.
fn exact(doc: &Document, query: &Query) -> QueryResult {
    let index = InvertedIndex::build(doc);
    evaluate(doc, &index, query, Strategy::FixedPointNaive).expect("exact evaluation")
}

/// Assert `sub ⊆ sup` fragment-wise, with a readable failure message.
fn assert_subset(sub: &QueryResult, sup: &QueryResult, ctx: &str) {
    for f in sub.fragments.iter() {
        assert!(
            sup.fragments.contains(f),
            "{ctx}: degraded answer contains fragment {:?} absent from the exact answer",
            f.nodes()
        );
    }
}

/// A spread of budgets designed to trip at different points: before any
/// work, mid-join, mid-materialization, and on the memory proxy.
fn hostile_budgets() -> Vec<(&'static str, Budget)> {
    vec![
        ("max_joins=0", Budget::unlimited().with_max_joins(0)),
        ("max_joins=3", Budget::unlimited().with_max_joins(3)),
        ("max_joins=40", Budget::unlimited().with_max_joins(40)),
        ("max_fragments=1", Budget::unlimited().with_max_fragments(1)),
        (
            "max_fragments=10",
            Budget::unlimited().with_max_fragments(10),
        ),
        ("max_nodes=5", Budget::unlimited().with_max_nodes_merged(5)),
        (
            "deadline=0",
            Budget::unlimited().with_wall_clock(Duration::ZERO),
        ),
        (
            "joins=2+fragments=4",
            Budget::unlimited().with_max_joins(2).with_max_fragments(4),
        ),
    ]
}

fn adversarial_docs() -> Vec<(&'static str, Document)> {
    vec![
        ("deep_chain(24)", deep_chain(24, "k1", "k2")),
        ("wide_star(12)", wide_star(12, "k1", "k2")),
        ("comb(10)", comb(10, &["k1", "k2"])),
    ]
}

/// Every (document, strategy, budget) combination must return without
/// panicking, and whatever it returns must be a subset of the exact
/// answer. This is the core soundness claim of the ladder: rungs may
/// drop answers, never invent them.
#[test]
fn every_rung_budgeted_is_subset_of_exact() {
    let query = Query::new(["k1", "k2"], FilterExpr::True);
    for (doc_name, doc) in adversarial_docs() {
        let index = InvertedIndex::build(&doc);
        let full = exact(&doc, &query);
        for strategy in STRATEGIES {
            for (budget_name, budget) in hostile_budgets() {
                let policy = ExecPolicy::with_budget(budget);
                let ctx = format!("{doc_name}/{strategy:?}/{budget_name}");
                let r = evaluate_budgeted(&doc, &index, &query, strategy, &policy)
                    .unwrap_or_else(|e| panic!("{ctx}: ladder returned error {e}"));
                assert_subset(&r, &full, &ctx);
                if !r.degradation.is_degraded() {
                    assert_eq!(
                        r.fragments, full.fragments,
                        "{ctx}: reported exact but differs from the exact answer"
                    );
                } else {
                    assert!(
                        !r.degradation.trips.is_empty(),
                        "{ctx}: degraded without recording a breach"
                    );
                }
            }
        }
    }
}

/// With no limits set the ladder must never fire, and the answer must be
/// bit-identical to the plain `evaluate` result for every strategy that
/// can complete. (Brute force on the wide star exceeds the powerset
/// limit; that case is covered separately below.)
#[test]
fn unlimited_policy_is_exact_everywhere() {
    let query = Query::new(["k1", "k2"], FilterExpr::True);
    // Smaller instances than `adversarial_docs()`: this test runs the
    // *literal powerset* oracle, which is 4^|operand| subset pairs —
    // the very blow-up the paper calls impractical in §4.1.
    let docs = vec![
        ("deep_chain(12)", deep_chain(12, "k1", "k2")),
        ("wide_star(8)", wide_star(8, "k1", "k2")),
        ("comb(6)", comb(6, &["k1", "k2"])),
    ];
    for (doc_name, doc) in docs {
        let index = InvertedIndex::build(&doc);
        for strategy in STRATEGIES {
            let plain = match evaluate(&doc, &index, &query, strategy) {
                Ok(r) => r,
                Err(QueryError::PowersetTooLarge(_)) => continue,
                Err(e) => panic!("{doc_name}/{strategy:?}: {e}"),
            };
            let budgeted =
                evaluate_budgeted(&doc, &index, &query, strategy, &ExecPolicy::unlimited())
                    .expect("unlimited budget");
            assert!(
                !budgeted.degradation.is_degraded(),
                "{doc_name}/{strategy:?}: degraded with no limits set"
            );
            assert_eq!(
                budgeted.fragments, plain.fragments,
                "{doc_name}/{strategy:?}"
            );
        }
    }
}

/// The acceptance scenario from the issue: brute force on a star with 40
/// keyword leaves has operand sets of 20 fragments each — beyond
/// `POWERSET_LIMIT` — so plain `evaluate` aborts with `PowersetTooLarge`.
/// Under the ladder the same query completes with a non-empty, sound,
/// named-rung answer even with an otherwise unlimited budget.
#[test]
fn powerset_abort_becomes_degraded_answer() {
    let doc = wide_star(40, "k1", "k2");
    let index = InvertedIndex::build(&doc);
    // MaxSize(3) keeps the *exact* answer tractable (the unfiltered
    // closure of 20 leaves on a star is ~2^20 fragments); brute force
    // aborts on operand size alone, before any filter applies.
    let query = Query::new(["k1", "k2"], FilterExpr::MaxSize(3));

    let plain = evaluate(&doc, &index, &query, Strategy::BruteForce);
    assert!(
        matches!(plain, Err(QueryError::PowersetTooLarge(_))),
        "expected the unbudgeted brute force to abort, got {plain:?}"
    );

    let r = evaluate_budgeted(
        &doc,
        &index,
        &query,
        Strategy::BruteForce,
        &ExecPolicy::unlimited(),
    )
    .expect("ladder must absorb the powerset abort");
    assert!(!r.fragments.is_empty(), "degraded answer must be non-empty");
    let rung = r.degradation.rung.expect("must report the rung used");
    // The report names the rung and the breach that forced it.
    let report = r.degradation.to_string();
    assert!(
        report.contains(rung.name()),
        "report {report:?} must name {rung}"
    );
    assert!(
        report.contains("powerset-limit"),
        "report {report:?} must name the breach"
    );
    // Soundness against the exact answer (push-down keeps it feasible).
    let full = evaluate(&doc, &index, &query, Strategy::PushDown).expect("exact via push-down");
    assert_subset(&r, &full, "wide_star(40)/brute/unlimited");
}

/// Cancellation must abort with `QueryError::Cancelled` — a cancelled
/// caller wants no answer, so the ladder never catches it.
#[test]
fn cancellation_aborts_instead_of_degrading() {
    let doc = comb(10, &["k1", "k2"]);
    let index = InvertedIndex::build(&doc);
    let query = Query::new(["k1", "k2"], FilterExpr::True);
    let token = CancelToken::new();
    token.cancel(); // cancelled before the evaluation even starts
    let policy = ExecPolicy::unlimited().with_cancel(token);
    for strategy in STRATEGIES {
        let r = evaluate_budgeted(&doc, &index, &query, strategy, &policy);
        assert!(
            matches!(r, Err(QueryError::Cancelled)),
            "{strategy:?}: expected Cancelled, got {r:?}"
        );
    }
}

/// With `--degrade off` the first breach is surfaced as an error naming
/// the tripped limit.
#[test]
fn degrade_off_surfaces_breach() {
    let doc = deep_chain(24, "k1", "k2");
    let index = InvertedIndex::build(&doc);
    let query = Query::new(["k1", "k2"], FilterExpr::True);
    let policy = ExecPolicy::with_budget(Budget::unlimited().with_max_joins(1))
        .with_degrade(DegradeMode::Off);
    for strategy in STRATEGIES {
        match evaluate_budgeted(&doc, &index, &query, strategy, &policy) {
            Err(QueryError::BudgetExceeded(b)) => {
                assert!(!b.name().is_empty());
            }
            other => panic!("{strategy:?}: expected BudgetExceeded, got {other:?}"),
        }
    }
}

/// Selection predicates and strict leaf semantics apply to degraded
/// answers exactly as they do to exact ones: no rung may smuggle a
/// fragment past σ_P.
#[test]
fn degraded_answers_respect_the_filter() {
    let doc = wide_star(12, "k1", "k2");
    let index = InvertedIndex::build(&doc);
    let query = Query::new(["k1", "k2"], FilterExpr::MaxSize(3));
    for (budget_name, budget) in hostile_budgets() {
        let r = evaluate_budgeted(
            &doc,
            &index,
            &query,
            Strategy::PushDown,
            &ExecPolicy::with_budget(budget),
        )
        .unwrap_or_else(|e| panic!("{budget_name}: {e}"));
        for f in r.fragments.iter() {
            assert!(
                f.size() <= 3,
                "{budget_name}: fragment of size {} passed MaxSize(3)",
                f.size()
            );
        }
    }
}

/// A whole-collection budget that runs out mid-scan skips the remaining
/// documents (reported in `docs_skipped`) instead of erroring, and what
/// it did evaluate stays sound per document.
#[test]
fn collection_budget_skips_documents() {
    let mut coll = Collection::new();
    for i in 0..6 {
        coll.add(format!("doc{i}"), comb(6, &["k1", "k2"]));
    }
    let query = Query::new(["k1", "k2"], FilterExpr::True);

    // Zero wall-clock: the collection governor trips on its very first
    // per-document checkpoint, so nothing is evaluated and nothing panics.
    let starved = evaluate_collection_budgeted(
        &coll,
        &query,
        Strategy::PushDown,
        &ExecPolicy::with_budget(Budget::unlimited().with_wall_clock(Duration::ZERO)),
    )
    .expect("starved collection scan must not error under the ladder");
    assert_eq!(starved.docs_skipped, coll.len(), "all documents skipped");
    assert!(starved.answers.is_empty());

    // Unlimited budget: same answers as the unbudgeted scan, nothing
    // skipped, nothing degraded.
    let exact = evaluate_collection(&coll, &query, Strategy::PushDown).expect("exact scan");
    let free =
        evaluate_collection_budgeted(&coll, &query, Strategy::PushDown, &ExecPolicy::unlimited())
            .expect("unlimited scan");
    assert_eq!(free.docs_skipped, 0);
    assert!(!free.is_degraded());
    assert_eq!(free.answers.len(), exact.answers.len());
    for (a, b) in free.answers.iter().zip(exact.answers.iter()) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.fragments, b.fragments);
    }

    // Per-document join starvation: every document degrades but the scan
    // completes with per-document reports.
    let tight = evaluate_collection_budgeted(
        &coll,
        &query,
        Strategy::PushDown,
        &ExecPolicy::with_budget(Budget::unlimited().with_max_joins(0)),
    )
    .expect("tight scan");
    assert!(
        tight.is_degraded(),
        "per-document budgets must surface in the report"
    );
    for (_, d) in &tight.degraded_docs {
        assert!(d.is_degraded());
    }
}
