//! Exact reproduction of the paper's **Table 1**: the 11 unique candidate
//! fragment sets of `F1 ⋈* F2` for the query {XQuery, optimization}
//! against the Figure 1 document, the fragment each candidate joins to,
//! which results are duplicates, and which are filtered by `size ≤ 3`.

use xfrag::core::{powerset_join_candidates, select, EvalStats, FilterExpr, Fragment, FragmentSet};
use xfrag::corpus::figure1;
use xfrag::doc::{InvertedIndex, NodeId};

fn frag(ns: &[u32]) -> Vec<NodeId> {
    ns.iter().map(|&n| NodeId(n)).collect()
}

#[test]
fn table1_exact() {
    let fig = figure1();
    let doc = &fig.doc;
    let idx = InvertedIndex::build(doc);

    // §4: F1 = σ_{keyword=XQuery}(F), F2 = σ_{keyword=optimization}(F).
    let f1 = FragmentSet::of_nodes(idx.lookup("xquery").iter().copied());
    let f2 = FragmentSet::of_nodes(idx.lookup("optimization").iter().copied());
    assert_eq!(f1.len(), 2, "F1 = {{f17, f18}}");
    assert_eq!(f2.len(), 3, "F2 = {{f16, f17, f81}}");

    let mut stats = EvalStats::new();
    let candidates = powerset_join_candidates(doc, &f1, &f2, &mut stats).unwrap();

    // Row 1-11: "our example produces 11 unique pairwise unions
    // (candidate fragment sets)".
    assert_eq!(candidates.len(), 11, "Table 1 has 11 candidate sets");

    // The expected (candidate input set → output fragment) mapping, rows
    // in the paper's order. Inputs are sets of single nodes here.
    let expected: Vec<(&[u32], &[u32])> = vec![
        (&[17, 18], &[16, 17, 18]),                               // row 1
        (&[16, 17], &[16, 17]),                                   // row 2
        (&[16, 18], &[16, 18]),                                   // row 3
        (&[17], &[17]),                                           // row 4
        (&[17, 81], &[0, 1, 14, 16, 17, 79, 80, 81]),             // row 5
        (&[18, 81], &[0, 1, 14, 16, 18, 79, 80, 81]),             // row 6
        (&[17, 18, 81], &[0, 1, 14, 16, 17, 18, 79, 80, 81]),     // row 7
        (&[16, 17, 18], &[16, 17, 18]),                           // row 8 (dup of 1)
        (&[16, 17, 81], &[0, 1, 14, 16, 17, 79, 80, 81]),         // row 9 (dup of 5)
        (&[16, 18, 81], &[0, 1, 14, 16, 18, 79, 80, 81]),         // row 10 (dup of 6)
        (&[16, 17, 18, 81], &[0, 1, 14, 16, 17, 18, 79, 80, 81]), // row 11 (dup of 7)
    ];

    for (input, output) in &expected {
        let want_input: Vec<Fragment> = input.iter().map(|&n| Fragment::node(NodeId(n))).collect();
        let got = candidates
            .iter()
            .find(|(cand, _)| *cand == want_input)
            .unwrap_or_else(|| panic!("candidate {input:?} missing from Table 1 reproduction"));
        assert_eq!(
            got.1.nodes(),
            frag(output).as_slice(),
            "join result for candidate {input:?}"
        );
    }

    // "Among these 11 fragments, only the top seven (No.1-7) are unique.
    // The last four (No.8-11) are duplicates."
    let unique = FragmentSet::from_iter(candidates.iter().map(|(_, f)| f.clone()));
    assert_eq!(unique.len(), 7);

    // "Since our filter is size ≤ 3, only the first four fragments will
    // remain in the final answer set."
    let mut st = EvalStats::new();
    let answer = select(doc, &FilterExpr::MaxSize(3), &unique, &mut st);
    assert_eq!(answer.len(), 4);
    for expect in [
        frag(&[16, 17, 18]),
        frag(&[16, 17]),
        frag(&[16, 18]),
        frag(&[17]),
    ] {
        let f = Fragment::from_nodes(doc, expect.iter().copied()).unwrap();
        assert!(answer.contains(&f), "answer must contain {f}");
    }

    // "the first fragment represented by ⟨n16,n17,n18⟩ is the fragment of
    // interest, which we have successfully generated".
    let target = Fragment::from_nodes(doc, frag(&[16, 17, 18])).unwrap();
    assert!(answer.contains(&target));
}

/// §4.2: `⊖(F2) = {f17, f81}` while `F1` is already reduced, so the fixed
/// points need `F1 ⋈ F1` and `F2 ⋈ F2` respectively; `F1⁺` has 3 members,
/// `F2⁺` has 6.
#[test]
fn section42_set_reduction() {
    let fig = figure1();
    let doc = &fig.doc;
    let idx = InvertedIndex::build(doc);
    let f1 = FragmentSet::of_nodes(idx.lookup("xquery").iter().copied());
    let f2 = FragmentSet::of_nodes(idx.lookup("optimization").iter().copied());

    let mut st = EvalStats::new();
    let r1 = xfrag::core::reduce(doc, &f1, &mut st);
    let r2 = xfrag::core::reduce(doc, &f2, &mut st);
    assert_eq!(r1.len(), 2, "F1 is already a reduced set");
    assert_eq!(r2.len(), 2, "⊖(F2) = {{f17, f81}}");
    assert!(r2.contains(&Fragment::node(NodeId(17))));
    assert!(r2.contains(&Fragment::node(NodeId(81))));
    // n16 is eliminated: n16 ⊆ n17 ⋈ n81 (the path passes through it).

    let p1 = xfrag::core::fixed_point_reduced(doc, &f1, &mut st);
    let p2 = xfrag::core::fixed_point_reduced(doc, &f2, &mut st);
    // F1⁺ = {f17, f18, f17⋈f18}.
    assert_eq!(p1.len(), 3);
    // F2⁺ = {f16, f17, f81, f16⋈f17, f16⋈f81, f17⋈f81} — f16⋈f17 = ⟨16,17⟩
    // and f16 ⋈ f81 ≠ f17 ⋈ f81, all six distinct.
    assert_eq!(p2.len(), 6);

    // Theorem 2 on the example: F1⁺ ⋈ F2⁺ equals the brute-force set.
    let pairwise = xfrag::core::pairwise_join(doc, &p1, &p2, &mut st);
    let brute = xfrag::core::powerset_join(doc, &f1, &f2, &mut st).unwrap();
    assert_eq!(pairwise, brute);
    assert_eq!(pairwise.len(), 7);
}

/// §4.3: with the anti-monotonic filter pushed down, `f16 ⋈ f81` (size 7)
/// is pruned immediately and every join involving it is avoided, yet the
/// final answer is unchanged.
#[test]
fn section43_pushdown_prunes_without_changing_answer() {
    use xfrag::core::{evaluate, Query, Strategy};
    let fig = figure1();
    let doc = &fig.doc;
    let idx = InvertedIndex::build(doc);
    let q = Query::new(["XQuery", "optimization"], FilterExpr::MaxSize(3));

    let brute = evaluate(doc, &idx, &q, Strategy::BruteForce).unwrap();
    let naive = evaluate(doc, &idx, &q, Strategy::FixedPointNaive).unwrap();
    let push = evaluate(doc, &idx, &q, Strategy::PushDown).unwrap();
    assert_eq!(brute.fragments, push.fragments);
    assert_eq!(push.fragments.len(), 4);
    // Push-down never does *more* join work than brute force, and strictly
    // beats the unfiltered fixed-point evaluation: the pruned f16 ⋈ f81
    // (size 7 > β) never participates in later joins. (On this 5-node
    // example brute force happens to tie push-down at 43 joins — the
    // filtered fixed point spends its savings on a confirmation round; the
    // scaling benches show the exponential separation.)
    assert!(push.stats.joins <= brute.stats.joins);
    assert!(
        push.stats.joins < naive.stats.joins,
        "push-down must perform fewer joins than the unfiltered fixed point ({} vs {})",
        push.stats.joins,
        naive.stats.joins
    );
    // And the filter visibly pruned intermediates on the way.
    assert!(push.stats.filter_pruned > 0);
    // The fragment of interest survives every strategy.
    let target = Fragment::from_nodes(doc, frag(&[16, 17, 18])).unwrap();
    for s in Strategy::ALL {
        let r = evaluate(doc, &idx, &q, s).unwrap();
        assert!(
            r.fragments.contains(&target),
            "{} lost the target",
            s.name()
        );
    }
}
