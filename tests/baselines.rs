//! Effectiveness comparison against the baseline semantics (experiment
//! P4): the paper's §1 argument is that smallest-subtree–style semantics
//! miss the self-contained fragment a reader wants in document-centric
//! XML, while they are perfectly adequate for data-centric XML.

use xfrag::baseline::{answers_as_fragments, elca, slca, smallest_subtree};
use xfrag::core::{evaluate, overlap, FilterExpr, Fragment, Query, Strategy};
use xfrag::corpus::datacentric::{generate_bib, BibConfig};
use xfrag::corpus::figure1;
use xfrag::doc::{InvertedIndex, NodeId};

fn terms(ts: &[&str]) -> Vec<String> {
    ts.iter().map(|s| s.to_string()).collect()
}

/// On Figure 1, the smallest-subtree semantics (and SLCA, its formal
/// cousin) answer n17 alone and cannot produce the target ⟨n16,n17,n18⟩,
/// which the algebra retrieves — the paper's §1 claim.
///
/// ELCA is a more interesting comparison (an honest finding of this
/// reproduction): because n16 carries its own "optimization" witness,
/// n16 *is* an ELCA, and since n16's subtree happens to be exactly
/// {n16, n17, n18}, XRank's whole-subtree answer coincides with the
/// target here. That is an accident of shape — an ELCA subtree includes
/// *all* descendants, extraneous or not, whereas the algebraic fragment
/// is minimal by construction; `elca_subtrees_include_extraneous_nodes`
/// below shows the divergence as soon as n16 gains an unrelated child.
#[test]
fn document_centric_baselines_miss_the_target() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let ts = terms(&["xquery", "optimization"]);
    let target =
        Fragment::from_nodes(d, [NodeId(16), NodeId(17), NodeId(18)].iter().copied()).unwrap();

    for (name, roots) in [
        ("slca", slca(d, &idx, &ts)),
        ("smallest-subtree", smallest_subtree(d, &idx, &ts)),
    ] {
        assert_eq!(roots, vec![NodeId(17)], "{name} should answer n17 only");
        let frags = answers_as_fragments(d, &roots);
        assert!(
            !frags.contains(&target),
            "{name} unexpectedly produced the target fragment"
        );
    }
    assert_eq!(elca(d, &idx, &ts), vec![NodeId(16), NodeId(17)]);

    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
    let r = evaluate(d, &idx, &q, Strategy::PushDown).unwrap();
    assert!(r.fragments.contains(&target));
    // And the baseline's answer (⟨n17⟩) is among ours too — the model
    // subsumes the smallest-subtree answer here.
    assert!(r.fragments.contains(&Fragment::node(NodeId(17))));
}

/// Give n16 an extra keyword-free paragraph: the ELCA answer subtree now
/// drags that extraneous node along, while the algebra still returns the
/// minimal self-contained fragment.
#[test]
fn elca_subtrees_include_extraneous_nodes() {
    use xfrag::doc::DocumentBuilder;
    let mut b = DocumentBuilder::new();
    b.begin("sec"); // 0
    b.text("optimization overview");
    b.leaf("par", "xquery rewriting"); // 1
    b.leaf("par", "xquery costing and optimization"); // 2
    b.leaf("par", "completely unrelated remark"); // 3
    b.end();
    let d = b.finish().unwrap();
    let idx = InvertedIndex::build(&d);
    let ts = terms(&["xquery", "optimization"]);

    let roots = elca(&d, &idx, &ts);
    assert!(roots.contains(&NodeId(0)));
    let elca_frags = answers_as_fragments(&d, &roots);
    // The n0-rooted ELCA answer includes the unrelated n3.
    assert!(elca_frags
        .iter()
        .any(|f| f.contains_node(NodeId(0)) && f.contains_node(NodeId(3))));

    // The algebra's n0-rooted answers never include n3 (it holds no
    // keyword and lies on no connecting path).
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
    let r = evaluate(&d, &idx, &q, Strategy::PushDown).unwrap();
    assert!(!r.fragments.is_empty());
    for f in r.fragments.iter() {
        assert!(!f.contains_node(NodeId(3)), "extraneous node in {f}");
    }
}

/// On data-centric XML the baselines are fine: SLCA of an author/topic
/// query is the <article> record, and the algebra (with a suitable size
/// bound) agrees on a fragment rooted at the same record.
#[test]
fn data_centric_baselines_work() {
    let d = generate_bib(&BibConfig {
        seed: 5,
        articles: 50,
        ..BibConfig::default()
    });
    let idx = InvertedIndex::build(&d);
    // Pick an (author, topic) pair that co-occurs in some record.
    let mut pair = None;
    'outer: for r in d.children(d.root()) {
        let mut author = None;
        let mut topic = None;
        for &c in d.children(*r) {
            if d.tag(c) == "author" && author.is_none() {
                author = xfrag::doc::text::tokenize(d.text(c)).next();
            }
            if d.tag(c) == "title" {
                topic = xfrag::doc::text::tokenize(d.text(c)).nth(1);
            }
        }
        if let (Some(a), Some(t)) = (author, topic) {
            pair = Some((a, t, *r));
            break 'outer;
        }
    }
    let (author, topic, _record) = pair.expect("some record has both");
    let ts = vec![author.clone(), topic.clone()];
    let roots = slca(&d, &idx, &ts);
    assert!(!roots.is_empty());
    for r in &roots {
        // SLCA answers are article records (or a node inside one).
        let tag = d.tag(*r);
        assert!(
            tag == "article" || d.ancestors(*r).iter().any(|a| d.tag(*a) == "article"),
            "SLCA {r} has tag {tag}"
        );
    }
    // The algebra also finds record-level fragments (root tag check via
    // post-filter on the answer set).
    let q = Query::new([author, topic], FilterExpr::MaxSize(8));
    let res = evaluate(&d, &idx, &q, Strategy::PushDown).unwrap();
    assert!(!res.fragments.is_empty());
}

/// Overlap handling (§5 discussion): maximal-only presentation hides the
/// sub-fragments; grouping preserves them under their maximal answer.
#[test]
fn overlap_presentation_on_figure1() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
    let r = evaluate(d, &idx, &q, Strategy::PushDown).unwrap();
    assert_eq!(r.fragments.len(), 4);

    let max = overlap::maximal_only(&r.fragments);
    // ⟨n16,n17⟩, ⟨n16,n18⟩ and ⟨n17⟩ are sub-fragments of ⟨n16,n17,n18⟩.
    assert_eq!(max.len(), 1);
    let target =
        Fragment::from_nodes(d, [NodeId(16), NodeId(17), NodeId(18)].iter().copied()).unwrap();
    assert!(max.contains(&target));

    let groups = overlap::group(&r.fragments);
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].contained.len(), 3);
    assert_eq!(overlap::overlap_ratio(&r.fragments), 0.75);
}
