//! JSON serialization round-trips for the public data types — anything a
//! service embedding xfrag would persist or ship over the wire: filters,
//! plans, queries, fragments, fragment sets, stats, documents.

use xfrag::core::{EvalStats, FilterExpr, FixpointMode, Fragment, FragmentSet, LogicalPlan, Query};
use xfrag::doc::{parse_str, Document, NodeId};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn filter_expr_roundtrips() {
    for f in [
        FilterExpr::True,
        FilterExpr::MaxSize(3),
        FilterExpr::MaxHeight(2),
        FilterExpr::MaxWidth(9),
        FilterExpr::MaxDiameter(4),
        FilterExpr::MinSize(2),
        FilterExpr::ContainsTerm("xquery".into()),
        FilterExpr::LeafTerm("xquery".into()),
        FilterExpr::EqualDepth("a".into(), "b".into()),
        FilterExpr::RootTag("sec".into()),
        FilterExpr::and([FilterExpr::MaxSize(3), FilterExpr::MinSize(1)]),
        FilterExpr::or([FilterExpr::MaxHeight(1), FilterExpr::MaxWidth(2)]),
        FilterExpr::Not(Box::new(FilterExpr::MaxSize(1))),
    ] {
        assert_eq!(roundtrip(&f), f);
        // Anti-monotonicity classification survives (it is structural).
        assert_eq!(roundtrip(&f).is_anti_monotonic(), f.is_anti_monotonic());
    }
}

#[test]
fn query_and_plan_roundtrip() {
    let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3)).with_strict_leaf_semantics();
    assert_eq!(roundtrip(&q), q);

    let plan = LogicalPlan::for_query(&q).unwrap();
    let back = roundtrip(&plan);
    assert_eq!(back, plan);
    assert_eq!(back.render(), plan.render());

    let groups = vec![
        vec!["a".to_string(), "b".to_string()],
        vec!["c".to_string()],
    ];
    let gplan = LogicalPlan::for_query_groups(&groups, FilterExpr::MaxHeight(2)).unwrap();
    assert_eq!(roundtrip(&gplan), gplan);
}

#[test]
fn fragment_and_set_roundtrip() {
    let d = parse_str("<a><b><c/></b><d/></a>").unwrap();
    let f = Fragment::from_nodes(&d, [NodeId(0), NodeId(1), NodeId(3)]).unwrap();
    assert_eq!(roundtrip(&f), f);

    let set = FragmentSet::from_iter([
        f.clone(),
        Fragment::node(NodeId(2)),
        Fragment::node(NodeId(3)),
    ]);
    let back: FragmentSet = roundtrip(&set);
    assert_eq!(back, set);
    // Dedup machinery works on the deserialized set.
    let mut back = back;
    assert!(!back.insert(f));
    assert_eq!(back.len(), 3);
}

#[test]
fn stats_and_mode_roundtrip() {
    let st = EvalStats {
        joins: 42,
        filter_pruned: 7,
        fixpoint_iterations: 3,
        ..Default::default()
    };
    assert_eq!(roundtrip(&st), st);
    assert_eq!(roundtrip(&FixpointMode::Reduced), FixpointMode::Reduced);
}

#[test]
fn document_roundtrips_through_json() {
    let d: Document =
        parse_str(r#"<article lang="en"><sec><par>alpha &amp; beta</par></sec></article>"#)
            .unwrap();
    let back: Document = roundtrip(&d);
    assert_eq!(back, d);
    back.validate().unwrap();
}

#[test]
fn plan_json_is_stable_for_caching() {
    let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
    let p1 = serde_json::to_string(&LogicalPlan::for_query(&q).unwrap()).unwrap();
    let p2 = serde_json::to_string(&LogicalPlan::for_query(&q).unwrap()).unwrap();
    assert_eq!(p1, p2);
}
