//! Ranking over the paper's example: deterministic ordering of the
//! Table 1 answer set, and the rank/overlap/snippet presentation pipeline
//! end to end.

use xfrag::core::rank::{rank, top_k, RankConfig};
use xfrag::core::snippet::{snippet, SnippetConfig};
use xfrag::core::{evaluate, overlap, FilterExpr, Query, Strategy};
use xfrag::corpus::figure1;
use xfrag::doc::{InvertedIndex, NodeId};

#[test]
fn figure1_answers_rank_deterministically() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
    let r = evaluate(d, &idx, &q, Strategy::PushDown).unwrap();
    assert_eq!(r.fragments.len(), 4);

    let ranked = rank(d, &r.fragments, &q.terms, &RankConfig::default());
    assert_eq!(ranked.len(), 4);
    assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
    // ⟨n17⟩ carries both terms in one node — compactness + coverage put it
    // first under default weights.
    assert_eq!(ranked[0].fragment.nodes(), &[NodeId(17)]);
    // Repeatable.
    let again = rank(d, &r.fragments, &q.terms, &RankConfig::default());
    assert_eq!(ranked, again);

    // top_k truncates consistently with rank.
    let top2 = top_k(d, &r.fragments, &q.terms, &RankConfig::default(), 2);
    assert_eq!(top2.as_slice(), &ranked[..2]);
}

#[test]
fn presentation_pipeline() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
    let r = evaluate(d, &idx, &q, Strategy::PushDown).unwrap();

    // Hide overlaps, rank what remains, snippet the winner.
    let maximal = overlap::maximal_only(&r.fragments);
    assert_eq!(maximal.len(), 1);
    let ranked = rank(d, &maximal, &q.terms, &RankConfig::default());
    let best = &ranked[0].fragment;
    assert_eq!(
        best.nodes(),
        &[NodeId(16), NodeId(17), NodeId(18)],
        "the paper's fragment of interest"
    );
    let s = snippet(d, best, &q.terms, &SnippetConfig::default());
    assert!(s.contains("[XQuery]"), "{s}");
    assert!(s.to_lowercase().contains("[optimization"), "{s}");
}
