//! Differential testing across index backends: every evaluation entry
//! point must return identical answers whether the postings come from
//! the in-memory [`InvertedIndex`] (structure answered by tree walks)
//! or from a persistent [`SegmentIndex`] decoded out of its `.xidx`
//! encoding (structure answered by label arithmetic). The backends also
//! cross-vouch through the stats counters: the same evaluation performs
//! the same structural operations, just billed to `tree_ops` on one
//! side and `label_ops` on the other.

use xfrag::core::{
    evaluate, evaluate_budgeted, evaluate_scoped, Budget, ExecPolicy, FilterExpr, Query, Strategy,
};
use xfrag::corpus::docgen::{generate, DocGenConfig};
use xfrag::corpus::figure1;
use xfrag::doc::{encode_segment, InvertedIndex, SegmentIndex};

const STRATEGIES: [Strategy; 4] = [
    Strategy::BruteForce,
    Strategy::FixedPointNaive,
    Strategy::FixedPointReduced,
    Strategy::PushDown,
];

fn filters() -> Vec<FilterExpr> {
    vec![
        FilterExpr::True,
        FilterExpr::MaxSize(3),
        FilterExpr::MaxSize(8),
        FilterExpr::MaxHeight(2),
        FilterExpr::MaxWidth(4),
    ]
}

#[test]
fn figure1_backends_agree_across_all_strategies_and_filters() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let seg = SegmentIndex::from_bytes(&encode_segment(d)).expect("segment round-trip");
    for filter in filters() {
        for s in STRATEGIES {
            let q = Query::new(["xquery", "optimization"], filter.clone());
            let mem = evaluate(d, &idx, &q, s).unwrap();
            let per = evaluate(d, &seg, &q, s).unwrap();
            assert_eq!(mem.fragments, per.fragments, "{s:?} {filter}");
            // Same algorithm, same operands — the structural work is
            // identical, only the backend it is billed to differs.
            assert_eq!(
                mem.label_ops(),
                0,
                "{s:?} {filter}: memory backend used labels"
            );
            assert_eq!(
                per.tree_ops(),
                0,
                "{s:?} {filter}: segment backend walked the tree"
            );
            assert_eq!(
                mem.tree_ops(),
                per.label_ops(),
                "{s:?} {filter}: structural op counts diverge"
            );
            assert!(
                mem.tree_ops() > 0,
                "{s:?} {filter}: a two-term join should do structural work"
            );
        }
    }
}

/// Accessors used above, kept local so the assertions read tersely.
trait Ops {
    fn tree_ops(&self) -> u64;
    fn label_ops(&self) -> u64;
}

impl Ops for xfrag::core::QueryResult {
    fn tree_ops(&self) -> u64 {
        self.stats.tree_ops
    }
    fn label_ops(&self) -> u64 {
        self.stats.label_ops
    }
}

#[test]
fn generated_corpora_agree_unbudgeted_and_budgeted() {
    for seed in [1, 2, 3] {
        let cfg = DocGenConfig {
            seed,
            ..DocGenConfig::default()
        }
        .with_approx_nodes(300)
        .plant("kwone", 3)
        .plant("kwtwo", 4);
        let d = generate(&cfg);
        let idx = InvertedIndex::build(&d);
        let seg = SegmentIndex::from_bytes(&encode_segment(&d)).expect("segment round-trip");
        let q = Query::new(["kwone", "kwtwo"], FilterExpr::MaxSize(10));
        for s in STRATEGIES {
            let mem = evaluate(&d, &idx, &q, s).unwrap();
            let per = evaluate(&d, &seg, &q, s).unwrap();
            assert_eq!(mem.fragments, per.fragments, "seed {seed} {s:?}");

            // Budgeted evaluation (unlimited and tight) degrades — or
            // does not — identically, because budget charges count
            // joins and merged nodes, not which backend answered the
            // structural questions.
            for policy in [
                ExecPolicy::unlimited(),
                ExecPolicy::with_budget(Budget::unlimited().with_max_joins(8)),
            ] {
                let mem = evaluate_budgeted(&d, &idx, &q, s, &policy).unwrap();
                let per = evaluate_budgeted(&d, &seg, &q, s, &policy).unwrap();
                assert_eq!(mem.fragments, per.fragments, "seed {seed} {s:?} budgeted");
                assert_eq!(
                    mem.degradation, per.degradation,
                    "seed {seed} {s:?}: backends degraded differently"
                );
            }
        }
    }
}

#[test]
fn scoped_evaluation_agrees_per_scope() {
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let seg = SegmentIndex::from_bytes(&encode_segment(d)).expect("segment round-trip");
    let q = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(5));
    for path in ["/article/section", "/article/section/subsection"] {
        let mem = evaluate_scoped(d, &idx, &q, path, Strategy::PushDown).unwrap();
        let per = evaluate_scoped(d, &seg, &q, path, Strategy::PushDown).unwrap();
        assert_eq!(mem.len(), per.len(), "{path}: scope counts differ");
        for ((ma, mr), (pa, pr)) in mem.iter().zip(per.iter()) {
            assert_eq!(ma, pa, "{path}: scope roots differ");
            assert_eq!(
                mr.fragments, pr.fragments,
                "{path}: answers differ at {ma:?}"
            );
        }
    }
}
