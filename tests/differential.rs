//! Differential testing: the native engine and the relational engine
//! (experiment P5 — the paper's §7 claim that the model "can be easily
//! implemented on top of an existing relational database") must agree
//! answer-for-answer, across documents, queries and filters.

use xfrag::core::{evaluate, FilterExpr, Query, Strategy};
use xfrag::corpus::docgen::{generate, DocGenConfig};
use xfrag::corpus::figure1;
use xfrag::doc::InvertedIndex;
use xfrag::rel::{encode_document, evaluate_relational};

#[test]
fn figure1_agrees() {
    let fig = figure1();
    let d = &fig.doc;
    let db = encode_document(d);
    let idx = InvertedIndex::build(d);
    for filter in [
        FilterExpr::True,
        FilterExpr::MaxSize(3),
        FilterExpr::MaxHeight(2),
        FilterExpr::MaxWidth(4),
    ] {
        let q = Query::new(["xquery", "optimization"], filter.clone());
        let native = evaluate(d, &idx, &q, Strategy::PushDown).unwrap().fragments;
        let relational = evaluate_relational(&db, d, &q).unwrap();
        assert_eq!(relational, native, "filter {filter}");
    }
}

#[test]
fn generated_corpora_agree() {
    for seed in [1, 2, 3] {
        let cfg = DocGenConfig {
            seed,
            ..DocGenConfig::default()
        }
        .with_approx_nodes(300)
        .plant("kwone", 3)
        .plant("kwtwo", 4);
        let d = generate(&cfg);
        let db = encode_document(&d);
        let idx = InvertedIndex::build(&d);
        for filter in [
            FilterExpr::MaxSize(5),
            FilterExpr::and([FilterExpr::MaxSize(8), FilterExpr::MaxHeight(2)]),
        ] {
            let q = Query::new(["kwone", "kwtwo"], filter.clone());
            let native = evaluate(&d, &idx, &q, Strategy::FixedPointReduced)
                .unwrap()
                .fragments;
            let relational = evaluate_relational(&db, &d, &q).unwrap();
            assert_eq!(relational, native, "seed {seed}, filter {filter}");
        }
    }
}

/// Common terms (high document frequency) stress the join paths harder.
#[test]
fn frequent_terms_agree() {
    let cfg = DocGenConfig {
        seed: 77,
        vocabulary: 30, // tiny vocabulary → frequent collisions
        ..DocGenConfig::default()
    };
    let d = generate(&cfg);
    let db = encode_document(&d);
    let idx = InvertedIndex::build(&d);
    // 'par' (the tag) occurs on every paragraph; 'term1' is the most
    // frequent Zipf word. Tight size filter keeps this tractable.
    let q = Query::new(["title", "term1"], FilterExpr::MaxSize(3));
    let native = evaluate(&d, &idx, &q, Strategy::PushDown)
        .unwrap()
        .fragments;
    let relational = evaluate_relational(&db, &d, &q).unwrap();
    assert_eq!(relational, native);
    assert!(!native.is_empty());
}
