//! Algebraic-law conformance suite: the paper's definitions and theorems
//! checked **exhaustively** on every rooted ordered tree of up to four
//! nodes, plus deterministic witnesses for the laws that *fail* — the
//! pairwise join's non-idempotence and the equal-depth filter's refusal
//! to commute below a join.
//!
//! This complements `tests/properties.rs`, which checks the same laws on
//! *random* trees: random sampling gives breadth, exhaustive enumeration
//! gives certainty on the small cases where the theorems' edge conditions
//! (empty sets, singletons, root-only trees) actually live.
//!
//! | Check | Paper source |
//! |---|---|
//! | join idempotent/commutative/associative/absorptive, exhaustive | Definition 4 |
//! | pairwise join commutative/monotone/∪-distributive, exhaustive | Definition 5 |
//! | pairwise join is **not** idempotent: concrete witness | Definition 5 |
//! | `⋈_k(F) = ⋈_{k+1}(F)` with `k = \|⊖(F)\|`, exhaustive | Theorem 1 |
//! | `F1 ⋈* F2 = F1⁺ ⋈ F2⁺`, exhaustive over all operand pairs | Theorem 2 |
//! | push-down ≡ post-filter for size/height/width, exhaustive | Theorem 3 |
//! | equal-depth push-down changes the answer: concrete witness | §3.4, Figure 7 |

use xfrag::core::{
    evaluate, fixed_point_naive, fixed_point_reduced, fragment_join, pairwise_join, powerset_join,
    powerset_via_fixpoint, reduce, select, EvalStats, FilterExpr, FixpointMode, Fragment,
    FragmentSet, Query, Strategy,
};
use xfrag::doc::{Document, DocumentBuilder, InvertedIndex, NodeId};

/// Build a tree from a parent-choice vector: node `i+1` attaches to node
/// `choices[i]` (which must be `<= i`). Tags are `t0..t{n-1}`.
fn build_tree(choices: &[usize]) -> Document {
    let n = choices.len() + 1;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &c) in choices.iter().enumerate() {
        children[c].push(i + 1);
    }
    let mut b = DocumentBuilder::new();
    fn emit(b: &mut DocumentBuilder, children: &[Vec<usize>], v: usize) {
        b.begin(format!("t{v}"));
        for &c in &children[v] {
            emit(b, children, c);
        }
        b.end();
    }
    emit(&mut b, &children, 0);
    b.finish().expect("enumerated tree is well-formed")
}

/// Every rooted tree with `n` nodes, by enumerating all parent-choice
/// vectors (`choices[i] ∈ 0..=i`). Counts: 1, 1, 2, 6 for n = 1..=4.
fn all_trees(n: usize) -> Vec<Document> {
    let mut out = Vec::new();
    let mut cur = vec![0usize; n.saturating_sub(1)];
    fn rec(n: usize, i: usize, cur: &mut Vec<usize>, out: &mut Vec<Document>) {
        if i + 1 == n {
            out.push(build_tree(cur));
            return;
        }
        for c in 0..=i {
            cur[i] = c;
            rec(n, i + 1, cur, out);
        }
    }
    if n <= 1 {
        out.push(build_tree(&[]));
    } else {
        rec(n, 0, &mut cur, &mut out);
    }
    out
}

/// All non-empty subsets of the document's nodes, as sets of single-node
/// fragments — exactly the operand shape keyword selection produces.
fn singleton_sets(doc: &Document) -> Vec<FragmentSet> {
    let n = doc.len();
    (1u32..(1 << n))
        .map(|mask| {
            FragmentSet::from_iter(
                (0..n)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| Fragment::node(NodeId(i as u32))),
            )
        })
        .collect()
}

/// Definition 4 laws, exhaustively over every node triple of every tree
/// with at most four nodes.
#[test]
fn def4_join_laws_exhaustive() {
    let mut st = EvalStats::new();
    for n in 1..=4 {
        for doc in all_trees(n) {
            let frags: Vec<Fragment> = (0..n as u32).map(|v| Fragment::node(NodeId(v))).collect();
            for a in &frags {
                for b in &frags {
                    // Commutativity.
                    let ab = fragment_join(&doc, a, b, &mut st);
                    assert_eq!(ab, fragment_join(&doc, b, a, &mut st));
                    // Idempotence on the (possibly multi-node) join result.
                    assert_eq!(fragment_join(&doc, &ab, &ab, &mut st), ab);
                    // Absorption: every single node of the result is absorbed.
                    for v in ab.iter() {
                        assert_eq!(fragment_join(&doc, &ab, &Fragment::node(v), &mut st), ab);
                    }
                    for c in &frags {
                        // Associativity.
                        let bc = fragment_join(&doc, b, c, &mut st);
                        assert_eq!(
                            fragment_join(&doc, &ab, c, &mut st),
                            fragment_join(&doc, a, &bc, &mut st),
                        );
                    }
                }
            }
        }
    }
}

/// Definition 5 laws, exhaustively over every pair (and triple, for
/// distributivity) of singleton-fragment operand sets on trees of up to
/// three nodes.
#[test]
fn def5_pairwise_laws_exhaustive() {
    let mut st = EvalStats::new();
    for n in 1..=3 {
        for doc in all_trees(n) {
            let sets = singleton_sets(&doc);
            for f1 in &sets {
                for f2 in &sets {
                    // Commutativity.
                    let j12 = pairwise_join(&doc, f1, f2, &mut st);
                    assert_eq!(j12, pairwise_join(&doc, f2, f1, &mut st));
                    // Monotonicity: F ⊆ F ⋈ F (via the diagonal f ⋈ f = f).
                    let sq = pairwise_join(&doc, f1, f1, &mut st);
                    for f in f1.iter() {
                        assert!(sq.contains(f));
                    }
                    // ∪-distributivity: F1 ⋈ (F2 ∪ F3) = (F1 ⋈ F2) ∪ (F1 ⋈ F3).
                    for f3 in &sets {
                        let lhs = pairwise_join(&doc, f1, &f2.union(f3), &mut st);
                        let rhs = pairwise_join(&doc, f1, f2, &mut st)
                            .union(&pairwise_join(&doc, f1, f3, &mut st));
                        assert_eq!(lhs, rhs);
                    }
                }
            }
        }
    }
}

/// Definition 5 is deliberately **not** idempotent — that is the whole
/// point of iterating it to a fixed point. Witness: siblings n1, n2 under
/// root n0. `F ⋈ F` gains the spanning fragment `⟨n0,n1,n2⟩`, so
/// `F ⋈ F ≠ F`.
#[test]
fn def5_pairwise_join_not_idempotent_witness() {
    let doc = build_tree(&[0, 0]); // n0 → {n1, n2}
    let n1 = Fragment::node(NodeId(1));
    let n2 = Fragment::node(NodeId(2));
    let f = FragmentSet::from_iter([n1.clone(), n2.clone()]);
    let mut st = EvalStats::new();
    let joined = pairwise_join(&doc, &f, &f, &mut st);
    assert_ne!(joined, f, "pairwise join must not be idempotent here");
    let span = fragment_join(&doc, &n1, &n2, &mut st);
    assert_eq!(span.size(), 3, "join of the siblings spans the root");
    assert_eq!(joined, FragmentSet::from_iter([n1, n2, span]));
}

/// Theorem 1, exhaustively: for every singleton-fragment operand set `F`
/// on every tree with at most four nodes, `k = |⊖(F)|` rounds of
/// `H ← (H ⋈ F) ∪ H` reach the fixed point — one more round adds nothing
/// and the result equals `F⁺` from both implementations.
#[test]
fn theorem1_iteration_bound_exhaustive() {
    let mut st = EvalStats::new();
    for n in 1..=4 {
        for doc in all_trees(n) {
            for f in singleton_sets(&doc) {
                let k = reduce(&doc, &f, &mut st).len();
                assert!(k >= 1, "⊖(F) of a non-empty F is non-empty");
                // ⋈_k(F): k − 1 pairwise-join applications starting at F.
                let mut h = f.clone();
                for _ in 1..k {
                    h = pairwise_join(&doc, &h, &f, &mut st).union(&h);
                }
                // ⋈_{k+1}(F) = ⋈_k(F): the claimed bound is tight enough.
                let once_more = pairwise_join(&doc, &h, &f, &mut st).union(&h);
                assert_eq!(once_more, h, "k = |⊖(F)| rounds did not stabilize");
                // And it is the fixed point both implementations compute.
                assert_eq!(h, fixed_point_naive(&doc, &f, &mut st));
                assert_eq!(h, fixed_point_reduced(&doc, &f, &mut st));
            }
        }
    }
}

/// Theorem 2, exhaustively: `F1 ⋈* F2 = F1⁺ ⋈ F2⁺` for **every** pair of
/// non-empty singleton-fragment operand sets on every tree with at most
/// four nodes, with the literal powerset enumeration as the oracle.
#[test]
fn theorem2_exhaustive_small_trees() {
    let mut st = EvalStats::new();
    for n in 1..=4 {
        for doc in all_trees(n) {
            let sets = singleton_sets(&doc);
            for f1 in &sets {
                for f2 in &sets {
                    let oracle = powerset_join(&doc, f1, f2, &mut st)
                        .expect("operands are within the oracle limit");
                    // The rewrite, composed by hand from its two halves.
                    let p1 = fixed_point_naive(&doc, f1, &mut st);
                    let p2 = fixed_point_naive(&doc, f2, &mut st);
                    assert_eq!(pairwise_join(&doc, &p1, &p2, &mut st), oracle);
                    // And through both packaged fixed-point modes.
                    for mode in [FixpointMode::Naive, FixpointMode::Reduced] {
                        assert_eq!(powerset_via_fixpoint(&doc, f1, f2, mode, &mut st), oracle);
                    }
                }
            }
        }
    }
}

/// Theorem 3, exhaustively for the three anti-monotonic filter shapes the
/// issue calls out: pushing the selection below the pairwise join leaves
/// the answer unchanged, for every operand pair of at most two fragments
/// on every tree with at most four nodes.
#[test]
fn theorem3_pushdown_equals_postfilter_exhaustive() {
    let mut st = EvalStats::new();
    for n in 1..=4 {
        for doc in all_trees(n) {
            let sets: Vec<FragmentSet> = singleton_sets(&doc)
                .into_iter()
                .filter(|s| s.len() <= 2)
                .collect();
            let filters = [
                FilterExpr::MaxSize(2),
                FilterExpr::MaxHeight(1),
                FilterExpr::MaxWidth(1),
                FilterExpr::MaxSize(3),
                FilterExpr::MaxWidth(2),
            ];
            for p in &filters {
                assert!(p.is_anti_monotonic());
                for f1 in &sets {
                    for f2 in &sets {
                        let lhs = select(&doc, p, &pairwise_join(&doc, f1, f2, &mut st), &mut st);
                        let s1 = select(&doc, p, f1, &mut st);
                        let s2 = select(&doc, p, f2, &mut st);
                        let rhs = select(&doc, p, &pairwise_join(&doc, &s1, &s2, &mut st), &mut st);
                        assert_eq!(lhs, rhs, "filter {p} on a {n}-node tree");
                    }
                }
            }
        }
    }
}

/// The §3.4 equal-depth filter is **not** anti-monotonic, and pushing it
/// below the join is unsound. Witness: root `r` with children `a`, `b`.
/// The operands are the single keyword nodes, neither of which contains
/// both terms, so the pushed selection annihilates the operands — yet the
/// post-filtered join keeps `⟨r,a,b⟩`, where both terms sit at depth 1.
#[test]
fn equal_depth_pushdown_counterexample() {
    let mut b = DocumentBuilder::new();
    b.begin("r");
    b.begin("a");
    b.end();
    b.begin("b");
    b.end();
    b.end();
    let doc = b.finish().unwrap();
    let p = FilterExpr::EqualDepth("a".into(), "b".into());
    assert!(!p.is_anti_monotonic());

    let f1 = FragmentSet::from_iter([Fragment::node(NodeId(1))]); // ⟨a⟩
    let f2 = FragmentSet::from_iter([Fragment::node(NodeId(2))]); // ⟨b⟩
    let mut st = EvalStats::new();

    let post = select(&doc, &p, &pairwise_join(&doc, &f1, &f2, &mut st), &mut st);
    assert_eq!(post.len(), 1, "post-filtering keeps the spanning fragment");

    let pushed_operand1 = select(&doc, &p, &f1, &mut st);
    let pushed_operand2 = select(&doc, &p, &f2, &mut st);
    assert!(pushed_operand1.is_empty() && pushed_operand2.is_empty());
    let pushed = select(
        &doc,
        &p,
        &pairwise_join(&doc, &pushed_operand1, &pushed_operand2, &mut st),
        &mut st,
    );
    assert_ne!(
        post, pushed,
        "blind push-down of equal-depth changes the answer"
    );

    // The optimizer must therefore refuse to push it: the push-down
    // strategy still agrees with brute force on the full query.
    let idx = InvertedIndex::build(&doc);
    let q = Query::new(["a".to_string(), "b".to_string()], p);
    let oracle = evaluate(&doc, &idx, &q, Strategy::BruteForce).unwrap();
    assert!(!oracle.fragments.is_empty());
    for s in [
        Strategy::FixedPointNaive,
        Strategy::FixedPointReduced,
        Strategy::PushDown,
    ] {
        let r = evaluate(&doc, &idx, &q, s).unwrap();
        assert_eq!(r.fragments, oracle.fragments, "strategy {}", s.name());
    }
}
