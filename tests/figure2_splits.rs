//! Figure 2 of the paper: "there is no prior knowledge of how keywords
//! would be split across the nodes of a desired XML subtree". The figure
//! enumerates split patterns of two keywords k1, k2 over a target
//! subtree; this test builds a document realizing each pattern and checks
//! the query mechanism retrieves the target fragment in every case —
//! the property the smallest-subtree semantics lacks.

use xfrag::core::{evaluate, FilterExpr, Fragment, Query, Strategy};
use xfrag::doc::{Document, DocumentBuilder, InvertedIndex, NodeId};

fn query_finds(doc: &Document, terms: [&str; 2], target: &[u32]) -> bool {
    let idx = InvertedIndex::build(doc);
    let q = Query::new(terms, FilterExpr::MaxSize(6));
    let r = evaluate(doc, &idx, &q, Strategy::PushDown).unwrap();
    let t = Fragment::from_nodes(doc, target.iter().map(|&n| NodeId(n))).unwrap();
    r.fragments.contains(&t)
}

fn target_found(doc: &Document, target: &[u32]) -> bool {
    query_finds(doc, ["k1", "k2"], target)
}

/// Pattern (a): both keywords in one leaf.
#[test]
fn both_keywords_one_node() {
    let mut b = DocumentBuilder::new();
    b.begin("sec"); // 0
    b.leaf("p", "k1 k2"); // 1
    b.leaf("p", "filler"); // 2
    b.end();
    let d = b.finish().unwrap();
    assert!(target_found(&d, &[1]));
}

/// Pattern (b): keywords in two sibling leaves — the target is the
/// siblings plus their parent.
#[test]
fn keywords_in_sibling_leaves() {
    let mut b = DocumentBuilder::new();
    b.begin("sec"); // 0
    b.leaf("p", "k1"); // 1
    b.leaf("p", "k2"); // 2
    b.end();
    let d = b.finish().unwrap();
    assert!(target_found(&d, &[0, 1, 2]));
}

/// Pattern (c): one keyword at an internal node (a title), the other in a
/// leaf below it.
#[test]
fn keyword_at_internal_node() {
    let mut b = DocumentBuilder::new();
    b.begin("sec"); // 0
    b.text("k1");
    b.leaf("p", "k2"); // 1
    b.leaf("p", "filler"); // 2
    b.end();
    let d = b.finish().unwrap();
    assert!(target_found(&d, &[0, 1]));
}

/// Pattern (d): keywords in leaves of different subsections — the target
/// spans both subsections through their common section.
#[test]
fn keywords_across_subtrees() {
    let mut b = DocumentBuilder::new();
    b.begin("sec"); // 0
    b.begin("sub"); // 1
    b.leaf("p", "k1"); // 2
    b.end();
    b.begin("sub"); // 3
    b.leaf("p", "k2"); // 4
    b.end();
    b.end();
    let d = b.finish().unwrap();
    assert!(target_found(&d, &[0, 1, 2, 3, 4]));
}

/// Pattern (e): a keyword occurring on *both* sides — every combination
/// is an answer, including the one-sided small fragments.
#[test]
fn repeated_keyword_occurrences() {
    let mut b = DocumentBuilder::new();
    b.begin("sec"); // 0
    b.leaf("p", "k1 k2"); // 1
    b.leaf("p", "k1"); // 2
    b.end();
    let d = b.finish().unwrap();
    assert!(target_found(&d, &[1]));
    assert!(target_found(&d, &[0, 1, 2]));
}

/// The paper's headline contrast (§1): the smallest-subtree answer is n17
/// alone, but the model also produces the self-contained ⟨n16,n17,n18⟩ —
/// and the SLCA baseline cannot.
#[test]
fn figure1_target_beyond_smallest_subtree() {
    use xfrag::baseline::slca;
    use xfrag::corpus::figure1;
    let fig = figure1();
    let d = &fig.doc;
    let idx = InvertedIndex::build(d);
    let terms = vec!["xquery".to_string(), "optimization".to_string()];
    let roots = slca(d, &idx, &terms);
    assert_eq!(roots, vec![NodeId(17)], "SLCA answers n17 only");
    assert!(query_finds(d, ["xquery", "optimization"], &[16, 17, 18]));
}
