//! `xfrag serve` — a std-only TCP query server over a corpus directory.
//!
//! Architecture (one paragraph): the accept loop spawns one handler
//! thread per connection; handlers decode newline-delimited JSON
//! requests and either answer inline (`health`, `stats`, `shutdown`,
//! admission rejections) or enqueue a job on a bounded queue served by
//! a fixed pool of worker threads. Each worker wraps request handling
//! in `catch_unwind`: a panic (organic or injected via `--inject`)
//! becomes a structured `error` response, the worker spawns its own
//! replacement, and the process lives on. Deadlines are measured from
//! *admission* and wired into the existing [`Budget`] wall-clock and a
//! per-request [`CancelToken`] armed by a watchdog thread, so the
//! degradation ladder answers with a sound subset when time runs out.
//! `shutdown` drains gracefully: admission closes, queued work
//! finishes, workers exit, and the final summary asserts zero
//! in-flight requests.
//!
//! There is no SIGTERM hook — signal handling needs a crate or unsafe
//! libc bindings, both off-limits here — so graceful drain is exposed
//! as the `shutdown` request kind instead (see DESIGN.md).

use crate::commands::CliError;
use crate::protocol::{status, Answer, Request, RequestKind, Response};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use xfrag_core::collection::{
    evaluate_collection_budgeted_cached_traced, top_k_collection, CollectionResult,
};
use xfrag_core::fault::{panic_message, site};
use xfrag_core::rank::RankConfig;
use xfrag_core::snippet::{snippet, SnippetConfig};
use xfrag_core::trace::{LatencyHistogram, Tracer};
use xfrag_core::{
    Breach, Budget, CancelToken, EvalStats, ExecPolicy, FaultInjector, FaultPlan, GenerationTag,
    Query, QueryCache, QueryError,
};
use xfrag_doc::manifest;
use xfrag_doc::{Collection, Document};

/// Parsed `xfrag serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Corpus directory (`.xml` / `.xfrg` files).
    pub dir: String,
    /// TCP port (0 picks an ephemeral port, printed on startup).
    pub port: u16,
    /// Worker pool size.
    pub workers: usize,
    /// Admission queue bound; requests beyond it are shed.
    pub queue_depth: usize,
    /// Server-wide per-request deadline (clamps request deadlines).
    pub timeout_ms: Option<u64>,
    /// Poll the corpus dir every N ms and hot-reload newer generations.
    pub watch_ms: Option<u64>,
    /// Fault-injection spec `site@hit=action,...` (see `core::fault`).
    pub inject: Option<String>,
    /// Seed for a generated fault plan over the runtime sites.
    pub fault_seed: Option<u64>,
    /// Query-cache capacity in megabytes (shared across the pool).
    pub cache_mb: u64,
    /// Disable the query cache entirely.
    pub no_cache: bool,
}

impl ServeArgs {
    /// Defaults for everything but the corpus directory.
    pub fn new(dir: impl Into<String>) -> Self {
        ServeArgs {
            dir: dir.into(),
            port: 7878,
            workers: 4,
            queue_depth: 64,
            timeout_ms: None,
            watch_ms: None,
            inject: None,
            fault_seed: None,
            cache_mb: 64,
            no_cache: false,
        }
    }

    /// Build the fault injector from `--inject` and/or `--fault-seed`.
    fn injector(&self) -> Result<Option<Arc<FaultInjector>>, CliError> {
        let mut plan = match &self.inject {
            None => FaultPlan::new(),
            Some(spec) => FaultPlan::parse(spec).map_err(CliError::Query)?,
        };
        if let Some(seed) = self.fault_seed {
            let seeded = FaultPlan::from_seed(
                seed,
                &[
                    site::SERVE_WORKER,
                    site::COLLECTION_DOC,
                    site::QUERY_EVAL,
                    site::PARALLEL_WORKER,
                ],
                4,
                8,
            );
            for (s, hit, action) in seeded.arms() {
                plan = plan.arm(s.clone(), *hit, *action);
            }
        }
        Ok(if plan.is_empty() {
            None
        } else {
            Some(plan.build())
        })
    }
}

/// Serve counters; exposed verbatim by the `stats` request kind.
struct ServeStats {
    total: u64,
    ok: u64,
    degraded: u64,
    shed: u64,
    timeout: u64,
    error: u64,
    shutting_down: u64,
    /// Request lines that did not decode (also counted under `error`).
    invalid: u64,
    worker_panics: u64,
    /// Summed evaluation counters across all query requests.
    eval: EvalStats,
    /// Worker-side handling latency.
    latency: LatencyHistogram,
}

impl ServeStats {
    fn new() -> Self {
        ServeStats {
            total: 0,
            ok: 0,
            degraded: 0,
            shed: 0,
            timeout: 0,
            error: 0,
            shutting_down: 0,
            invalid: 0,
            worker_panics: 0,
            eval: EvalStats::new(),
            latency: LatencyHistogram::new(),
        }
    }

    fn bump(&mut self, status: &str) {
        self.total += 1;
        match status {
            status::OK => self.ok += 1,
            status::DEGRADED => self.degraded += 1,
            status::SHED => self.shed += 1,
            status::TIMEOUT => self.timeout += 1,
            status::ERROR => self.error += 1,
            status::SHUTTING_DOWN => self.shutting_down += 1,
            _ => {}
        }
    }
}

/// One admitted query waiting for (or being processed by) a worker.
struct Job {
    req: Request,
    /// Admission time; deadlines are measured from here, so time spent
    /// queued counts against the request.
    enqueued: Instant,
    reply: mpsc::Sender<Response>,
}

/// State guarded by the queue mutex.
struct Inner {
    queue: VecDeque<Job>,
    /// Admitted but not yet responded-to queries.
    in_flight: usize,
    workers_alive: usize,
    /// Open connection handlers. Part of the drain condition so the
    /// process never exits while a handler still owes a reply (the
    /// shutdown acknowledgement itself, or a drain rejection).
    conns: usize,
}

/// One immutable corpus snapshot. Requests grab an `Arc<Generation>` at
/// admission and keep answering from it even if a reload swaps the
/// shared pointer mid-evaluation — that is the whole zero-downtime
/// story: readers never block writers and vice versa.
pub(crate) struct Generation {
    /// The loaded corpus.
    coll: Collection,
    /// Files that failed to load, with reasons.
    quarantined: Vec<(String, String)>,
    /// Manifest generation number; 0 for an unversioned (legacy) corpus.
    number: u64,
    /// Verified parent chain of the serving manifest, nearest ancestor
    /// first; empty for a full generation or an unversioned corpus.
    parent_chain: Vec<u64>,
    /// Documents whose data files are referenced from an ancestor
    /// generation (delta carry) vs written by this generation itself.
    docs_carried: u64,
    docs_rewritten: u64,
    /// Display name → manifest checksum. Equal sums across a reload
    /// prove the file bytes are identical, which is what licenses cache
    /// carry-over. Empty for an unversioned corpus: nothing vouches for
    /// byte identity there, so nothing is carried.
    doc_sums: HashMap<String, u64>,
    /// Rollback messages from [`manifest::load_generation`]: newer
    /// generations that existed on disk but failed verification.
    rollbacks: Vec<String>,
    /// Process-unique cache identity of this snapshot. A reload mints a
    /// fresh tag, so cache entries keyed by the old one become
    /// unreachable (implicit invalidation) while in-flight requests that
    /// pinned the old `Arc` keep hitting their own coherent entries.
    tag: GenerationTag,
}

/// Everything the accept loop, handlers, and workers share.
struct Shared {
    /// Corpus directory, re-scanned on `reload`.
    dir: String,
    /// Current serving snapshot; swapped atomically by a successful
    /// reload. Lock held only to clone or replace the `Arc`.
    gen: Mutex<Arc<Generation>>,
    /// Serializes reload attempts so two concurrent `reload` requests
    /// cannot interleave their load/validate/swap sequences.
    reload_lock: Mutex<()>,
    reloads_ok: AtomicU64,
    reloads_failed: AtomicU64,
    /// Cache carry-over totals across all reloads (see
    /// [`xfrag_core::QueryCache::carry_over`]): entries kept under the
    /// same doc id, rekeyed to a new id, and evicted as changed/removed.
    carry_kept: AtomicU64,
    carry_rekeyed: AtomicU64,
    carry_evicted: AtomicU64,
    queue_depth: usize,
    timeout_ms: Option<u64>,
    fault: Option<Arc<FaultInjector>>,
    /// Shared query cache (`None` under `--no-cache`). One cache for the
    /// whole pool: workers contend only on its internal lock shards.
    cache: Option<Arc<QueryCache>>,
    addr: std::net::SocketAddr,
    shutdown: AtomicBool,
    inner: Mutex<Inner>,
    /// Workers wait here for jobs (or the shutdown signal).
    work_cv: Condvar,
    /// The drain loop waits here for workers to exit and jobs to finish.
    drain_cv: Condvar,
    stats: Mutex<ServeStats>,
}

impl Shared {
    fn bump(&self, status: &str) {
        self.stats.lock().unwrap().bump(status);
    }

    /// The current corpus snapshot. Cheap: one mutex-guarded Arc clone.
    fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.gen.lock().unwrap())
    }
}

/// Run the server until a `shutdown` request drains it. Prints
/// `listening on <addr>` to stdout before accepting (clients and tests
/// key off that line, notably with `--port 0`).
pub fn serve(args: &ServeArgs) -> Result<String, CliError> {
    let fault = args.injector()?;
    let generation = load_corpus(&args.dir, fault.as_ref())?;
    for r in &generation.rollbacks {
        eprintln!("warning: {r}");
    }
    for (name, why) in &generation.quarantined {
        eprintln!("warning: quarantined {name}: {why}");
    }
    if generation.coll.is_empty() {
        return Err(CliError::Query(format!(
            "no loadable documents in {} ({} quarantined)",
            args.dir,
            generation.quarantined.len()
        )));
    }
    let listener = TcpListener::bind(("127.0.0.1", args.port))
        .map_err(|e| CliError::Io(format!("127.0.0.1:{}", args.port), e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Io("local addr".into(), e))?;
    {
        // Not `println!`: a closed stdout must not panic the server.
        let mut out = std::io::stdout().lock();
        let _ = writeln!(out, "listening on {addr}");
        let _ = out.flush();
    }

    let workers = args.workers.max(1);
    let shared = Arc::new(Shared {
        dir: args.dir.clone(),
        gen: Mutex::new(Arc::new(generation)),
        reload_lock: Mutex::new(()),
        reloads_ok: AtomicU64::new(0),
        reloads_failed: AtomicU64::new(0),
        carry_kept: AtomicU64::new(0),
        carry_rekeyed: AtomicU64::new(0),
        carry_evicted: AtomicU64::new(0),
        queue_depth: args.queue_depth.max(1),
        timeout_ms: args.timeout_ms,
        fault,
        cache: (!args.no_cache).then(|| Arc::new(QueryCache::with_capacity_mb(args.cache_mb))),
        addr,
        shutdown: AtomicBool::new(false),
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            in_flight: 0,
            workers_alive: workers,
            conns: 0,
        }),
        work_cv: Condvar::new(),
        drain_cv: Condvar::new(),
        stats: Mutex::new(ServeStats::new()),
    });
    for _ in 0..workers {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || worker_loop(s));
    }
    if let Some(ms) = args.watch_ms {
        let s = Arc::clone(&shared);
        let period = Duration::from_millis(ms.max(1));
        std::thread::spawn(move || {
            while !s.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(period);
                // Only attempt a swap when a strictly newer generation
                // *claims* commitment (its manifest exists); data-file
                // remnants of an in-progress index are not a signal, and
                // a failed probe is not a failed reload.
                let current = s.snapshot().number;
                let newest = manifest::latest_manifest_number(Path::new(&s.dir)).unwrap_or(current);
                if newest > current {
                    match try_reload(&s) {
                        Ok(gen) => eprintln!("watch: reloaded generation {}", gen.number),
                        Err(why) => eprintln!("warning: watch reload failed: {why}"),
                    }
                }
            }
        });
    }

    loop {
        let (stream, _) = match listener.accept() {
            Ok(x) => x,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        // Every accepted connection gets a handler — even during the
        // drain race. `shutdown` pokes us with a loopback connection so
        // the flag check below runs promptly, but the poked-out accept
        // may return a *real* client queued ahead of the poke in the
        // backlog; its handler answers it with a drain rejection instead
        // of a silent hangup (the poke itself just reads EOF and exits).
        shared.inner.lock().unwrap().conns += 1;
        let s = Arc::clone(&shared);
        std::thread::spawn(move || handle_conn(s, stream));
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    drop(listener);

    // Drain: workers exit only once the queue is empty, each job's
    // response is sent before its in-flight slot is released, and every
    // connection handler has flushed its last reply and closed.
    {
        let mut g = shared.inner.lock().unwrap();
        while g.workers_alive > 0 || g.in_flight > 0 || g.conns > 0 {
            g = shared.drain_cv.wait(g).unwrap();
        }
        debug_assert!(g.queue.is_empty());
    }
    let st = shared.stats.lock().unwrap();
    let g = shared.inner.lock().unwrap();
    let quarantined = shared.snapshot().quarantined.len();
    Ok(format!(
        "drained: {} request(s) ({} ok, {} degraded, {} shed, {} timeout, {} error), \
         {} worker panic(s), {} file(s) quarantined, {} in flight\n",
        st.total,
        st.ok,
        st.degraded,
        st.shed,
        st.timeout,
        st.error,
        st.worker_panics,
        quarantined,
        g.in_flight
    ))
}

/// Load the corpus in `dir` as a [`Generation`].
///
/// A manifest-committed corpus loads exactly the newest fully-verified
/// generation's files ([`manifest::load_generation`] handles rollback);
/// a legacy directory (no manifests) scans every `.xml`/`.xfrg` as
/// before. Either way, files that fail to read, decode, or parse —
/// including injected `serve:load` read errors and even a panicking
/// loader — are quarantined instead of refusing to start. Only a
/// directory where manifests exist but *none* verifies is a hard error:
/// anything served from it would be a partial generation.
fn load_corpus(dir: &str, fault: Option<&Arc<FaultInjector>>) -> Result<Generation, CliError> {
    let dirp = Path::new(dir);
    let mut parent_chain: Vec<u64> = Vec::new();
    let mut docs_carried = 0u64;
    let mut docs_rewritten = 0u64;
    let mut doc_sums: HashMap<String, u64> = HashMap::new();
    type LoadFile = (std::path::PathBuf, String, Option<std::path::PathBuf>);
    let (files, number, rollbacks): (Vec<LoadFile>, u64, Vec<String>) =
        match manifest::load_generation(dirp).map_err(|e| CliError::Io(dir.to_string(), e))? {
            manifest::GenerationLoad::Unversioned => {
                // Legacy corpus: scan the directory. Generation-named
                // files and temp remnants are skipped — without a
                // manifest nothing vouches for them. A plain `.xfrg`
                // with an `.xidx` sibling serves segment-backed.
                let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
                    .map_err(|e| CliError::Io(dir.to_string(), e))?
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| {
                        p.extension()
                            .and_then(|e| e.to_str())
                            .is_some_and(|e| e == "xml" || e == "xfrg")
                    })
                    .collect();
                paths.sort();
                let files = paths
                    .into_iter()
                    .filter_map(|p| {
                        let name = p.file_name()?.to_string_lossy().into_owned();
                        if manifest::split_generation_file(&name).is_some()
                            || xfrag_doc::atomic::is_temp_remnant(&name)
                        {
                            return None;
                        }
                        let seg = (name.ends_with(".xfrg"))
                            .then(|| p.with_extension("xidx"))
                            .filter(|sp| sp.exists());
                        Some((p, name, seg))
                    })
                    .collect();
                (files, 0, Vec::new())
            }
            manifest::GenerationLoad::Committed {
                manifest: m,
                rollbacks,
            } => {
                // `load_generation` already verified the chain; a walk
                // failure here would be a concurrent prune, in which
                // case lineage is cosmetic and empty is fine.
                parent_chain = manifest::parent_chain(dirp, &m).unwrap_or_default();
                // Partition the manifest: `.xidx` index segments pair
                // with their document by stem; documents drive the
                // carried/rewritten accounting and cache carry-over.
                let mut seg_paths: HashMap<String, std::path::PathBuf> = HashMap::new();
                let mut docs: Vec<(std::path::PathBuf, String)> = Vec::new();
                for e in &m.files {
                    // Display names drop the `.g<gen>` infix so a
                    // document keeps its identity across reloads.
                    let (display, file_gen) = manifest::split_generation_file(&e.name)
                        .unwrap_or_else(|| (e.name.clone(), m.generation));
                    if let Some(stem) = display.strip_suffix(".xidx") {
                        seg_paths.insert(stem.to_string(), dirp.join(&e.name));
                        continue;
                    }
                    if file_gen == m.generation {
                        docs_rewritten += 1;
                    } else {
                        docs_carried += 1;
                    }
                    doc_sums.insert(display.clone(), e.checksum);
                    docs.push((dirp.join(&e.name), display));
                }
                docs.sort_by(|a, b| a.1.cmp(&b.1));
                let files = docs
                    .into_iter()
                    .map(|(p, display)| {
                        let seg = display
                            .strip_suffix(".xfrg")
                            .and_then(|stem| seg_paths.get(stem).cloned());
                        (p, display, seg)
                    })
                    .collect();
                (files, m.generation, rollbacks)
            }
            manifest::GenerationLoad::NoneCommitted { rollbacks } => {
                return Err(CliError::Query(format!(
                    "no fully-committed generation in {dir}: {}",
                    rollbacks.join("; ")
                )));
            }
        };
    let mut coll = Collection::new();
    let mut quarantined = Vec::new();
    for (path, name, seg_path) in files {
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<Document, CliError> {
            if let Some(inj) = fault {
                inj.fire(site::SERVE_LOAD).map_err(|_| {
                    CliError::Io(name.clone(), std::io::Error::other("injected read error"))
                })?;
            }
            crate::commands::load(&path.to_string_lossy())
        }));
        match attempt {
            Ok(Ok(doc)) => {
                // A bad segment never takes the document down: warn and
                // fall back to the in-memory tree-walk index.
                let seg = seg_path.and_then(|sp| {
                    crate::commands::load_segment(&sp, &doc)
                        .map_err(|why| {
                            eprintln!(
                                "warning: {name}: index segment unusable ({why}); \
                                 serving with tree walks"
                            );
                        })
                        .ok()
                });
                match seg {
                    Some(seg) => coll.add_with_segment(&name, doc, seg),
                    None => coll.add(&name, doc),
                };
            }
            Ok(Err(e)) => quarantined.push((name, e.to_string())),
            Err(payload) => quarantined.push((
                name,
                format!("loader panicked: {}", panic_message(payload.as_ref())),
            )),
        }
    }
    Ok(Generation {
        coll,
        quarantined,
        number,
        parent_chain,
        docs_carried,
        docs_rewritten,
        doc_sums,
        rollbacks,
        tag: GenerationTag::fresh(),
    })
}

/// Build the next generation off the serving path and swap it in.
/// Runs on the calling connection-handler thread — never on a worker —
/// so the pool keeps answering queries from the old snapshot throughout.
/// On any failure the serving generation is untouched and
/// `reloads_failed` is bumped; the error is also logged to stderr.
fn try_reload(s: &Arc<Shared>) -> Result<Arc<Generation>, String> {
    let _serialize = s.reload_lock.lock().unwrap();
    let current = s.snapshot();
    let fail = |why: String| -> Result<Arc<Generation>, String> {
        s.reloads_failed.fetch_add(1, Ordering::SeqCst);
        eprintln!(
            "warning: reload failed, still serving generation {}: {why}",
            current.number
        );
        Err(why)
    };
    let next = match load_corpus(&s.dir, s.fault.as_ref()) {
        Ok(g) => g,
        Err(e) => return fail(e.to_string()),
    };
    if next.coll.is_empty() {
        return fail(format!(
            "no loadable documents in {} ({} quarantined)",
            s.dir,
            next.quarantined.len()
        ));
    }
    if next.number < current.number {
        return fail(format!(
            "newest committed generation is {} but generation {} is already serving",
            next.number, current.number
        ));
    }
    if next.number == current.number && !next.rollbacks.is_empty() {
        // A newer generation exists on disk but failed verification:
        // re-loading what we already serve is not the reload that was
        // asked for.
        return fail(next.rollbacks.join("; "));
    }
    for r in &next.rollbacks {
        eprintln!("warning: {r}");
    }
    // Carry cache entries for byte-identical documents across the
    // generation bump. Manifest checksums vouch for byte identity:
    // equal sums on both sides mean the same file bytes, hence the same
    // parse tree and `NodeId`s, hence entry-for-entry identical cache
    // contents — so postings/fixpoint/result entries for untouched
    // documents are rekeyed to the new tag instead of dropped. Changed,
    // removed, quarantined, or unverifiable (unversioned) documents get
    // no mapping and their entries are evicted. Requests already
    // in flight keep their pinned old `Arc` and tag; their entries were
    // just moved, so they take benign misses, never stale hits.
    if let Some(cache) = &s.cache {
        let old_ids: HashMap<&str, u32> = current
            .coll
            .ids()
            .map(|id| (current.coll.name(id), id.0))
            .collect();
        let mut doc_map = HashMap::new();
        for id in next.coll.ids() {
            let name = next.coll.name(id);
            if let (Some(old), Some(sum)) = (old_ids.get(name), next.doc_sums.get(name)) {
                if current.doc_sums.get(name) == Some(sum) {
                    doc_map.insert(*old, id.0);
                }
            }
        }
        let co = cache.carry_over(current.tag, next.tag, &doc_map);
        s.carry_kept.fetch_add(co.kept, Ordering::SeqCst);
        s.carry_rekeyed.fetch_add(co.rekeyed, Ordering::SeqCst);
        s.carry_evicted.fetch_add(co.evicted, Ordering::SeqCst);
    }
    let next = Arc::new(next);
    *s.gen.lock().unwrap() = Arc::clone(&next);
    s.reloads_ok.fetch_add(1, Ordering::SeqCst);
    Ok(next)
}

/// How often an idle connection's blocked read wakes up to check the
/// drain flag. Bounds how long an idle connection can stall a drain,
/// while leaving a wide window for a request already on the wire to be
/// answered with a structured rejection rather than a hangup.
const DRAIN_POLL: Duration = Duration::from_millis(500);

/// Decrements the shared connection count (and wakes the drain loop)
/// when a handler exits, on every exit path.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut g = self.0.inner.lock().unwrap();
        g.conns -= 1;
        drop(g);
        self.0.drain_cv.notify_all();
    }
}

/// One connection: read request lines, write exactly one response line
/// per request, until EOF, a write error, or the drain. During a drain
/// the handler answers at most one final request (typically a
/// `shutting-down` rejection) and then closes, so a chatty client
/// cannot hold the drain open forever.
fn handle_conn(s: Arc<Shared>, stream: TcpStream) {
    let _guard = ConnGuard(Arc::clone(&s));
    stream.set_read_timeout(Some(DRAIN_POLL)).ok();
    let mut reader = match stream.try_clone() {
        Ok(c) => BufReader::new(c),
        Err(_) => return,
    };
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // Assemble one line, riding out poll timeouts (which preserve
        // any partial bytes already appended to `line`).
        let n = loop {
            match reader.read_line(&mut line) {
                Ok(n) => break n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if s.shutdown.load(Ordering::SeqCst) && line.is_empty() {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if n == 0 {
            return; // EOF: client closed.
        }
        if line.trim().is_empty() {
            continue;
        }
        let line = line.trim_end_matches(['\r', '\n']);
        let out = match serde_json::from_str::<Request>(line) {
            Err(e) => {
                {
                    let mut st = s.stats.lock().unwrap();
                    st.invalid += 1;
                }
                s.bump(status::ERROR);
                Response::error(0, format!("bad request: {e}")).to_line()
            }
            Ok(req) => match req.kind {
                RequestKind::Health => {
                    s.bump(status::OK);
                    health_line(&s, req.id)
                }
                RequestKind::Stats => {
                    s.bump(status::OK);
                    stats_line(&s, req.id)
                }
                RequestKind::Reload => {
                    // Handled here on the connection thread, not a
                    // worker: a slow rebuild must never occupy a pool
                    // slot that queries are waiting on.
                    match try_reload(&s) {
                        Ok(gen) => {
                            s.bump(status::OK);
                            let mut r = Response::bare(req.id, status::OK);
                            r.note = Some(format!(
                                "serving generation {} ({} doc(s), {} quarantined)",
                                gen.number,
                                gen.coll.len(),
                                gen.quarantined.len()
                            ));
                            r.to_line()
                        }
                        Err(why) => {
                            s.bump(status::ERROR);
                            Response::error(req.id, format!("reload failed: {why}")).to_line()
                        }
                    }
                }
                RequestKind::Shutdown => begin_shutdown(&s, req.id),
                RequestKind::Query => {
                    let id = req.id;
                    match admit(&s, req) {
                        Err(rejection) => {
                            s.bump(&rejection.status);
                            rejection.to_line()
                        }
                        Ok(rx) => match rx.recv() {
                            Ok(resp) => resp.to_line(),
                            // Unreachable by construction (workers always
                            // reply, even on panic), kept as a no-lost-
                            // responses backstop.
                            Err(_) => {
                                s.bump(status::ERROR);
                                Response::error(id, "internal: reply channel closed").to_line()
                            }
                        },
                    }
                }
            },
        };
        let wrote = writer
            .write_all(out.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush());
        if wrote.is_err() {
            return;
        }
        // One reply per connection once the drain has begun.
        if s.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Admission control: reject when draining or when the bounded queue is
/// full; otherwise enqueue and hand back the reply channel. Rejections
/// are boxed: they're the cold path, and `Response` is wide.
fn admit(s: &Arc<Shared>, req: Request) -> Result<mpsc::Receiver<Response>, Box<Response>> {
    let id = req.id;
    let (tx, rx) = mpsc::channel();
    let mut g = s.inner.lock().unwrap();
    // Checked under the queue lock: workers only exit when `shutdown`
    // is already visible, so nothing can be enqueued past the drain.
    if s.shutdown.load(Ordering::SeqCst) {
        return Err(Box::new(Response::bare(id, status::SHUTTING_DOWN)));
    }
    if g.queue.len() >= s.queue_depth {
        let mut r = Response::bare(id, status::SHED);
        r.note = Some(format!("queue full (depth {})", s.queue_depth));
        return Err(Box::new(r));
    }
    g.in_flight += 1;
    g.queue.push_back(Job {
        req,
        enqueued: Instant::now(),
        reply: tx,
    });
    drop(g);
    s.work_cv.notify_one();
    Ok(rx)
}

/// Close admission, wake idle workers, and poke the accept loop so the
/// main thread proceeds to the drain phase.
fn begin_shutdown(s: &Arc<Shared>, id: u64) -> String {
    s.shutdown.store(true, Ordering::SeqCst);
    s.work_cv.notify_all();
    let _ = TcpStream::connect(s.addr);
    s.bump(status::OK);
    let mut r = Response::bare(id, status::OK);
    r.note = Some("draining".into());
    r.to_line()
}

fn health_line(s: &Shared, id: u64) -> String {
    let gen = s.snapshot();
    let g = s.inner.lock().unwrap();
    let quarantined: Vec<&str> = gen.quarantined.iter().map(|(n, _)| n.as_str()).collect();
    format!(
        "{{\"id\":{},\"status\":\"ok\",\"workers\":{},\"queued\":{},\"in_flight\":{},\"docs\":{},\"generation\":{},\"quarantined\":{}}}",
        id,
        g.workers_alive,
        g.queue.len(),
        g.in_flight,
        gen.coll.len(),
        gen.number,
        serde_json::to_string(&quarantined).expect("names serialize"),
    )
}

fn stats_line(s: &Shared, id: u64) -> String {
    let gen = s.snapshot();
    // Quarantine detail (file + reason) so operators can see *why* a
    // document is missing from the serving set, not just that it is.
    let quarantined: Vec<String> = gen
        .quarantined
        .iter()
        .map(|(file, reason)| {
            format!(
                "{{\"file\":{},\"reason\":{}}}",
                serde_json::to_string(file).expect("name serializes"),
                serde_json::to_string(reason.lines().next().unwrap_or(""))
                    .expect("reason serializes"),
            )
        })
        .collect();
    let quarantined = format!("[{}]", quarantined.join(","));
    let st = s.stats.lock().unwrap();
    // `"cache":null` under `--no-cache`, the per-tier/per-shard counter
    // object otherwise.
    let cache = match &s.cache {
        None => "null".to_string(),
        Some(c) => c.stats().to_json(),
    };
    // Delta lineage: the serving manifest's parent chain (nearest
    // ancestor first), how many documents it carries vs rewrote, and
    // the lifetime cache carry-over counters.
    let chain = gen
        .parent_chain
        .iter()
        .map(|g| g.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let delta = format!(
        "{{\"parent_chain\":[{}],\"chain_depth\":{},\"docs_carried\":{},\"docs_rewritten\":{},\"carry_over\":{{\"kept\":{},\"rekeyed\":{},\"evicted\":{}}}}}",
        chain,
        gen.parent_chain.len(),
        gen.docs_carried,
        gen.docs_rewritten,
        s.carry_kept.load(Ordering::SeqCst),
        s.carry_rekeyed.load(Ordering::SeqCst),
        s.carry_evicted.load(Ordering::SeqCst),
    );
    // Persistent-index observability: how many documents serve off
    // `.xidx` segments, their total encoded bytes, and how many posting
    // lists have been lazily materialized so far.
    let index = format!(
        "{{\"segments\":{},\"bytes\":{},\"terms_loaded\":{}}}",
        gen.coll.segment_count(),
        gen.coll.index_bytes(),
        gen.coll.index_terms_loaded(),
    );
    format!(
        "{{\"id\":{},\"status\":\"ok\",\"generation\":{},\"reloads\":{{\"ok\":{},\"failed\":{}}},\"quarantined\":{},\"serve\":{{\"total\":{},\"ok\":{},\"degraded\":{},\"shed\":{},\"timeout\":{},\"error\":{},\"shutting_down\":{},\"invalid\":{},\"worker_panics\":{}}},\"eval\":{},\"latency\":{},\"cache\":{},\"delta\":{},\"index\":{}}}",
        id,
        gen.number,
        s.reloads_ok.load(Ordering::SeqCst),
        s.reloads_failed.load(Ordering::SeqCst),
        quarantined,
        st.total,
        st.ok,
        st.degraded,
        st.shed,
        st.timeout,
        st.error,
        st.shutting_down,
        st.invalid,
        st.worker_panics,
        serde_json::to_string(&st.eval).expect("stats serialize"),
        st.latency.to_json(),
        cache,
        delta,
        index,
    )
}

/// Worker thread body: pop jobs until the queue is empty *and* the
/// server is draining. A panicking request is isolated: the payload
/// becomes a structured `error` response, a replacement worker is
/// spawned, and only then does the poisoned thread exit.
fn worker_loop(s: Arc<Shared>) {
    loop {
        let job = {
            let mut g = s.inner.lock().unwrap();
            loop {
                if let Some(j) = g.queue.pop_front() {
                    break j;
                }
                if s.shutdown.load(Ordering::SeqCst) {
                    g.workers_alive -= 1;
                    drop(g);
                    s.drain_cv.notify_all();
                    return;
                }
                g = s.work_cv.wait(g).unwrap();
            }
        };
        let start = Instant::now();
        match catch_unwind(AssertUnwindSafe(|| handle_query(&s, &job))) {
            Ok(resp) => finish(&s, &job, resp, start),
            Err(payload) => {
                {
                    let mut st = s.stats.lock().unwrap();
                    st.worker_panics += 1;
                }
                let msg = panic_message(payload.as_ref());
                let resp = Response::error(
                    job.req.id,
                    format!(
                        "worker panicked (isolated): {}",
                        msg.lines().next().unwrap_or("")
                    ),
                );
                // Respawn first so the pool never shrinks.
                {
                    let mut g = s.inner.lock().unwrap();
                    g.workers_alive += 1;
                }
                let replacement = Arc::clone(&s);
                std::thread::spawn(move || worker_loop(replacement));
                finish(&s, &job, resp, start);
                let mut g = s.inner.lock().unwrap();
                g.workers_alive -= 1;
                drop(g);
                s.drain_cv.notify_all();
                return;
            }
        }
    }
}

/// Record the outcome, send the reply, release the in-flight slot.
fn finish(s: &Shared, job: &Job, resp: Response, start: Instant) {
    {
        let mut st = s.stats.lock().unwrap();
        st.bump(&resp.status);
        st.latency.record(start.elapsed());
        if let Some(es) = &resp.stats {
            st.eval += *es;
        }
    }
    // A client that hung up just discards its reply; not an error.
    let _ = job.reply.send(resp);
    let mut g = s.inner.lock().unwrap();
    g.in_flight -= 1;
    drop(g);
    s.drain_cv.notify_all();
}

/// Evaluate one admitted query. Runs inside the worker's
/// `catch_unwind`, so a panic anywhere below is isolated per request.
fn handle_query(s: &Shared, job: &Job) -> Response {
    let req = &job.req;
    // Pin the corpus snapshot for the whole evaluation: a reload that
    // lands mid-query swaps the shared pointer, but this request keeps
    // its `Arc` and finishes on the generation it started with.
    let gen = s.snapshot();
    let coll = &gen.coll;
    // Fault-injection point for the worker itself: `panic` unwinds into
    // the worker's catch_unwind, `delay:<ms>` stalls, `cancel`
    // short-circuits here. Fired before the deadline is measured so an
    // injected stall longer than the deadline surfaces as a `timeout`
    // response, exactly like a real slow worker.
    if let Some(inj) = &s.fault {
        if inj.fire(site::SERVE_WORKER).is_err() {
            return Response::error(req.id, "cancelled by injected fault at serve:worker");
        }
    }
    // Effective deadline: the tighter of the request's and the server's,
    // measured from admission (queue time counts against the request).
    let deadline = match (s.timeout_ms, req.timeout_ms) {
        (None, None) => None,
        (a, b) => Some(Duration::from_millis(
            a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX)),
        )),
    };
    let waited = job.enqueued.elapsed();
    let remaining = match deadline {
        Some(d) if waited >= d => {
            let mut r = Response::bare(req.id, status::TIMEOUT);
            r.error = Some(format!(
                "deadline of {} ms passed before evaluation started",
                d.as_millis()
            ));
            return r;
        }
        Some(d) => Some(d - waited),
        None => None,
    };
    if req.keywords.is_empty() {
        return Response::error(req.id, "query needs keywords");
    }
    let strategy = match req.strategy() {
        Ok(v) => v,
        Err(e) => return Response::error(req.id, e),
    };
    let degrade = match req.degrade() {
        Ok(v) => v,
        Err(e) => return Response::error(req.id, e),
    };
    let q = Query::new(req.keywords.iter(), req.filter());
    let mut budget: Budget = req.budget();
    budget.wall_clock = remaining;
    let token = CancelToken::new();
    let mut policy = ExecPolicy::with_budget(budget)
        .with_degrade(degrade)
        .with_cancel(token.clone());
    if let Some(f) = &s.fault {
        policy = policy.with_fault(Arc::clone(f));
    }
    // Watchdog: cancels the token when the deadline passes, covering
    // stretches where the governor's own wall-clock checks are sparse.
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = remaining.map(|rem| {
        let t = token.clone();
        let d = Arc::clone(&done);
        std::thread::spawn(move || {
            let start = Instant::now();
            while start.elapsed() < rem && !d.load(Ordering::SeqCst) {
                std::thread::park_timeout(rem.saturating_sub(start.elapsed()));
            }
            if !d.load(Ordering::SeqCst) {
                t.cancel();
            }
        })
    });
    let result = evaluate_collection_budgeted_cached_traced(
        coll,
        &q,
        strategy,
        &policy,
        &Tracer::disabled(),
        s.cache.as_deref().map(|c| (c, gen.tag)),
    );
    done.store(true, Ordering::SeqCst);
    if let Some(w) = &watchdog {
        w.thread().unpark(); // let it exit promptly; no need to join
    }
    match result {
        Ok(r) => {
            let ranked = CollectionResult {
                answers: r.answers.clone(),
                docs_pruned: r.docs_pruned,
                docs_failed: r.docs_failed.clone(),
                stats: r.stats,
            };
            let k = req.top_k.unwrap_or(10);
            let top = top_k_collection(coll, &ranked, &q, &RankConfig::default(), k);
            let mut resp = Response::bare(
                req.id,
                if r.is_degraded() {
                    status::DEGRADED
                } else {
                    status::OK
                },
            );
            resp.answers = top
                .iter()
                .map(|(doc_id, f, score)| Answer {
                    doc: coll.name(*doc_id).to_string(),
                    score: *score,
                    nodes: f.nodes().iter().map(|n| n.0).collect(),
                    snippet: snippet(coll.doc(*doc_id), f, &q.terms, &SnippetConfig::default()),
                })
                .collect();
            if r.is_degraded() {
                // Assembled from counters and rung names only — never
                // elapsed times — to keep response bytes deterministic.
                let mut notes = Vec::new();
                if r.docs_skipped > 0 {
                    notes.push(format!("{} doc(s) skipped", r.docs_skipped));
                }
                for (doc_id, d) in &r.degraded_docs {
                    notes.push(format!(
                        "{} degraded to {}",
                        coll.name(*doc_id),
                        d.rung.map(|rg| rg.name()).unwrap_or("none")
                    ));
                }
                for (doc_id, msg) in &r.docs_failed {
                    notes.push(format!(
                        "{} failed: {}",
                        coll.name(*doc_id),
                        msg.lines().next().unwrap_or("")
                    ));
                }
                resp.note = Some(notes.join("; "));
            }
            resp.stats = Some(r.stats);
            resp
        }
        Err(QueryError::Cancelled) if token.is_cancelled() => {
            let mut r = Response::bare(req.id, status::TIMEOUT);
            r.error = Some("deadline exceeded during evaluation".into());
            r
        }
        Err(QueryError::BudgetExceeded(Breach::Deadline)) => {
            let mut r = Response::bare(req.id, status::TIMEOUT);
            r.error = Some("deadline exceeded during evaluation".into());
            r
        }
        Err(e) => Response::error(req.id, e.to_string()),
    }
}

/// `xfrag request <addr> <json>` — one-shot client: send one request
/// line, print the one response line. Used by CI smoke scripts and the
/// soak test so no external netcat-style tool is needed.
pub fn request(addr: &str, json: &str) -> Result<String, CliError> {
    let stream = TcpStream::connect(addr).map_err(|e| CliError::Io(addr.to_string(), e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    writer
        .write_all(json.as_bytes())
        .and_then(|_| writer.write_all(b"\n"))
        .and_then(|_| writer.flush())
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    if line.is_empty() {
        return Err(CliError::Query(
            "server closed the connection without replying".into(),
        ));
    }
    if !line.ends_with('\n') {
        line.push('\n');
    }
    Ok(line)
}

/// Reply statuses worth retrying: the server said "not now", not "no".
fn is_retryable_reply(line: &str) -> bool {
    [status::SHED, status::TIMEOUT, status::SHUTTING_DOWN]
        .iter()
        .any(|s| line.contains(&format!("\"status\":\"{s}\"")))
}

/// Transport failures worth retrying: the server may be booting,
/// restarting, or mid-drain.
fn is_retryable_error(e: &CliError) -> bool {
    use std::io::ErrorKind;
    match e {
        CliError::Io(_, io) => matches!(
            io.kind(),
            ErrorKind::ConnectionRefused
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::TimedOut
                | ErrorKind::WouldBlock
        ),
        CliError::Query(m) => m.contains("without replying"),
        _ => false,
    }
}

/// `xfrag request` with a bounded retry budget. With `retries == 0`
/// this is exactly [`request`]: whatever reply arrives is printed and
/// exits 0, so scripts that grep for `shed`/`timeout` replies keep
/// working. With retries, retryable outcomes (shed, timeout, or
/// shutting-down replies; refused/reset/timed-out connections) are
/// retried with exponential backoff plus deterministic jitter, up to
/// `retries` extra attempts; exhaustion is [`CliError::RetriesExhausted`]
/// (exit code 3). Non-retryable failures surface immediately (exit 1).
pub fn request_with_retry(
    addr: &str,
    json: &str,
    retries: u32,
    backoff_ms: u64,
) -> Result<String, CliError> {
    if retries == 0 {
        return request(addr, json);
    }
    // SplitMix64 jitter, seeded per process so concurrent clients that
    // all got shed don't re-stampede the server in lockstep.
    let mut z = 0x9e3779b97f4a7c15u64 ^ (std::process::id() as u64);
    let mut jitter = move || {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    };
    let mut last = String::new();
    for attempt in 0..=retries {
        if attempt > 0 {
            let base = backoff_ms.saturating_mul(1u64 << (attempt - 1).min(16));
            let sleep = base.saturating_add(jitter() % base.max(1));
            eprintln!(
                "retry {attempt}/{retries} in {sleep} ms: {}",
                last.lines().next().unwrap_or("")
            );
            std::thread::sleep(Duration::from_millis(sleep));
        }
        match request(addr, json) {
            Ok(line) if is_retryable_reply(&line) => {
                last = line.trim_end().to_string();
            }
            Ok(line) => return Ok(line),
            Err(e) if is_retryable_error(&e) => {
                last = e.to_string();
            }
            Err(e) => return Err(e),
        }
    }
    Err(CliError::RetriesExhausted(format!(
        "{} attempt(s) to {addr} all failed; last outcome: {last}",
        retries as u64 + 1,
    )))
}
