//! `xfrag serve` — a std-only TCP query server over a corpus directory.
//!
//! Architecture (one paragraph): the corpus is partitioned into N
//! shards by a stable hash of each document's display name
//! (`--shards N`), and each shard is served by a **replica group** of R
//! instances (`--replicas R`); every replica owns its worker pool,
//! bounded admission queue, cache arena, and singleflight table, so a
//! panicking or stalled replica is a fault domain that cannot touch
//! its siblings — in its own group or any other. The accept loop
//! spawns one handler thread per connection; handlers decode
//! newline-delimited JSON requests and either answer inline (`health`,
//! `stats`, `shutdown`, admission rejections) or scatter a query
//! sub-job to each group's preferred replica and gather the per-group
//! results into one merged, ranked response. When a group's reply is
//! late (no answer within a hedge delay derived from the replica's
//! recent latency EWMA), the gather **hedges** the sub-job to a backup
//! replica; the first good reply wins and the loser is cancelled via
//! its [`CancelToken`]. A per-replica circuit breaker (closed → open
//! on consecutive failures → half-open probe) routes dispatch away
//! from broken replicas, and a per-request retry budget caps hedges
//! and failovers so redundancy never amplifies load during a
//! brown-out. Only when *every* replica in a group is open or failed
//! is the group dropped from the merge: the response keeps the
//! survivors' answers, flips `"complete":false`, and reports per-group
//! `shards:{ok,timed_out,shed,panicked,open}` accounting instead of
//! failing the request. Each worker wraps request handling in
//! `catch_unwind`: a panic (organic or injected via `--inject`)
//! becomes a structured reply, the worker spawns its own replacement
//! in the same replica, and the process lives on. Deadlines are
//! measured from *admission* and wired into the existing [`Budget`]
//! wall-clock and a per-request [`CancelToken`] armed by a watchdog
//! thread, so the degradation ladder answers with a sound subset when
//! time runs out. Concurrent identical cold queries coalesce on the
//! replica's singleflight table: one leader evaluates, followers wake
//! and replay the byte-identical cached answer. `shutdown` drains
//! gracefully: admission closes, queued work finishes, workers exit,
//! and the final summary asserts zero in-flight requests.
//!
//! There is no SIGTERM hook — signal handling needs a crate or unsafe
//! libc bindings, both off-limits here — so graceful drain is exposed
//! as the `shutdown` request kind instead (see DESIGN.md).

use crate::commands::CliError;
use crate::protocol::{status, Answer, Request, RequestKind, Response, ShardOutcome};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use xfrag_core::breaker::{BreakerConfig, CircuitBreaker, Permit};
use xfrag_core::collection::{
    evaluate_collection_planned_cached_traced_routed, top_k_collection, BudgetedCollectionResult,
    CollectionResult,
};
use xfrag_core::fault::{panic_message, site};
use xfrag_core::rank::RankConfig;
use xfrag_core::snippet::{snippet, SnippetConfig};
use xfrag_core::trace::{serve_stage, LatencyHistogram, Span, Tracer};
use xfrag_core::{
    flight_key, Breach, Budget, CacheStats, CancelToken, EvalStats, ExecPolicy, FaultInjector,
    FaultPlan, Flight, GenerationTag, PickCounters, PickSnapshot, PlanCache, Query, QueryCache,
    QueryError, RetryBudget, Singleflight,
};
use xfrag_doc::manifest;
use xfrag_doc::{Collection, DocId, Document};

/// Parsed `xfrag serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Corpus directory (`.xml` / `.xfrg` files).
    pub dir: String,
    /// TCP port (0 picks an ephemeral port, printed on startup).
    pub port: u16,
    /// Worker pool size, per shard.
    pub workers: usize,
    /// Admission queue bound, per shard; sub-jobs beyond it are shed.
    pub queue_depth: usize,
    /// Fault-isolated shard count; documents are routed by name hash.
    pub shards: usize,
    /// Replicas per shard: independent instances of the same document
    /// partition, hedged against each other.
    pub replicas: usize,
    /// Hedge-delay floor in ms; also the cold-start hedge delay before
    /// a replica has any latency samples.
    pub hedge_ms: u64,
    /// Consecutive sub-job failures that open a replica's breaker.
    pub breaker_failures: u32,
    /// How long an open breaker refuses sub-jobs before a half-open
    /// probe, in ms.
    pub breaker_cooldown_ms: u64,
    /// Server-wide per-request deadline (clamps request deadlines).
    pub timeout_ms: Option<u64>,
    /// Poll the corpus dir every N ms and hot-reload newer generations.
    pub watch_ms: Option<u64>,
    /// Fault-injection spec `site@hit=action,...` (see `core::fault`).
    pub inject: Option<String>,
    /// Seed for a generated fault plan over the runtime sites.
    pub fault_seed: Option<u64>,
    /// Query-cache capacity in megabytes (split evenly across shards).
    pub cache_mb: u64,
    /// Disable the query cache entirely.
    pub no_cache: bool,
}

impl ServeArgs {
    /// Defaults for everything but the corpus directory.
    pub fn new(dir: impl Into<String>) -> Self {
        ServeArgs {
            dir: dir.into(),
            port: 7878,
            workers: 4,
            queue_depth: 64,
            shards: 1,
            replicas: 1,
            hedge_ms: 25,
            breaker_failures: 3,
            breaker_cooldown_ms: 1000,
            timeout_ms: None,
            watch_ms: None,
            inject: None,
            fault_seed: None,
            cache_mb: 64,
            no_cache: false,
        }
    }

    /// Build the fault injector from `--inject` and/or `--fault-seed`.
    fn injector(&self) -> Result<Option<Arc<FaultInjector>>, CliError> {
        let mut plan = match &self.inject {
            None => FaultPlan::new(),
            Some(spec) => FaultPlan::parse(spec).map_err(CliError::Query)?,
        };
        if let Some(seed) = self.fault_seed {
            let seeded = FaultPlan::from_seed(
                seed,
                &[
                    site::SERVE_WORKER,
                    site::COLLECTION_DOC,
                    site::QUERY_EVAL,
                    site::PARALLEL_WORKER,
                ],
                4,
                8,
            );
            for (s, hit, action) in seeded.arms() {
                plan = plan.arm(s.clone(), *hit, *action);
            }
        }
        Ok(if plan.is_empty() {
            None
        } else {
            Some(plan.build())
        })
    }
}

/// Route a document display name to a shard index.
///
/// FNV-1a rather than [`std::hash::DefaultHasher`]: the std hasher's
/// keys are explicitly not guaranteed stable across processes or
/// releases, and routing must be stable so a restart or reload keeps
/// each document — and therefore each shard's cache arena — on the
/// same shard.
fn route(name: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Serve counters; exposed verbatim by the `stats` request kind.
struct ServeStats {
    total: u64,
    ok: u64,
    degraded: u64,
    shed: u64,
    timeout: u64,
    error: u64,
    shutting_down: u64,
    /// Request lines that did not decode (also counted under `error`).
    invalid: u64,
    worker_panics: u64,
    /// Transient `accept()` failures ridden out by the listener loop
    /// (EMFILE/ENFILE/ECONNABORTED/EINTR and kin).
    accept_errors: u64,
    /// Summed evaluation counters across all query requests.
    eval: EvalStats,
    /// Admission-to-response latency per query request.
    latency: LatencyHistogram,
}

impl ServeStats {
    fn new() -> Self {
        ServeStats {
            total: 0,
            ok: 0,
            degraded: 0,
            shed: 0,
            timeout: 0,
            error: 0,
            shutting_down: 0,
            invalid: 0,
            worker_panics: 0,
            accept_errors: 0,
            eval: EvalStats::new(),
            latency: LatencyHistogram::new(),
        }
    }

    fn bump(&mut self, status: &str) {
        self.total += 1;
        match status {
            status::OK => self.ok += 1,
            status::DEGRADED => self.degraded += 1,
            status::SHED => self.shed += 1,
            status::TIMEOUT => self.timeout += 1,
            status::ERROR => self.error += 1,
            status::SHUTTING_DOWN => self.shutting_down += 1,
            _ => {}
        }
    }
}

/// One replica's slice of an admitted query, waiting for (or being
/// processed by) that replica's worker pool. The corpus snapshot is
/// pinned at admission so every sub-job of one request answers from the
/// same generation even if a reload lands mid-scatter.
struct ShardJob {
    req: Arc<Request>,
    gen: Arc<Generation>,
    /// Admission time; deadlines are measured from here, so time spent
    /// queued counts against the request.
    enqueued: Instant,
    reply: mpsc::Sender<GroupReply>,
    /// Cancelled by the watchdog when the deadline passes, and by the
    /// gather when a sibling replica's reply already won this group.
    cancel: CancelToken,
    group: usize,
    replica: usize,
    /// Attempt ordinal within the group: 0 is the primary dispatch,
    /// higher ordinals are hedges/failovers.
    attempt: usize,
}

/// What one replica contributes to the gather.
enum ShardReply {
    /// The replica evaluated its group's document subset.
    Eval(Box<BudgetedCollectionResult>),
    /// The replica hit the deadline (before or during evaluation).
    Timeout(String),
    /// The replica's evaluation failed outright.
    Error(String),
    /// The replica's worker panicked; a replacement was already spawned.
    Panicked(String),
}

/// One reply envelope: which group and attempt produced it.
struct GroupReply {
    group: usize,
    attempt: usize,
    reply: ShardReply,
}

/// State guarded by one replica's queue mutex.
struct ShardInner {
    queue: VecDeque<ShardJob>,
    /// Admitted but not yet replied-to sub-jobs on this replica.
    in_flight: usize,
    workers_alive: usize,
}

/// One fault domain: a worker pool, a bounded queue, a cache arena,
/// and a singleflight table, plus the health signals the scatter path
/// steers by (latency EWMA, circuit breaker, hedge counters). Nothing
/// here is shared across replicas — the only cross-replica state in
/// the server is the gather merge.
struct Replica {
    inner: Mutex<ShardInner>,
    /// This replica's workers wait here for jobs (or shutdown).
    work_cv: Condvar,
    /// This replica's private cache arena (`None` under `--no-cache`).
    /// Per-replica rather than shared so a wedged or respawning
    /// replica can never poison or contend on a sibling's cache.
    cache: Option<Arc<QueryCache>>,
    /// Coalesces concurrent identical cold queries: one leader
    /// evaluates, followers wait and replay the cached result.
    flights: Singleflight,
    /// Workers respawned after a panic, lifetime total.
    respawns: AtomicU64,
    /// Real (cache-missing) evaluations performed, lifetime total.
    /// The singleflight tests key off this staying at 1 under a
    /// stampede of identical cold queries.
    evaluations: AtomicU64,
    /// Routes sub-jobs away from this replica after consecutive
    /// timeouts/panics; half-open probes let it back in.
    breaker: CircuitBreaker,
    /// EWMA of admission-to-reply latency in microseconds (alpha 1/8);
    /// 0 until the first sample. Drives the group's hedge delay.
    ewma_us: AtomicU64,
    /// Hedge/failover sub-jobs dispatched *to* this replica (it was
    /// the backup), lifetime total.
    hedges: AtomicU64,
    /// Hedge/failover sub-jobs to this replica whose reply won the
    /// group race, lifetime total.
    hedge_wins: AtomicU64,
    /// Memoized planner decisions, keyed by the serving generation's
    /// tag: a hot reload mints a fresh tag, so every cached plan is
    /// invalidated on first use after a swap — plans can never outlive
    /// the corpus state (postings, segment stats) they were computed
    /// from. Per-replica for the same fault-isolation reason as `cache`.
    plans: PlanCache,
    /// Lifetime strategy-pick distribution (auto picks by strategy,
    /// forced requests, mid-query re-plans) for this replica.
    picks: PickCounters,
}

/// One shard's replica group: R independent [`Replica`]s over the same
/// document partition. Scatter picks a preferred replica per request
/// and hedges to a backup when the preferred one is slow.
struct ReplicaGroup {
    replicas: Vec<Replica>,
}

/// State guarded by the global mutex (connection accounting only —
/// queues and pools are per-shard by design).
struct Inner {
    /// Open connection handlers. Part of the drain condition so the
    /// process never exits while a handler still owes a reply (the
    /// shutdown acknowledgement itself, or a drain rejection).
    conns: usize,
}

/// One immutable corpus snapshot. Requests grab an `Arc<Generation>` at
/// admission and keep answering from it even if a reload swaps the
/// shared pointer mid-evaluation — that is the whole zero-downtime
/// story: readers never block writers and vice versa.
pub(crate) struct Generation {
    /// The loaded corpus.
    coll: Collection,
    /// Document ids owned by each shard, in collection order within a
    /// shard. Routing is by display-name hash (see [`route`]), so a
    /// document stays on its shard across reloads and restarts.
    shard_docs: Vec<Vec<DocId>>,
    /// Files that failed to load, with reasons.
    quarantined: Vec<(String, String)>,
    /// Manifest generation number; 0 for an unversioned (legacy) corpus.
    number: u64,
    /// Verified parent chain of the serving manifest, nearest ancestor
    /// first; empty for a full generation or an unversioned corpus.
    parent_chain: Vec<u64>,
    /// Documents whose data files are referenced from an ancestor
    /// generation (delta carry) vs written by this generation itself.
    docs_carried: u64,
    docs_rewritten: u64,
    /// Display name → manifest checksum. Equal sums across a reload
    /// prove the file bytes are identical, which is what licenses cache
    /// carry-over. Empty for an unversioned corpus: nothing vouches for
    /// byte identity there, so nothing is carried.
    doc_sums: HashMap<String, u64>,
    /// Rollback messages from [`manifest::load_generation`]: newer
    /// generations that existed on disk but failed verification.
    rollbacks: Vec<String>,
    /// Process-unique cache identity of this snapshot. A reload mints a
    /// fresh tag, so cache entries keyed by the old one become
    /// unreachable (implicit invalidation) while in-flight requests that
    /// pinned the old `Arc` keep hitting their own coherent entries.
    tag: GenerationTag,
}

/// Everything the accept loop, handlers, and workers share.
struct Shared {
    /// Corpus directory, re-scanned on `reload`.
    dir: String,
    /// Current serving snapshot; swapped atomically by a successful
    /// reload. Lock held only to clone or replace the `Arc`.
    gen: Mutex<Arc<Generation>>,
    /// Serializes reload attempts so two concurrent `reload` requests
    /// cannot interleave their load/validate/swap sequences.
    reload_lock: Mutex<()>,
    reloads_ok: AtomicU64,
    reloads_failed: AtomicU64,
    /// Cache carry-over totals across all reloads and shards (see
    /// [`xfrag_core::QueryCache::carry_over`]): entries kept under the
    /// same doc id, rekeyed to a new id, and evicted as changed/removed.
    carry_kept: AtomicU64,
    carry_rekeyed: AtomicU64,
    carry_evicted: AtomicU64,
    queue_depth: usize,
    timeout_ms: Option<u64>,
    /// Hedge-delay floor (and cold-start hedge delay).
    hedge_floor: Duration,
    fault: Option<Arc<FaultInjector>>,
    /// The replica groups. Fixed at startup; index is the shard id.
    groups: Vec<ReplicaGroup>,
    addr: std::net::SocketAddr,
    shutdown: AtomicBool,
    inner: Mutex<Inner>,
    /// The drain loop waits here for pools to exit and jobs to finish.
    drain_cv: Condvar,
    stats: Mutex<ServeStats>,
}

impl Shared {
    fn bump(&self, status: &str) {
        self.stats.lock().unwrap().bump(status);
    }

    /// The current corpus snapshot. Cheap: one mutex-guarded Arc clone.
    fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.gen.lock().unwrap())
    }
}

/// Briefly synchronize with the drain loop's mutex, then wake it.
/// Callers mutate per-shard state first; passing through the global
/// lock afterwards guarantees the drain loop is either still before
/// its re-check (and will see the mutation) or parked in `wait`
/// (and will be woken) — no lost wakeups.
fn poke_drain(s: &Shared) {
    drop(s.inner.lock().unwrap());
    s.drain_cv.notify_all();
}

/// Workers alive, jobs queued, and sub-jobs in flight, summed across
/// all replicas of all groups (the shape `health` has always reported).
fn pool_totals(s: &Shared) -> (usize, usize, usize) {
    let mut workers = 0;
    let mut queued = 0;
    let mut in_flight = 0;
    for rep in s.groups.iter().flat_map(|g| &g.replicas) {
        let g = rep.inner.lock().unwrap();
        workers += g.workers_alive;
        queued += g.queue.len();
        in_flight += g.in_flight;
    }
    (workers, queued, in_flight)
}

/// EWMA smoothing factor: 1/2^3 = 1/8 of each new sample.
const EWMA_SHIFT: u32 = 3;

/// Hedge delay as a multiple of the preferred replica's latency EWMA —
/// roughly a p95+ cutoff for well-behaved latency distributions, so
/// hedges fire on genuine stragglers, not ordinary jitter.
const HEDGE_EWMA_MULT: u32 = 4;

/// Fold one admission-to-reply latency sample into a replica's EWMA.
fn observe_latency(rep: &Replica, sample: Duration) {
    let us = u64::try_from(sample.as_micros()).unwrap_or(u64::MAX);
    let _ = rep
        .ewma_us
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
            Some(if old == 0 {
                // First sample seeds the average (floor 1 so a sub-µs
                // sample still marks the EWMA as primed).
                us.max(1)
            } else {
                let delta = (us as i128 - old as i128) >> EWMA_SHIFT;
                (old as i128 + delta).clamp(1, u64::MAX as i128) as u64
            })
        });
}

/// How long the gather waits for `rep`'s reply before hedging its
/// group's sub-job to a backup: a multiple of the replica's recent
/// latency, floored (and cold-started) at `--hedge-ms`.
fn hedge_delay(rep: &Replica, floor: Duration) -> Duration {
    match rep.ewma_us.load(Ordering::Relaxed) {
        0 => floor,
        e => floor.max(Duration::from_micros(
            e.saturating_mul(HEDGE_EWMA_MULT as u64),
        )),
    }
}

/// Run the server until a `shutdown` request drains it. Prints
/// `listening on <addr>` to stdout before accepting (clients and tests
/// key off that line, notably with `--port 0`).
pub fn serve(args: &ServeArgs) -> Result<String, CliError> {
    let fault = args.injector()?;
    let shards_n = args.shards.max(1);
    let generation = load_corpus(&args.dir, fault.as_ref(), shards_n)?;
    for r in &generation.rollbacks {
        eprintln!("warning: {r}");
    }
    for (name, why) in &generation.quarantined {
        eprintln!("warning: quarantined {name}: {why}");
    }
    if generation.coll.is_empty() {
        return Err(CliError::Query(format!(
            "no loadable documents in {} ({} quarantined)",
            args.dir,
            generation.quarantined.len()
        )));
    }
    let listener = TcpListener::bind(("127.0.0.1", args.port))
        .map_err(|e| CliError::Io(format!("127.0.0.1:{}", args.port), e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Io("local addr".into(), e))?;
    {
        // Not `println!`: a closed stdout must not panic the server.
        let mut out = std::io::stdout().lock();
        let _ = writeln!(out, "listening on {addr}");
        let _ = out.flush();
    }

    let workers = args.workers.max(1);
    let replicas_n = args.replicas.max(1);
    let gen_tag = generation.tag;
    // Split the cache budget evenly: each replica gets its own arena so
    // arenas never contend or share failure modes across fault domains.
    let per_replica_mb = (args.cache_mb / (shards_n * replicas_n) as u64).max(1);
    let breaker_cfg = BreakerConfig {
        failure_threshold: args.breaker_failures.max(1),
        cooldown: Duration::from_millis(args.breaker_cooldown_ms.max(1)),
    };
    let groups: Vec<ReplicaGroup> = (0..shards_n)
        .map(|_| ReplicaGroup {
            replicas: (0..replicas_n)
                .map(|_| Replica {
                    inner: Mutex::new(ShardInner {
                        queue: VecDeque::new(),
                        in_flight: 0,
                        workers_alive: workers,
                    }),
                    work_cv: Condvar::new(),
                    cache: (!args.no_cache)
                        .then(|| Arc::new(QueryCache::with_capacity_mb(per_replica_mb))),
                    flights: Singleflight::new(),
                    respawns: AtomicU64::new(0),
                    evaluations: AtomicU64::new(0),
                    breaker: CircuitBreaker::new(breaker_cfg),
                    ewma_us: AtomicU64::new(0),
                    hedges: AtomicU64::new(0),
                    hedge_wins: AtomicU64::new(0),
                    plans: PlanCache::new(gen_tag),
                    picks: PickCounters::default(),
                })
                .collect(),
        })
        .collect();
    let shared = Arc::new(Shared {
        dir: args.dir.clone(),
        gen: Mutex::new(Arc::new(generation)),
        reload_lock: Mutex::new(()),
        reloads_ok: AtomicU64::new(0),
        reloads_failed: AtomicU64::new(0),
        carry_kept: AtomicU64::new(0),
        carry_rekeyed: AtomicU64::new(0),
        carry_evicted: AtomicU64::new(0),
        queue_depth: args.queue_depth.max(1),
        timeout_ms: args.timeout_ms,
        hedge_floor: Duration::from_millis(args.hedge_ms.max(1)),
        fault,
        groups,
        addr,
        shutdown: AtomicBool::new(false),
        inner: Mutex::new(Inner { conns: 0 }),
        drain_cv: Condvar::new(),
        stats: Mutex::new(ServeStats::new()),
    });
    for group_idx in 0..shards_n {
        for replica_idx in 0..replicas_n {
            for _ in 0..workers {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(s, group_idx, replica_idx));
            }
        }
    }
    if let Some(ms) = args.watch_ms {
        let s = Arc::clone(&shared);
        let period = Duration::from_millis(ms.max(1));
        std::thread::spawn(move || {
            while !s.shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(period);
                // Only attempt a swap when a strictly newer generation
                // *claims* commitment (its manifest exists); data-file
                // remnants of an in-progress index are not a signal, and
                // a failed probe is not a failed reload.
                let current = s.snapshot().number;
                let newest = manifest::latest_manifest_number(Path::new(&s.dir)).unwrap_or(current);
                if newest > current {
                    match try_reload(&s) {
                        Ok(gen) => eprintln!("watch: reloaded generation {}", gen.number),
                        Err(why) => eprintln!("warning: watch reload failed: {why}"),
                    }
                }
            }
        });
    }

    // Transient accept() failures — EMFILE/ENFILE when handler threads
    // briefly exhaust descriptors, ECONNABORTED when a client gives up
    // in the backlog, EINTR — must not kill the listener. Back off and
    // keep accepting; the backoff resets on the next successful accept
    // so one storm doesn't permanently slow admission.
    let mut accept_backoff = Duration::from_millis(10);
    loop {
        let (stream, _) = match listener.accept() {
            Ok(x) => {
                accept_backoff = Duration::from_millis(10);
                x
            }
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                shared.stats.lock().unwrap().accept_errors += 1;
                use std::io::ErrorKind;
                // Aborted/interrupted accepts cost nothing to retry at
                // once; resource exhaustion needs breathing room for
                // open connections to drain descriptors.
                if !matches!(
                    e.kind(),
                    ErrorKind::Interrupted | ErrorKind::ConnectionAborted | ErrorKind::WouldBlock
                ) {
                    std::thread::sleep(accept_backoff);
                    accept_backoff = (accept_backoff * 2).min(Duration::from_secs(1));
                }
                continue;
            }
        };
        // Every accepted connection gets a handler — even during the
        // drain race. `shutdown` pokes us with a loopback connection so
        // the flag check below runs promptly, but the poked-out accept
        // may return a *real* client queued ahead of the poke in the
        // backlog; its handler answers it with a drain rejection instead
        // of a silent hangup (the poke itself just reads EOF and exits).
        shared.inner.lock().unwrap().conns += 1;
        let s = Arc::clone(&shared);
        std::thread::spawn(move || handle_conn(s, stream));
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    drop(listener);

    // Drain: each replica's workers exit only once its queue is empty,
    // each sub-job's reply is sent before its in-flight slot is
    // released, and every connection handler has flushed its last
    // reply and closed. Lock order: global `inner` first, then each
    // replica — the same order every other multi-lock path uses.
    {
        let mut g = shared.inner.lock().unwrap();
        loop {
            let pools_done = shared.groups.iter().flat_map(|gr| &gr.replicas).all(|rep| {
                let si = rep.inner.lock().unwrap();
                debug_assert!(si.workers_alive > 0 || si.queue.is_empty());
                si.workers_alive == 0 && si.in_flight == 0
            });
            if pools_done && g.conns == 0 {
                break;
            }
            g = shared.drain_cv.wait(g).unwrap();
        }
    }
    let (_, _, in_flight) = pool_totals(&shared);
    let st = shared.stats.lock().unwrap();
    let quarantined = shared.snapshot().quarantined.len();
    Ok(format!(
        "drained: {} request(s) ({} ok, {} degraded, {} shed, {} timeout, {} error), \
         {} worker panic(s), {} file(s) quarantined, {} in flight\n",
        st.total,
        st.ok,
        st.degraded,
        st.shed,
        st.timeout,
        st.error,
        st.worker_panics,
        quarantined,
        in_flight
    ))
}

/// Load the corpus in `dir` as a [`Generation`] partitioned into
/// `shards` routing buckets.
///
/// A manifest-committed corpus loads exactly the newest fully-verified
/// generation's files ([`manifest::load_generation`] handles rollback);
/// a legacy directory (no manifests) scans every `.xml`/`.xfrg` as
/// before. Either way, files that fail to read, decode, or parse —
/// including injected `serve:load` read errors and even a panicking
/// loader — are quarantined instead of refusing to start. Only a
/// directory where manifests exist but *none* verifies is a hard error:
/// anything served from it would be a partial generation.
fn load_corpus(
    dir: &str,
    fault: Option<&Arc<FaultInjector>>,
    shards: usize,
) -> Result<Generation, CliError> {
    let dirp = Path::new(dir);
    let mut parent_chain: Vec<u64> = Vec::new();
    let mut docs_carried = 0u64;
    let mut docs_rewritten = 0u64;
    let mut doc_sums: HashMap<String, u64> = HashMap::new();
    type LoadFile = (std::path::PathBuf, String, Option<std::path::PathBuf>);
    let (files, number, rollbacks): (Vec<LoadFile>, u64, Vec<String>) =
        match manifest::load_generation(dirp).map_err(|e| CliError::Io(dir.to_string(), e))? {
            manifest::GenerationLoad::Unversioned => {
                // Legacy corpus: scan the directory. Generation-named
                // files and temp remnants are skipped — without a
                // manifest nothing vouches for them. A plain `.xfrg`
                // with an `.xidx` sibling serves segment-backed.
                let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
                    .map_err(|e| CliError::Io(dir.to_string(), e))?
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| {
                        p.extension()
                            .and_then(|e| e.to_str())
                            .is_some_and(|e| e == "xml" || e == "xfrg")
                    })
                    .collect();
                paths.sort();
                let files = paths
                    .into_iter()
                    .filter_map(|p| {
                        let name = p.file_name()?.to_string_lossy().into_owned();
                        if manifest::split_generation_file(&name).is_some()
                            || xfrag_doc::atomic::is_temp_remnant(&name)
                        {
                            return None;
                        }
                        let seg = (name.ends_with(".xfrg"))
                            .then(|| p.with_extension("xidx"))
                            .filter(|sp| sp.exists());
                        Some((p, name, seg))
                    })
                    .collect();
                (files, 0, Vec::new())
            }
            manifest::GenerationLoad::Committed {
                manifest: m,
                rollbacks,
            } => {
                // `load_generation` already verified the chain; a walk
                // failure here would be a concurrent prune, in which
                // case lineage is cosmetic and empty is fine.
                parent_chain = manifest::parent_chain(dirp, &m).unwrap_or_default();
                // Partition the manifest: `.xidx` index segments pair
                // with their document by stem; documents drive the
                // carried/rewritten accounting and cache carry-over.
                let mut seg_paths: HashMap<String, std::path::PathBuf> = HashMap::new();
                let mut docs: Vec<(std::path::PathBuf, String)> = Vec::new();
                for e in &m.files {
                    // Display names drop the `.g<gen>` infix so a
                    // document keeps its identity across reloads.
                    let (display, file_gen) = manifest::split_generation_file(&e.name)
                        .unwrap_or_else(|| (e.name.clone(), m.generation));
                    if let Some(stem) = display.strip_suffix(".xidx") {
                        seg_paths.insert(stem.to_string(), dirp.join(&e.name));
                        continue;
                    }
                    if file_gen == m.generation {
                        docs_rewritten += 1;
                    } else {
                        docs_carried += 1;
                    }
                    doc_sums.insert(display.clone(), e.checksum);
                    docs.push((dirp.join(&e.name), display));
                }
                docs.sort_by(|a, b| a.1.cmp(&b.1));
                let files = docs
                    .into_iter()
                    .map(|(p, display)| {
                        let seg = display
                            .strip_suffix(".xfrg")
                            .and_then(|stem| seg_paths.get(stem).cloned());
                        (p, display, seg)
                    })
                    .collect();
                (files, m.generation, rollbacks)
            }
            manifest::GenerationLoad::NoneCommitted { rollbacks } => {
                return Err(CliError::Query(format!(
                    "no fully-committed generation in {dir}: {}",
                    rollbacks.join("; ")
                )));
            }
        };
    let mut coll = Collection::new();
    let mut quarantined = Vec::new();
    for (path, name, seg_path) in files {
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<Document, CliError> {
            if let Some(inj) = fault {
                inj.fire(site::SERVE_LOAD).map_err(|_| {
                    CliError::Io(name.clone(), std::io::Error::other("injected read error"))
                })?;
            }
            crate::commands::load(&path.to_string_lossy())
        }));
        match attempt {
            Ok(Ok(doc)) => {
                // A bad segment never takes the document down: warn and
                // fall back to the in-memory tree-walk index.
                let seg = seg_path.and_then(|sp| {
                    crate::commands::load_segment(&sp, &doc)
                        .map_err(|why| {
                            eprintln!(
                                "warning: {name}: index segment unusable ({why}); \
                                 serving with tree walks"
                            );
                        })
                        .ok()
                });
                match seg {
                    Some(seg) => coll.add_with_segment(&name, doc, seg),
                    None => coll.add(&name, doc),
                };
            }
            Ok(Err(e)) => quarantined.push((name, e.to_string())),
            Err(payload) => quarantined.push((
                name,
                format!("loader panicked: {}", panic_message(payload.as_ref())),
            )),
        }
    }
    // Partition by stable name hash. Within a shard the ids stay in
    // collection order, so a shard's evaluation visits its documents
    // in the same order a single-shard server would.
    let mut shard_docs: Vec<Vec<DocId>> = vec![Vec::new(); shards.max(1)];
    for id in coll.ids() {
        shard_docs[route(coll.name(id), shards)].push(id);
    }
    Ok(Generation {
        coll,
        shard_docs,
        quarantined,
        number,
        parent_chain,
        docs_carried,
        docs_rewritten,
        doc_sums,
        rollbacks,
        tag: GenerationTag::fresh(),
    })
}

/// Build the next generation off the serving path and swap it in.
/// Runs on the calling connection-handler thread — never on a worker —
/// so the pools keep answering queries from the old snapshot throughout.
/// On any failure the serving generation is untouched and
/// `reloads_failed` is bumped; the error is also logged to stderr.
fn try_reload(s: &Arc<Shared>) -> Result<Arc<Generation>, String> {
    let _serialize = s.reload_lock.lock().unwrap();
    let current = s.snapshot();
    let fail = |why: String| -> Result<Arc<Generation>, String> {
        s.reloads_failed.fetch_add(1, Ordering::SeqCst);
        eprintln!(
            "warning: reload failed, still serving generation {}: {why}",
            current.number
        );
        Err(why)
    };
    let next = match load_corpus(&s.dir, s.fault.as_ref(), s.groups.len()) {
        Ok(g) => g,
        Err(e) => return fail(e.to_string()),
    };
    if next.coll.is_empty() {
        return fail(format!(
            "no loadable documents in {} ({} quarantined)",
            s.dir,
            next.quarantined.len()
        ));
    }
    if next.number < current.number {
        return fail(format!(
            "newest committed generation is {} but generation {} is already serving",
            next.number, current.number
        ));
    }
    if next.number == current.number && !next.rollbacks.is_empty() {
        // A newer generation exists on disk but failed verification:
        // re-loading what we already serve is not the reload that was
        // asked for.
        return fail(next.rollbacks.join("; "));
    }
    for r in &next.rollbacks {
        eprintln!("warning: {r}");
    }
    // Carry cache entries for byte-identical documents across the
    // generation bump, per replica arena. Manifest checksums vouch for
    // byte identity: equal sums on both sides mean the same file bytes,
    // hence the same parse tree and `NodeId`s, hence entry-for-entry
    // identical cache contents — so postings/fixpoint/result entries
    // for untouched documents are rekeyed to the new tag instead of
    // dropped. Changed, removed, quarantined, or unverifiable
    // (unversioned) documents get no mapping and their entries are
    // evicted. Name-hash routing keeps a surviving document on the
    // same shard, so its entries are always in the arenas that will be
    // probed for them. Requests already in flight keep their pinned
    // old `Arc` and tag; their entries were just moved, so they take
    // benign misses, never stale hits.
    if s.groups
        .iter()
        .flat_map(|g| &g.replicas)
        .any(|rep| rep.cache.is_some())
    {
        let old_ids: HashMap<&str, u32> = current
            .coll
            .ids()
            .map(|id| (current.coll.name(id), id.0))
            .collect();
        let mut doc_map = HashMap::new();
        for id in next.coll.ids() {
            let name = next.coll.name(id);
            if let (Some(old), Some(sum)) = (old_ids.get(name), next.doc_sums.get(name)) {
                if current.doc_sums.get(name) == Some(sum) {
                    doc_map.insert(*old, id.0);
                }
            }
        }
        for rep in s.groups.iter().flat_map(|g| &g.replicas) {
            if let Some(cache) = &rep.cache {
                let co = cache.carry_over(current.tag, next.tag, &doc_map);
                s.carry_kept.fetch_add(co.kept, Ordering::SeqCst);
                s.carry_rekeyed.fetch_add(co.rekeyed, Ordering::SeqCst);
                s.carry_evicted.fetch_add(co.evicted, Ordering::SeqCst);
            }
        }
    }
    let next = Arc::new(next);
    *s.gen.lock().unwrap() = Arc::clone(&next);
    s.reloads_ok.fetch_add(1, Ordering::SeqCst);
    Ok(next)
}

/// How often an idle connection's blocked read wakes up to check the
/// drain flag. Bounds how long an idle connection can stall a drain,
/// while leaving a wide window for a request already on the wire to be
/// answered with a structured rejection rather than a hangup.
const DRAIN_POLL: Duration = Duration::from_millis(500);

/// Decrements the shared connection count (and wakes the drain loop)
/// when a handler exits, on every exit path.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let mut g = self.0.inner.lock().unwrap();
        g.conns -= 1;
        drop(g);
        self.0.drain_cv.notify_all();
    }
}

/// One connection: read request lines, write exactly one response line
/// per request, until EOF, a write error, or the drain. During a drain
/// the handler answers at most one final request (typically a
/// `shutting-down` rejection) and then closes, so a chatty client
/// cannot hold the drain open forever.
fn handle_conn(s: Arc<Shared>, stream: TcpStream) {
    let _guard = ConnGuard(Arc::clone(&s));
    stream.set_read_timeout(Some(DRAIN_POLL)).ok();
    let mut reader = match stream.try_clone() {
        Ok(c) => BufReader::new(c),
        Err(_) => return,
    };
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        // Assemble one line, riding out poll timeouts (which preserve
        // any partial bytes already appended to `line`).
        let n = loop {
            match reader.read_line(&mut line) {
                Ok(n) => break n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if s.shutdown.load(Ordering::SeqCst) && line.is_empty() {
                        return;
                    }
                }
                Err(_) => return,
            }
        };
        if n == 0 {
            return; // EOF: client closed.
        }
        if line.trim().is_empty() {
            continue;
        }
        let line = line.trim_end_matches(['\r', '\n']);
        let out = match serde_json::from_str::<Request>(line) {
            Err(e) => {
                {
                    let mut st = s.stats.lock().unwrap();
                    st.invalid += 1;
                }
                s.bump(status::ERROR);
                Response::error(0, format!("bad request: {e}")).to_line()
            }
            Ok(req) => match req.kind {
                RequestKind::Health => {
                    s.bump(status::OK);
                    health_line(&s, req.id)
                }
                RequestKind::Stats => {
                    s.bump(status::OK);
                    stats_line(&s, req.id)
                }
                RequestKind::Reload => {
                    // Handled here on the connection thread, not a
                    // worker: a slow rebuild must never occupy a pool
                    // slot that queries are waiting on.
                    match try_reload(&s) {
                        Ok(gen) => {
                            s.bump(status::OK);
                            let mut r = Response::bare(req.id, status::OK);
                            r.note = Some(format!(
                                "serving generation {} ({} doc(s), {} quarantined)",
                                gen.number,
                                gen.coll.len(),
                                gen.quarantined.len()
                            ));
                            r.to_line()
                        }
                        Err(why) => {
                            s.bump(status::ERROR);
                            Response::error(req.id, format!("reload failed: {why}")).to_line()
                        }
                    }
                }
                RequestKind::Shutdown => begin_shutdown(&s, req.id),
                RequestKind::Query => match admit_scatter(&s, req) {
                    Err(rejection) => {
                        s.bump(&rejection.status);
                        rejection.to_line()
                    }
                    Ok(gather) => {
                        let admitted = gather.enqueued;
                        let resp = gather_response(&s, gather);
                        {
                            let mut st = s.stats.lock().unwrap();
                            st.bump(&resp.status);
                            st.latency.record(admitted.elapsed());
                            if let Some(es) = &resp.stats {
                                st.eval += *es;
                            }
                        }
                        resp.to_line()
                    }
                },
            },
        };
        let wrote = writer
            .write_all(out.as_bytes())
            .and_then(|_| writer.write_all(b"\n"))
            .and_then(|_| writer.flush());
        if wrote.is_err() {
            return;
        }
        // One reply per connection once the drain has begun.
        if s.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// One dispatched sub-job (primary, hedge, or failover) from the
/// gather's point of view. The permit is the breaker's witness: it is
/// resolved exactly once — success, failure, or abandoned when a
/// sibling's reply already settled the group.
struct AttemptState {
    replica: usize,
    /// Cancelled when a sibling attempt wins the group race (or the
    /// gather gives the group up), so the loser stops burning CPU.
    cancel: CancelToken,
    permit: Permit,
    /// Whether this attempt's breaker verdict has been delivered.
    /// Replies from resolved attempts (late losers) are discarded.
    resolved: bool,
}

/// Why a group contributed nothing to the merge.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Down {
    /// No reply within deadline + grace, or an in-band deadline miss.
    TimedOut,
    /// Every admittable replica's queue was full at dispatch time.
    Shed,
    /// The last usable replica's worker panicked.
    Panicked,
    /// Every replica's circuit breaker refused the sub-job.
    Open,
}

/// Per-group gather state: the attempts in flight, the winning result
/// (if any), and the armed hedge timer.
struct GroupState {
    attempts: Vec<AttemptState>,
    eval: Option<Box<BudgetedCollectionResult>>,
    down: Option<Down>,
    /// When to hedge the sub-job to a backup replica; `None` once fired
    /// (one-shot), settled, or when the group has a single replica.
    hedge_at: Option<Instant>,
}

impl GroupState {
    /// A group is settled when it has a result, or is down *and* every
    /// attempt's breaker verdict has been delivered.
    fn settled(&self) -> bool {
        self.eval.is_some() || (self.down.is_some() && self.attempts.iter().all(|a| a.resolved))
    }
}

/// Everything the connection thread needs to assemble one response
/// from the scattered sub-jobs.
struct Gather {
    rx: mpsc::Receiver<GroupReply>,
    /// Kept so hedge/failover dispatches can hand workers a reply
    /// sender after admission.
    tx: mpsc::Sender<GroupReply>,
    groups: Vec<GroupState>,
    enqueued: Instant,
    req: Arc<Request>,
    gen: Arc<Generation>,
    /// Caps extra (hedge + failover) dispatches for this one request so
    /// redundancy cannot amplify load during a brown-out: at most one
    /// extra attempt per group on average, shared across the request.
    hedge_budget: RetryBudget,
}

/// Admission control: reject when draining or when no replica anywhere
/// will take a sub-job; otherwise scatter one sub-job per group to that
/// group's preferred replica — the first one, in index order, whose
/// queue has room and whose breaker admits it — and hand back the
/// gather handle. Index order (not load order) keeps all traffic on
/// replica 0 while it is healthy, which is what makes an R-replica
/// server byte- and cache-identical to an R=1 server until a fault or
/// hedge actually fires. Holding all replica locks for the scatter
/// makes admission atomic against the drain: either every sub-job
/// lands before workers can see `shutdown`, or none do. Rejections are
/// boxed: they're the cold path, and `Response` is wide.
fn admit_scatter(s: &Arc<Shared>, req: Request) -> Result<Gather, Box<Response>> {
    let id = req.id;
    // (group, replica) index order, same as every other multi-lock
    // path: no cycles.
    let mut guards: Vec<Vec<_>> = s
        .groups
        .iter()
        .map(|g| g.replicas.iter().map(|r| r.inner.lock().unwrap()).collect())
        .collect();
    // Checked under the queue locks: workers only exit when `shutdown`
    // is already visible, so nothing can be enqueued past the drain.
    if s.shutdown.load(Ordering::SeqCst) {
        return Err(Box::new(Response::bare(id, status::SHUTTING_DOWN)));
    }
    // Pin one snapshot for every group of this request: a reload that
    // lands mid-scatter must not split the request across generations.
    let gen = s.snapshot();
    let enqueued = Instant::now();
    let req = Arc::new(req);
    let (tx, rx) = mpsc::channel();
    let mut states: Vec<GroupState> = Vec::with_capacity(s.groups.len());
    let mut dispatched: Vec<(usize, usize)> = Vec::new();
    for (gi, group) in s.groups.iter().enumerate() {
        let mut saw_full = false;
        let mut admitted = None;
        for (ri, rep) in group.replicas.iter().enumerate() {
            let g = &mut guards[gi][ri];
            if g.queue.len() >= s.queue_depth {
                saw_full = true;
                continue;
            }
            let Some(permit) = rep.breaker.try_acquire() else {
                continue;
            };
            let cancel = CancelToken::new();
            g.in_flight += 1;
            g.queue.push_back(ShardJob {
                req: Arc::clone(&req),
                gen: Arc::clone(&gen),
                enqueued,
                reply: tx.clone(),
                cancel: cancel.clone(),
                group: gi,
                replica: ri,
                attempt: 0,
            });
            dispatched.push((gi, ri));
            // Arm the hedge timer only when a backup exists to hedge to.
            let hedge_at =
                (group.replicas.len() > 1).then(|| enqueued + hedge_delay(rep, s.hedge_floor));
            admitted = Some(GroupState {
                attempts: vec![AttemptState {
                    replica: ri,
                    cancel,
                    permit,
                    resolved: false,
                }],
                eval: None,
                down: None,
                hedge_at,
            });
            break;
        }
        states.push(admitted.unwrap_or(GroupState {
            attempts: Vec::new(),
            eval: None,
            down: Some(if saw_full { Down::Shed } else { Down::Open }),
            hedge_at: None,
        }));
    }
    if dispatched.is_empty() {
        // Nothing admitted anywhere: a whole-request rejection, in the
        // old single-pool shape. No permits are outstanding here — a
        // group either enqueued (and is in `dispatched`) or holds none.
        let all_open = states.iter().all(|st| st.down == Some(Down::Open));
        drop(guards);
        let mut r = Response::bare(id, status::SHED);
        r.note = Some(if all_open {
            "every replica's circuit breaker is open".into()
        } else {
            format!("queue full (depth {})", s.queue_depth)
        });
        return Err(Box::new(r));
    }
    drop(guards);
    for (gi, ri) in dispatched {
        s.groups[gi].replicas[ri].work_cv.notify_one();
    }
    // One extra attempt per group on average; hedges and failovers draw
    // from the same pool, so a brown-out cannot double total load.
    let hedge_budget = RetryBudget::new(s.groups.len() as u64, None);
    Ok(Gather {
        rx,
        tx,
        groups: states,
        enqueued,
        req,
        gen,
        hedge_budget,
    })
}

/// Dispatch `gi`'s sub-job to the next untried replica in the group
/// (hedge or failover). Returns whether a backup was actually enqueued;
/// reasons not to: no untried replica, breakers refuse them all, their
/// queues are full, the drain began, or the request's hedge budget is
/// spent. Never blocks beyond the replica queue mutexes.
#[allow(clippy::too_many_arguments)]
fn dispatch_backup(
    s: &Shared,
    gi: usize,
    gs: &mut GroupState,
    req: &Arc<Request>,
    gen: &Arc<Generation>,
    enqueued: Instant,
    tx: &mpsc::Sender<GroupReply>,
    budget: &RetryBudget,
) -> bool {
    let group = &s.groups[gi];
    for (ri, rep) in group.replicas.iter().enumerate() {
        if gs.attempts.iter().any(|a| a.replica == ri) {
            continue; // already tried (or in flight) on this replica
        }
        let Some(permit) = rep.breaker.try_acquire() else {
            continue;
        };
        let mut g = rep.inner.lock().unwrap();
        if s.shutdown.load(Ordering::SeqCst) || g.queue.len() >= s.queue_depth {
            drop(g);
            rep.breaker.abandon(permit);
            continue;
        }
        // Charge the budget only once a viable backup exists, so a
        // fully-broken group doesn't burn allowance other groups could
        // still use.
        if !budget.try_spend() {
            drop(g);
            rep.breaker.abandon(permit);
            return false;
        }
        let cancel = CancelToken::new();
        let attempt = gs.attempts.len();
        g.in_flight += 1;
        g.queue.push_back(ShardJob {
            req: Arc::clone(req),
            gen: Arc::clone(gen),
            enqueued,
            reply: tx.clone(),
            cancel: cancel.clone(),
            group: gi,
            replica: ri,
            attempt,
        });
        drop(g);
        rep.hedges.fetch_add(1, Ordering::Relaxed);
        rep.work_cv.notify_one();
        gs.attempts.push(AttemptState {
            replica: ri,
            cancel,
            permit,
            resolved: false,
        });
        return true;
    }
    false
}

/// How long past the request deadline the gather keeps listening for
/// in-band replies before declaring a shard wedged and dropping it
/// from the merge. Shards answer their own deadline misses in-band
/// (the watchdog cancels, the worker replies `timeout`), and those
/// replies land within this grace; only a group that cannot reply at
/// all — every usable replica stalled, injected hard delay — burns the
/// full grace and is dropped, flipping the response to
/// `"complete":false`.
const GATHER_GRACE: Duration = Duration::from_millis(250);

/// Collect the scattered sub-replies — firing hedge timers and
/// failovers along the way — and merge them into one response.
///
/// Merge invariant (see DESIGN.md): concatenate the surviving groups'
/// per-document answers, sort by document id, sum the counters, and
/// rank with `top_k_collection` exactly once — so with every group
/// present the response is byte-identical to a single-shard,
/// single-replica server's (regardless of which replica answered),
/// and with groups missing it is byte-identical to a single-shard
/// server over the surviving documents (plus the accounting fields).
fn gather_response(s: &Shared, mut g: Gather) -> Response {
    let id = g.req.id;
    let total = s.groups.len();
    let deadline = match (s.timeout_ms, g.req.timeout_ms) {
        (None, None) => None,
        (a, b) => Some(Duration::from_millis(
            a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX)),
        )),
    };
    let overall = deadline.map(|d| g.enqueued + d + GATHER_GRACE);
    // Hedge spans land here; today no serve-side profile sink exists,
    // so this is the disabled tracer — the span names stay wired at
    // the dispatch point for when one grows (see `serve_stage`).
    let tracer = Tracer::disabled();
    let mut first_timeout: Option<String> = None;
    let mut first_panic: Option<String> = None;
    loop {
        // Fire due hedge timers before (re-)blocking: the preferred
        // replica is officially slow, so race a backup against it.
        let now = Instant::now();
        for gi in 0..g.groups.len() {
            if g.groups[gi].hedge_at.is_some_and(|t| t <= now) {
                let gs = &mut g.groups[gi];
                gs.hedge_at = None; // one-shot
                if dispatch_backup(
                    s,
                    gi,
                    gs,
                    &g.req,
                    &g.gen,
                    g.enqueued,
                    &g.tx,
                    &g.hedge_budget,
                ) {
                    tracer.attach(Span::leaf(
                        serve_stage::HEDGE_FIRE,
                        g.enqueued.elapsed(),
                        EvalStats::new(),
                    ));
                }
            }
        }
        if g.groups.iter().all(GroupState::settled) {
            break;
        }
        // Sleep until the next thing that could need action: a reply,
        // the earliest armed hedge timer, or the overall cutoff.
        let next_hedge = g.groups.iter().filter_map(|st| st.hedge_at).min();
        let wake = match (overall, next_hedge) {
            (None, None) => None,
            (a, b) => Some(
                a.unwrap_or_else(|| b.unwrap())
                    .min(b.unwrap_or_else(|| a.unwrap())),
            ),
        };
        let reply = match wake {
            // No deadline and no pending hedge: a group may
            // legitimately take as long as it likes, so the gather
            // blocks (matching the old single-pool behavior under
            // soak).
            None => g.rx.recv().ok(),
            Some(t) => {
                let now = Instant::now();
                if t <= now {
                    if overall.is_some_and(|o| o <= now) && next_hedge.is_none_or(|h| h > now) {
                        break; // grace burned; unsettled groups are wedged
                    }
                    continue; // a hedge timer is due: fire it first
                }
                match g.rx.recv_timeout(t - now) {
                    Ok(r) => Some(r),
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => None,
                }
            }
        };
        let Some(GroupReply {
            group: gi,
            attempt,
            reply,
        }) = reply
        else {
            break;
        };
        let gs = &mut g.groups[gi];
        let Some(att) = gs.attempts.get_mut(attempt) else {
            continue;
        };
        if att.resolved {
            continue; // a late loser's reply; its verdict was abandoned
        }
        att.resolved = true;
        let permit = att.permit;
        let replica = att.replica;
        let rep = &s.groups[gi].replicas[replica];
        match reply {
            ShardReply::Eval(r) => {
                rep.breaker.record_success(permit);
                observe_latency(rep, g.enqueued.elapsed());
                if attempt > 0 {
                    rep.hedge_wins.fetch_add(1, Ordering::Relaxed);
                }
                // First good reply wins the group: cancel the losers
                // and abandon their breaker permits — a cancelled
                // attempt is not evidence about the replica's health.
                for a in gs.attempts.iter_mut().filter(|a| !a.resolved) {
                    a.resolved = true;
                    a.cancel.cancel();
                    s.groups[gi].replicas[a.replica].breaker.abandon(a.permit);
                }
                gs.eval = Some(r);
                gs.down = None;
                gs.hedge_at = None;
            }
            ShardReply::Timeout(m) => {
                // The deadline is request-wide: a backup would inherit
                // the same spent clock, so there is nothing to fail
                // over to. Count it against the replica and move on.
                rep.breaker.record_failure(permit);
                first_timeout.get_or_insert(m);
                if gs.eval.is_none() {
                    gs.down = Some(Down::TimedOut);
                    gs.hedge_at = None;
                }
            }
            ShardReply::Panicked(m) => {
                rep.breaker.record_failure(permit);
                first_panic.get_or_insert(m);
                if gs.eval.is_none() {
                    // A panic is instant, unlike a timeout: there is
                    // still time on the clock, so fail over right away
                    // instead of waiting for the hedge timer.
                    gs.hedge_at = None;
                    let failed_over = dispatch_backup(
                        s,
                        gi,
                        gs,
                        &g.req,
                        &g.gen,
                        g.enqueued,
                        &g.tx,
                        &g.hedge_budget,
                    );
                    if !failed_over && gs.attempts.iter().all(|a| a.resolved) {
                        gs.down = Some(Down::Panicked);
                    }
                }
            }
            ShardReply::Error(m) => {
                // A hard evaluation error on any group fails the whole
                // request, exactly as it failed the whole single-pool
                // request before: a malformed query or an injected
                // cancel is not a partial answer, and retrying it on a
                // backup would amplify a deterministic failure. The
                // permit is abandoned, not failed: most errors here are
                // request-shaped (bad strategy, no keywords) and say
                // nothing about the replica's health.
                rep.breaker.abandon(permit);
                for (ogi, gstate) in g.groups.iter_mut().enumerate() {
                    for a in gstate.attempts.iter_mut().filter(|a| !a.resolved) {
                        a.resolved = true;
                        a.cancel.cancel();
                        s.groups[ogi].replicas[a.replica].breaker.abandon(a.permit);
                    }
                }
                return Response::error(id, m);
            }
        }
    }
    // Groups that never settled within deadline + grace: wedged. Cancel
    // whatever is still running and count it as a failure against each
    // replica that sat on the sub-job — that is exactly the signal the
    // breaker exists to integrate.
    for (gi, gs) in g.groups.iter_mut().enumerate() {
        if gs.eval.is_some() {
            continue;
        }
        for a in gs.attempts.iter_mut().filter(|a| !a.resolved) {
            a.resolved = true;
            a.cancel.cancel();
            s.groups[gi].replicas[a.replica]
                .breaker
                .record_failure(a.permit);
        }
        if gs.down.is_none() {
            gs.down = Some(Down::TimedOut);
        }
    }

    let mut evals: Vec<BudgetedCollectionResult> = Vec::new();
    let (mut timed_out, mut shed, mut panicked, mut open) = (0u64, 0u64, 0u64, 0u64);
    for gs in &mut g.groups {
        match (gs.eval.take(), gs.down) {
            (Some(r), _) => evals.push(*r),
            (None, Some(Down::Shed)) => shed += 1,
            (None, Some(Down::Panicked)) => panicked += 1,
            (None, Some(Down::Open)) => open += 1,
            (None, Some(Down::TimedOut)) | (None, None) => timed_out += 1,
        }
    }
    if evals.is_empty() {
        // Nothing survived to merge: report the dominant failure in
        // the old single-pool shapes so clients and retry heuristics
        // keep working unchanged.
        if let Some(m) = first_panic {
            return Response::error(id, m);
        }
        let mut r = Response::bare(id, status::TIMEOUT);
        r.error =
            Some(first_timeout.unwrap_or_else(|| "deadline exceeded during evaluation".into()));
        return r;
    }

    let req = &*g.req;
    let coll = &g.gen.coll;
    let ok = evals.len();
    let complete = ok == total;
    let mut answers = Vec::new();
    let mut docs_pruned = 0usize;
    let mut docs_skipped = 0usize;
    let mut docs_failed: Vec<(DocId, String)> = Vec::new();
    let mut degraded_docs = Vec::new();
    let mut stats = EvalStats::new();
    for r in evals {
        answers.extend(r.answers);
        docs_pruned += r.docs_pruned;
        docs_skipped += r.docs_skipped;
        docs_failed.extend(r.docs_failed);
        degraded_docs.extend(r.degraded_docs);
        stats += r.stats;
    }
    // Document order is the canonical order a single-shard evaluation
    // would have produced; sorting restores it after the concat so the
    // ranker sees the same sequence (its tie-break is score, then doc
    // id, then fragment order — never arrival order).
    answers.sort_by_key(|a| a.doc);
    docs_failed.sort_by_key(|(d, _)| *d);
    degraded_docs.sort_by_key(|(d, _)| *d);
    let merged = BudgetedCollectionResult {
        answers,
        docs_pruned,
        docs_skipped,
        docs_failed,
        degraded_docs,
        stats,
    };
    let q = Query::new(req.keywords.iter(), req.filter());
    let ranked = CollectionResult {
        answers: merged.answers.clone(),
        docs_pruned: merged.docs_pruned,
        docs_failed: merged.docs_failed.clone(),
        stats: merged.stats,
    };
    let k = req.top_k.unwrap_or(10);
    let top = top_k_collection(coll, &ranked, &q, &RankConfig::default(), k);
    // A missing shard degrades the answer even when every surviving
    // document evaluated cleanly: the client is told both ways
    // (status and the `complete` flag).
    let degraded = merged.is_degraded() || !complete;
    let mut resp = Response::bare(
        id,
        if degraded {
            status::DEGRADED
        } else {
            status::OK
        },
    );
    resp.answers = top
        .iter()
        .map(|(doc_id, f, score)| Answer {
            doc: coll.name(*doc_id).to_string(),
            score: *score,
            nodes: f.nodes().iter().map(|n| n.0).collect(),
            snippet: snippet(coll.doc(*doc_id), f, &q.terms, &SnippetConfig::default()),
        })
        .collect();
    if degraded {
        // Assembled from counters and rung names only — never
        // elapsed times — to keep response bytes deterministic.
        let mut notes = Vec::new();
        if merged.docs_skipped > 0 {
            notes.push(format!("{} doc(s) skipped", merged.docs_skipped));
        }
        for (doc_id, d) in &merged.degraded_docs {
            notes.push(format!(
                "{} degraded to {}",
                coll.name(*doc_id),
                d.rung.map(|rg| rg.name()).unwrap_or("none")
            ));
        }
        for (doc_id, msg) in &merged.docs_failed {
            notes.push(format!(
                "{} failed: {}",
                coll.name(*doc_id),
                msg.lines().next().unwrap_or("")
            ));
        }
        if !complete {
            notes.push(format!(
                "{} of {} shard(s) missing from merge",
                total - ok,
                total
            ));
        }
        resp.note = Some(notes.join("; "));
    }
    resp.stats = Some(merged.stats);
    if !complete {
        resp.complete = false;
        resp.shards = Some(ShardOutcome {
            ok: ok as u64,
            timed_out,
            shed,
            panicked,
            open,
        });
    }
    resp
}

/// Close admission, wake every replica's idle workers, and poke the
/// accept loop so the main thread proceeds to the drain phase.
fn begin_shutdown(s: &Arc<Shared>, id: u64) -> String {
    s.shutdown.store(true, Ordering::SeqCst);
    for rep in s.groups.iter().flat_map(|g| &g.replicas) {
        rep.work_cv.notify_all();
    }
    let _ = TcpStream::connect(s.addr);
    s.bump(status::OK);
    let mut r = Response::bare(id, status::OK);
    r.note = Some("draining".into());
    r.to_line()
}

fn health_line(s: &Shared, id: u64) -> String {
    let gen = s.snapshot();
    let (workers, queued, in_flight) = pool_totals(s);
    let quarantined: Vec<&str> = gen.quarantined.iter().map(|(n, _)| n.as_str()).collect();
    format!(
        "{{\"id\":{},\"status\":\"ok\",\"workers\":{},\"queued\":{},\"in_flight\":{},\"docs\":{},\"generation\":{},\"quarantined\":{}}}",
        id,
        workers,
        queued,
        in_flight,
        gen.coll.len(),
        gen.number,
        serde_json::to_string(&quarantined).expect("names serialize"),
    )
}

/// The aggregate cache block for `stats`: replica arenas folded into
/// one [`CacheStats`] (tier counters summed, per-lock-shard counter
/// lists concatenated in (group, replica) order), or `null` when
/// caching is off. With one shard and one replica this is bit-for-bit
/// the old single-arena block.
fn cache_json(s: &Shared) -> String {
    let mut agg: Option<CacheStats> = None;
    for rep in s.groups.iter().flat_map(|g| &g.replicas) {
        let Some(c) = &rep.cache else { continue };
        let st = c.stats();
        match &mut agg {
            None => agg = Some(st),
            Some(a) => {
                a.postings.hits += st.postings.hits;
                a.postings.misses += st.postings.misses;
                a.fixpoint.hits += st.fixpoint.hits;
                a.fixpoint.misses += st.fixpoint.misses;
                a.result.hits += st.result.hits;
                a.result.misses += st.result.misses;
                a.evictions += st.evictions;
                a.insertions += st.insertions;
                a.bytes += st.bytes;
                a.entries += st.entries;
                a.shards.extend(st.shards);
            }
        }
    }
    match agg {
        None => "null".to_string(),
        Some(a) => a.to_json(),
    }
}

/// One `"plans"` object for `stats`: a pick-distribution snapshot plus
/// plan-cache accounting (`cached` = decisions served from the cache,
/// `planned` = decisions computed fresh, `invalidations` = generation
/// bumps that emptied the cache). Same shape per replica and summed
/// per shard (see the schema comment in `protocol.rs`).
fn plans_json(pk: &PickSnapshot, cached: u64, planned: u64, invalidations: u64) -> String {
    format!(
        "{{\"brute\":{},\"naive\":{},\"reduced\":{},\"push_down\":{},\"forced\":{},\"replans\":{},\"cached\":{},\"planned\":{},\"invalidations\":{}}}",
        pk.brute, pk.naive, pk.reduced, pk.push_down, pk.forced, pk.replans,
        cached, planned, invalidations,
    )
}

fn stats_line(s: &Shared, id: u64) -> String {
    let gen = s.snapshot();
    // Quarantine detail (file + reason) so operators can see *why* a
    // document is missing from the serving set, not just that it is.
    let quarantined: Vec<String> = gen
        .quarantined
        .iter()
        .map(|(file, reason)| {
            format!(
                "{{\"file\":{},\"reason\":{}}}",
                serde_json::to_string(file).expect("name serializes"),
                serde_json::to_string(reason.lines().next().unwrap_or(""))
                    .expect("reason serializes"),
            )
        })
        .collect();
    let quarantined = format!("[{}]", quarantined.join(","));
    let st = s.stats.lock().unwrap();
    // `"cache":null` under `--no-cache`, the aggregate tier/shard
    // counter object otherwise (see `cache_json`).
    let cache = cache_json(s);
    // Delta lineage: the serving manifest's parent chain (nearest
    // ancestor first), how many documents it carries vs rewrote, and
    // the lifetime cache carry-over counters.
    let chain = gen
        .parent_chain
        .iter()
        .map(|g| g.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let delta = format!(
        "{{\"parent_chain\":[{}],\"chain_depth\":{},\"docs_carried\":{},\"docs_rewritten\":{},\"carry_over\":{{\"kept\":{},\"rekeyed\":{},\"evicted\":{}}}}}",
        chain,
        gen.parent_chain.len(),
        gen.docs_carried,
        gen.docs_rewritten,
        s.carry_kept.load(Ordering::SeqCst),
        s.carry_rekeyed.load(Ordering::SeqCst),
        s.carry_evicted.load(Ordering::SeqCst),
    );
    // Persistent-index observability: how many documents serve off
    // `.xidx` segments, their total encoded bytes, and how many posting
    // lists have been lazily materialized so far.
    let index = format!(
        "{{\"segments\":{},\"bytes\":{},\"terms_loaded\":{}}}",
        gen.coll.segment_count(),
        gen.coll.index_bytes(),
        gen.coll.index_terms_loaded(),
    );
    // Per-shard fault-domain detail, in shard order (see the schema
    // comment in `protocol.rs`): pool state, respawn and evaluation
    // lifetime counters, and singleflight accounting, summed across the
    // shard's replicas, plus a per-replica breakdown carrying each
    // replica's breaker state, latency EWMA, hedge counters, and its
    // own cache arena.
    let shards: Vec<String> = s
        .groups
        .iter()
        .enumerate()
        .map(|(i, group)| {
            let (mut workers, mut queued, mut in_flight) = (0usize, 0usize, 0usize);
            let (mut respawns, mut evaluations) = (0u64, 0u64);
            let (mut led, mut coalesced, mut aborted) = (0u64, 0u64, 0u64);
            let mut picks_sum = PickSnapshot::default();
            let (mut plans_cached, mut plans_planned, mut plans_inv) = (0u64, 0u64, 0u64);
            let mut replicas: Vec<String> = Vec::with_capacity(group.replicas.len());
            for (j, rep) in group.replicas.iter().enumerate() {
                let (w, q, f) = {
                    let g = rep.inner.lock().unwrap();
                    (g.workers_alive, g.queue.len(), g.in_flight)
                };
                workers += w;
                queued += q;
                in_flight += f;
                let rsp = rep.respawns.load(Ordering::SeqCst);
                let evl = rep.evaluations.load(Ordering::SeqCst);
                respawns += rsp;
                evaluations += evl;
                let fl = rep.flights.stats();
                led += fl.led;
                coalesced += fl.coalesced;
                aborted += fl.aborted;
                let pk = rep.picks.snapshot();
                let (pc_hits, pc_misses, pc_inv) = rep.plans.counters();
                picks_sum = PickCounters::merge(picks_sum, pk);
                plans_cached += pc_hits;
                plans_planned += pc_misses;
                plans_inv += pc_inv;
                let rep_cache = match &rep.cache {
                    None => "null".to_string(),
                    Some(c) => c.stats().to_json(),
                };
                replicas.push(format!(
                    "{{\"replica\":{},\"state\":\"{}\",\"ewma_us\":{},\"hedges\":{},\"wins\":{},\"opens\":{},\"workers\":{},\"queued\":{},\"in_flight\":{},\"respawns\":{},\"evaluations\":{},\"flights\":{{\"led\":{},\"coalesced\":{},\"aborted\":{}}},\"plans\":{},\"cache\":{}}}",
                    j,
                    rep.breaker.state().name(),
                    rep.ewma_us.load(Ordering::Relaxed),
                    rep.hedges.load(Ordering::Relaxed),
                    rep.hedge_wins.load(Ordering::Relaxed),
                    rep.breaker.opens(),
                    w,
                    q,
                    f,
                    rsp,
                    evl,
                    fl.led,
                    fl.coalesced,
                    fl.aborted,
                    plans_json(&pk, pc_hits, pc_misses, pc_inv),
                    rep_cache,
                ));
            }
            let sh_cache = {
                let mut agg: Option<CacheStats> = None;
                for rep in &group.replicas {
                    let Some(c) = &rep.cache else { continue };
                    let st = c.stats();
                    match &mut agg {
                        None => agg = Some(st),
                        Some(a) => {
                            a.postings.hits += st.postings.hits;
                            a.postings.misses += st.postings.misses;
                            a.fixpoint.hits += st.fixpoint.hits;
                            a.fixpoint.misses += st.fixpoint.misses;
                            a.result.hits += st.result.hits;
                            a.result.misses += st.result.misses;
                            a.evictions += st.evictions;
                            a.insertions += st.insertions;
                            a.bytes += st.bytes;
                            a.entries += st.entries;
                            a.shards.extend(st.shards);
                        }
                    }
                }
                agg.map_or("null".to_string(), |a| a.to_json())
            };
            format!(
                "{{\"shard\":{},\"docs\":{},\"workers\":{},\"queued\":{},\"in_flight\":{},\"respawns\":{},\"evaluations\":{},\"flights\":{{\"led\":{},\"coalesced\":{},\"aborted\":{}}},\"plans\":{},\"cache\":{},\"replicas\":[{}]}}",
                i,
                gen.shard_docs.get(i).map_or(0, Vec::len),
                workers,
                queued,
                in_flight,
                respawns,
                evaluations,
                led,
                coalesced,
                aborted,
                plans_json(&picks_sum, plans_cached, plans_planned, plans_inv),
                sh_cache,
                replicas.join(","),
            )
        })
        .collect();
    let shards = format!("[{}]", shards.join(","));
    format!(
        "{{\"id\":{},\"status\":\"ok\",\"generation\":{},\"reloads\":{{\"ok\":{},\"failed\":{}}},\"quarantined\":{},\"serve\":{{\"total\":{},\"ok\":{},\"degraded\":{},\"shed\":{},\"timeout\":{},\"error\":{},\"shutting_down\":{},\"invalid\":{},\"worker_panics\":{},\"accept_errors\":{}}},\"eval\":{},\"latency\":{},\"cache\":{},\"delta\":{},\"index\":{},\"shards\":{}}}",
        id,
        gen.number,
        s.reloads_ok.load(Ordering::SeqCst),
        s.reloads_failed.load(Ordering::SeqCst),
        quarantined,
        st.total,
        st.ok,
        st.degraded,
        st.shed,
        st.timeout,
        st.error,
        st.shutting_down,
        st.invalid,
        st.worker_panics,
        st.accept_errors,
        serde_json::to_string(&st.eval).expect("stats serialize"),
        st.latency.to_json(),
        cache,
        delta,
        index,
        shards,
    )
}

/// Worker thread body for one replica: pop jobs until the replica's
/// queue is empty *and* the server is draining. A panicking request is
/// isolated to its replica: the payload becomes a structured
/// sub-reply, a replacement worker joins the same replica's pool, and
/// only then does the poisoned thread exit — siblings (in this group
/// or any other) never notice.
fn worker_loop(s: Arc<Shared>, group_idx: usize, replica_idx: usize) {
    loop {
        let job = {
            let rep = &s.groups[group_idx].replicas[replica_idx];
            let mut g = rep.inner.lock().unwrap();
            loop {
                if let Some(j) = g.queue.pop_front() {
                    break j;
                }
                if s.shutdown.load(Ordering::SeqCst) {
                    g.workers_alive -= 1;
                    drop(g);
                    poke_drain(&s);
                    return;
                }
                g = rep.work_cv.wait(g).unwrap();
            }
        };
        match catch_unwind(AssertUnwindSafe(|| handle_replica_query(&s, &job))) {
            Ok(reply) => finish_replica(&s, &job, reply),
            Err(payload) => {
                {
                    let mut st = s.stats.lock().unwrap();
                    st.worker_panics += 1;
                }
                let msg = panic_message(payload.as_ref());
                let reply = ShardReply::Panicked(format!(
                    "worker panicked (isolated): {}",
                    msg.lines().next().unwrap_or("")
                ));
                let rep = &s.groups[group_idx].replicas[replica_idx];
                rep.respawns.fetch_add(1, Ordering::SeqCst);
                // Respawn first so the replica's pool never shrinks.
                {
                    let mut g = rep.inner.lock().unwrap();
                    g.workers_alive += 1;
                }
                let replacement = Arc::clone(&s);
                std::thread::spawn(move || worker_loop(replacement, group_idx, replica_idx));
                finish_replica(&s, &job, reply);
                {
                    let mut g = s.groups[group_idx].replicas[replica_idx]
                        .inner
                        .lock()
                        .unwrap();
                    g.workers_alive -= 1;
                }
                poke_drain(&s);
                return;
            }
        }
    }
}

/// Send the sub-reply (tagged with its group and attempt so the gather
/// can tell a primary's answer from a hedge's) and release the
/// replica's in-flight slot.
fn finish_replica(s: &Shared, job: &ShardJob, reply: ShardReply) {
    // A gather that already gave up on this group (or a client that
    // hung up) just discards the reply; not an error.
    let _ = job.reply.send(GroupReply {
        group: job.group,
        attempt: job.attempt,
        reply,
    });
    let mut g = s.groups[job.group].replicas[job.replica]
        .inner
        .lock()
        .unwrap();
    g.in_flight -= 1;
    drop(g);
    poke_drain(s);
}

/// Ceiling on how long a singleflight follower waits for its leader
/// when the request itself has no deadline. Purely a hang backstop:
/// on any wait outcome the follower re-runs through the cache, so
/// waking early costs one redundant evaluation, never a wrong answer.
const FOLLOWER_WAIT_CAP: Duration = Duration::from_secs(60);

/// Evaluate one group's document slice on one replica. Runs inside the
/// worker's `catch_unwind`, so a panic anywhere below is isolated per
/// sub-job (and per replica).
fn handle_replica_query(s: &Shared, job: &ShardJob) -> ShardReply {
    let req = &*job.req;
    // The corpus snapshot was pinned at admission (not here): every
    // group of one request answers from the same generation even if a
    // reload swapped the shared pointer mid-scatter.
    let gen = &job.gen;
    let coll = &gen.coll;
    let shard = &s.groups[job.group].replicas[job.replica];
    // A losing hedge sibling may have been cancelled while this job
    // sat queued; don't burn a worker evaluating a dead sub-job. The
    // gather has already resolved this attempt, so the reply shape is
    // immaterial — Timeout matches what evaluation would return.
    if job.cancel.is_cancelled() {
        return ShardReply::Timeout("cancelled before evaluation started".into());
    }
    // Fault-injection point for the worker itself: `panic` unwinds into
    // the worker's catch_unwind, `delay:<ms>` stalls, `cancel`
    // short-circuits here. Fired before the deadline is measured so an
    // injected stall longer than the deadline surfaces as a `timeout`
    // response, exactly like a real slow worker.
    if let Some(inj) = &s.fault {
        if inj.fire(site::SERVE_WORKER).is_err() {
            return ShardReply::Error("cancelled by injected fault at serve:worker".into());
        }
    }
    // Effective deadline: the tighter of the request's and the server's,
    // measured from admission (queue time counts against the request).
    let deadline = match (s.timeout_ms, req.timeout_ms) {
        (None, None) => None,
        (a, b) => Some(Duration::from_millis(
            a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX)),
        )),
    };
    let waited = job.enqueued.elapsed();
    let remaining = match deadline {
        Some(d) if waited >= d => {
            return ShardReply::Timeout(format!(
                "deadline of {} ms passed before evaluation started",
                d.as_millis()
            ));
        }
        Some(d) => Some(d - waited),
        None => None,
    };
    if req.keywords.is_empty() {
        return ShardReply::Error("query needs keywords".into());
    }
    let choice = match req.strategy() {
        Ok(v) => v,
        Err(e) => return ShardReply::Error(e),
    };
    let degrade = match req.degrade() {
        Ok(v) => v,
        Err(e) => return ShardReply::Error(e),
    };
    let q = Query::new(req.keywords.iter(), req.filter());
    let mut budget: Budget = req.budget();
    budget.wall_clock = remaining;
    // The job's own token, not a fresh one: the gather cancels it when
    // a hedge sibling's reply already won this group, and the watchdog
    // below cancels it at the deadline.
    let token = job.cancel.clone();
    let mut policy = ExecPolicy::with_budget(budget)
        .with_degrade(degrade)
        .with_cancel(token.clone());
    if let Some(f) = &s.fault {
        policy = policy.with_fault(Arc::clone(f));
    }
    // Watchdog: cancels the token when the deadline passes, covering
    // stretches where the governor's own wall-clock checks are sparse.
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = remaining.map(|rem| {
        let t = token.clone();
        let d = Arc::clone(&done);
        std::thread::spawn(move || {
            let start = Instant::now();
            while start.elapsed() < rem && !d.load(Ordering::SeqCst) {
                std::thread::park_timeout(rem.saturating_sub(start.elapsed()));
            }
            if !d.load(Ordering::SeqCst) {
                t.cancel();
            }
        })
    });
    let docs = &gen.shard_docs[job.group];
    let cache_ref = shard.cache.as_deref().map(|c| (c, gen.tag));
    // Serve requests always carry a limited budget (deadline or caps),
    // so the planner's speculative guard never arms here: an `auto`
    // pick runs under the request's own policy, and the observable
    // planner state is the pick distribution and the plan cache.
    let run = || {
        evaluate_collection_planned_cached_traced_routed(
            coll,
            &q,
            choice,
            &policy,
            &Tracer::disabled(),
            cache_ref,
            docs,
            Some((&shard.plans, gen.tag)),
            Some(&shard.picks),
        )
    };
    let result = if shard.cache.is_none() {
        // No cache, nothing to coalesce onto: a follower would have no
        // stored result to replay, so every request evaluates.
        run()
    } else {
        // Coalesce concurrent identical cold queries. The key covers
        // everything that shapes the *evaluation* (snapshot tag, terms,
        // filter shape, strategy, degrade ladder, budgets, deadline
        // presence) — `id` and `top_k` are deliberately absent: they
        // only shape the response envelope, not the cached result.
        // Collisions are benign either way: a follower always re-runs
        // through the cache and evaluates itself on a miss.
        let key = flight_key(&format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            gen.tag,
            req.keywords,
            req.size,
            req.height,
            req.width,
            req.strategy,
            req.degrade,
            req.max_joins,
            req.max_fragments,
        ));
        match shard.flights.join(key) {
            Flight::Leader(lease) => {
                let r = run();
                if r.is_ok() {
                    // Wake followers to probe the cache. A degraded or
                    // uncacheable result simply won't be there — they
                    // miss and evaluate themselves, which is correct,
                    // just not coalesced.
                    lease.complete();
                }
                // On `Err` (or a panic unwinding past us) the lease's
                // Drop aborts the flight and followers re-evaluate
                // instead of hanging.
                r
            }
            Flight::Follower(f) => {
                // Whatever the outcome — leader done, leader aborted,
                // or our own deadline — re-run *through the cache*:
                // a completed leader's result is replayed from there
                // (with its governor checkpoints and fault points, per
                // the PR-5 replay invariant), never cloned across
                // requests; anything else is evaluated fresh.
                let _ = f.wait(remaining.unwrap_or(FOLLOWER_WAIT_CAP));
                run()
            }
        }
    };
    done.store(true, Ordering::SeqCst);
    if let Some(w) = &watchdog {
        w.thread().unpark(); // let it exit promptly; no need to join
    }
    match result {
        Ok(r) => {
            // A pure cache replay has `cache_misses == 0` (stored
            // entries are stripped of their own lookup accounting);
            // anything else did real evaluation work on this shard.
            if shard.cache.is_none() || r.stats.cache_misses > 0 {
                shard.evaluations.fetch_add(1, Ordering::SeqCst);
            }
            ShardReply::Eval(Box::new(r))
        }
        Err(QueryError::Cancelled) if token.is_cancelled() => {
            ShardReply::Timeout("deadline exceeded during evaluation".into())
        }
        Err(QueryError::BudgetExceeded(Breach::Deadline)) => {
            ShardReply::Timeout("deadline exceeded during evaluation".into())
        }
        Err(e) => ShardReply::Error(e.to_string()),
    }
}

/// `xfrag request <addr> <json>` — one-shot client: send one request
/// line, print the one response line. Used by CI smoke scripts and the
/// soak test so no external netcat-style tool is needed.
pub fn request(addr: &str, json: &str) -> Result<String, CliError> {
    let stream = TcpStream::connect(addr).map_err(|e| CliError::Io(addr.to_string(), e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    writer
        .write_all(json.as_bytes())
        .and_then(|_| writer.write_all(b"\n"))
        .and_then(|_| writer.flush())
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| CliError::Io(addr.to_string(), e))?;
    if line.is_empty() {
        return Err(CliError::Query(
            "server closed the connection without replying".into(),
        ));
    }
    if !line.ends_with('\n') {
        line.push('\n');
    }
    Ok(line)
}

/// Reply statuses worth retrying: the server said "not now", not "no".
fn is_retryable_reply(line: &str) -> bool {
    [status::SHED, status::TIMEOUT, status::SHUTTING_DOWN]
        .iter()
        .any(|s| line.contains(&format!("\"status\":\"{s}\"")))
}

/// A reply whose merge is missing shards. Substring probing is sound
/// here: the raw bytes `"complete":false` cannot appear inside a JSON
/// string value, where every interior quote is escaped as `\"`.
fn is_partial_reply(line: &str) -> bool {
    line.contains("\"complete\":false")
}

/// Transport failures worth retrying: the server may be booting,
/// restarting, or mid-drain.
fn is_retryable_error(e: &CliError) -> bool {
    use std::io::ErrorKind;
    match e {
        CliError::Io(_, io) => matches!(
            io.kind(),
            ErrorKind::ConnectionRefused
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::TimedOut
                | ErrorKind::WouldBlock
        ),
        CliError::Query(m) => m.contains("without replying"),
        _ => false,
    }
}

/// `xfrag request` with a bounded retry budget. With `retries == 0`
/// this is exactly [`request`] except that a partial reply
/// (`"complete":false`) is surfaced as [`CliError::PartialResult`]:
/// the line is still printed, but the exit code is 4 so scripts can
/// tell a full merge from a degraded one. With retries, retryable
/// outcomes (shed, timeout, or shutting-down replies; refused/reset/
/// timed-out connections) are retried with exponential backoff plus
/// deterministic jitter, up to `retries` extra attempts; exhaustion is
/// [`CliError::RetriesExhausted`] (exit code 3). Partial replies are
/// *not* retried unless `retry_partial` is set — a partial answer is
/// an answer, and hammering a degraded server by default would feed
/// the very overload that degraded it. Non-retryable failures surface
/// immediately (exit 1).
///
/// `retry_budget_ms` is a wall-clock deadline shared across *all*
/// attempts, measured from the first connect: once it passes, no
/// further attempt starts (mid-flight attempts are not torn down), and
/// backoff sleeps are clamped to the time remaining so the budget is
/// never overshot by a sleep. Exhausting the budget is reported as
/// [`CliError::RetriesExhausted`] — the server never misbehaved, the
/// client ran out of patience — which keeps exit 3 ("try again later")
/// distinct from exit 1 (permanent failure); see the README exit-code
/// table. Without it, `--retries N` alone can amplify a brown-out:
/// N clients × N retries all camped on a struggling server.
pub fn request_with_retry(
    addr: &str,
    json: &str,
    retries: u32,
    backoff_ms: u64,
    retry_partial: bool,
    retry_budget_ms: Option<u64>,
) -> Result<String, CliError> {
    let budget = RetryBudget::new(retries as u64, retry_budget_ms.map(Duration::from_millis));
    if retries == 0 {
        let line = request(addr, json)?;
        if is_partial_reply(&line) {
            return Err(CliError::PartialResult(line));
        }
        return Ok(line);
    }
    // SplitMix64 jitter, seeded per process so concurrent clients that
    // all got shed don't re-stampede the server in lockstep.
    let mut z = 0x9e3779b97f4a7c15u64 ^ (std::process::id() as u64);
    let mut jitter = move || {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    };
    let mut last = String::new();
    // The freshest partial reply seen, kept so exhaustion can still
    // hand the caller a usable (if incomplete) answer via exit 4.
    let mut partial: Option<String> = None;
    let mut budget_spent = false;
    for attempt in 0..=retries {
        if attempt > 0 {
            // Attempt 0 is free; each retry draws on the shared budget
            // (attempt count and wall clock both), so the loop can stop
            // early without ever starting a doomed attempt.
            if !budget.try_spend() {
                budget_spent = true;
                break;
            }
            let base = backoff_ms.saturating_mul(1u64 << (attempt - 1).min(16));
            let mut sleep = base.saturating_add(jitter() % base.max(1));
            if let Some(rem) = budget.remaining() {
                // Clamp the sleep so the budget is spent retrying, not
                // sleeping past its own deadline.
                sleep = sleep.min(u64::try_from(rem.as_millis()).unwrap_or(u64::MAX));
            }
            eprintln!(
                "retry {attempt}/{retries} in {sleep} ms: {}",
                last.lines().next().unwrap_or("")
            );
            std::thread::sleep(Duration::from_millis(sleep));
            if budget.expired() {
                budget_spent = true;
                break;
            }
        }
        match request(addr, json) {
            Ok(line) if is_retryable_reply(&line) => {
                last = line.trim_end().to_string();
                partial = None;
            }
            Ok(line) if is_partial_reply(&line) => {
                if !retry_partial {
                    return Err(CliError::PartialResult(line));
                }
                last = line.trim_end().to_string();
                partial = Some(line);
            }
            Ok(line) => return Ok(line),
            Err(e) if is_retryable_error(&e) => {
                last = e.to_string();
                partial = None;
            }
            Err(e) => return Err(e),
        }
    }
    if let Some(line) = partial {
        return Err(CliError::PartialResult(line));
    }
    if budget_spent {
        return Err(CliError::RetriesExhausted(format!(
            "retry budget of {} ms exhausted after {addr} kept failing; last outcome: {last}",
            retry_budget_ms.unwrap_or(0),
        )));
    }
    Err(CliError::RetriesExhausted(format!(
        "{} attempt(s) to {addr} all failed; last outcome: {last}",
        retries as u64 + 1,
    )))
}
