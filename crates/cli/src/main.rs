//! `xfrag` — keyword search over XML documents with the fragment algebra
//! of Pradhan (VLDB 2006).
//!
//! ```text
//! xfrag search <file.xml> <keyword>... [--size N] [--height N] [--width N]
//!              [--strategy brute|naive|reduced|pushdown] [--strict]
//!              [--maximal] [--ids] [--stats]
//! xfrag explain <file.xml> <keyword>... [--size N] [--height N] [--width N]
//! xfrag info <file.xml>
//! xfrag demo
//! ```

mod args;
mod commands;
mod protocol;
mod serve;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(output) => {
                // `print!` would panic on a broken pipe (`xfrag ... |
                // head`); the reader hanging up early is its choice, not
                // an error of ours, so write directly and exit quietly.
                use std::io::Write;
                let mut out = std::io::stdout().lock();
                let _ = out.write_all(output.as_bytes());
                let _ = out.flush();
                ExitCode::SUCCESS
            }
            Err(e @ commands::CliError::RetriesExhausted(_)) => {
                eprintln!("error: {e}");
                // Distinct from permanent failures (1): the caller may
                // reasonably try again later.
                ExitCode::from(3)
            }
            Err(commands::CliError::PartialResult(line)) => {
                // A partial reply is a success over the surviving
                // shards: print it like a normal reply (EPIPE-tolerant,
                // see above), but exit 4 so scripts can tell "complete
                // answer" from "some shards were dropped".
                use std::io::Write;
                let mut out = std::io::stdout().lock();
                let _ = out.write_all(line.as_bytes());
                let _ = out.flush();
                ExitCode::from(4)
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
