//! Hand-rolled argument parsing (the workspace deliberately keeps its
//! dependency set minimal; a CLI parser crate is not on the list).

use crate::serve::ServeArgs;
use xfrag_core::{Budget, DegradeMode, FilterExpr, StrategyChoice};

/// Usage text shown on parse errors.
pub const USAGE: &str = "\
usage:
  xfrag search <file.xml|file.xfrg> <keyword>... [options]
  xfrag msearch <dir> <keyword>... [options]     (searches every .xml/.xfrg in dir)
  xfrag explain <file.xml|file.xfrg> <keyword>... [options]
  xfrag compile <in.xml> <out.xfrg>              (pre-parse to binary form)
  xfrag index [--delta] <src-dir> <corpus-dir>   (commit a new corpus generation)
  xfrag compact <corpus-dir>                     (materialize a delta chain)
  xfrag info <file.xml|file.xfrg>
  xfrag serve <corpus-dir> [serve options]       (TCP query server, see README)
  xfrag request <host:port> <json>               (send one serve request line)
  xfrag demo

options:
  --size N        keep fragments with at most N nodes (anti-monotonic)
  --height N      keep fragments of height at most N (anti-monotonic)
  --width N       keep fragments of document-order span at most N
  --min-size N    keep fragments with at least N nodes (not anti-monotonic)
  --strategy S    auto | brute | naive | reduced | pushdown  (default: auto —
                  a cost-based planner picks per document from index
                  statistics; see README \"Strategy picking\")
  --strict        require every keyword at a fragment leaf (Definition 8)
  --maximal       hide overlapping sub-fragments (show maximal answers only)
  --ids           print node-id lists instead of XML
  --stats         print evaluation statistics

observability (see README \"Observability\"):
  --profile       print a per-stage execution profile (span tree with
                  wall-clock and counter deltas) after the results
  --profile-json  same, as a JSON span tree for tooling
  --analyze       (explain only) execute each plan stage and print the
                  cost model's estimate next to actual work done
  --cache-mb N    (search/msearch/explain) evaluate through an N-MB
                  query cache; with --profile or --analyze the warm
                  pass shows per-stage cache hits (default: off)

resource limits (see README \"Resource limits & degradation\"):
  --timeout-ms N     wall-clock budget for the whole evaluation
  --max-fragments N  cap on intermediate fragments materialized
  --max-joins N      cap on binary join kernels
  --degrade M        off | ladder   what to do when a budget trips
                     (default: ladder — answer with a sound subset from
                     the cheapest plan the remaining budget affords)

corpus updates (see README \"Corpus updates & recovery\"):
  index compiles every .xml in <src-dir> into <corpus-dir> as a new
  checksummed, manifest-committed generation; writes are atomic (temp +
  fsync + rename + dir fsync), so a crash at any point leaves the
  previous generation loadable and byte-identical.
  --delta            diff <src-dir> against the latest verified
                     generation and rewrite only added/changed
                     documents; unchanged files are referenced from the
                     parent generation (requires a committed generation)
  compact rewrites the latest verified generation — typically the top
  of a delta chain — as a new full generation, bounding chain depth.
  --inject SPEC      (compile/index/compact) write-path fault plan;
                     sites store:write | store:fsync | store:rename,
                     actions include abort (kill -9 model) and torn:<n>

serve options (see README \"Serving queries over TCP\"):
  --port N           TCP port; 0 picks an ephemeral port (default: 7878)
  --shards N         partition the corpus into N fault-isolated shards
                     (hash of document name), each with its own worker
                     pool, admission queue, and cache arena; queries fan
                     out scatter-gather and shards that miss the request
                     deadline are dropped from the merge with a
                     `\"complete\":false` marker (default: 1)
  --replicas R       serve each shard from R independent replicas (own
                     pool, queue, cache arena); slow sub-jobs are hedged
                     to a backup replica and the first good reply wins,
                     byte-identically (default: 1)
  --hedge-ms N       hedge-delay floor and cold-start hedge delay; the
                     effective delay tracks each replica's latency EWMA
                     (default: 25)
  --breaker-failures N  consecutive sub-job failures (timeout/panic)
                     that open a replica's circuit breaker (default: 3)
  --breaker-cooldown-ms N  how long an open breaker refuses sub-jobs
                     before a single half-open probe (default: 1000)
  --workers N        worker pool size *per replica* (default: 4)
  --queue-depth N    per-replica admission queue bound; excess requests
                     are shed with a `shed` response (default: 64)
  --timeout-ms N     server-wide per-request deadline, measured from
                     admission (default: none)
  --watch-ms N       poll the corpus dir every N ms and hot-reload when
                     a newer committed generation appears (default: off)
  --inject SPEC      deterministic fault plan `site@hit=action,...`
                     (actions: panic | cancel | read-error | delay:<ms>)
  --fault-seed N     derive a fault plan over the runtime sites from a
                     seed (composes with --inject)
  --cache-mb N       query-cache capacity in MB, shared across the
                     worker pool (default: 64)
  --no-cache         disable the query cache entirely

request options:
  --retries N        retry retryable outcomes (shed, timeout,
                     shutting-down replies; refused/reset connections)
                     up to N times (default: 0)
  --backoff-ms N     base of the exponential backoff between retries,
                     with jitter (default: 100)
  --retry-partial    also retry partial replies (`\"complete\":false`);
                     by default a partial reply is printed as-is and
                     exits 4 without consuming retries
  --retry-budget-ms N  wall-clock deadline shared across *all* attempts;
                     once it passes, no further attempt starts and
                     backoff sleeps are clamped to the remainder
                     (default: none)
  exit codes: 0 reply received, 1 permanent failure, 3 retries or retry
              budget exhausted, 4 partial reply (some shards dropped)
";

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a query and print answers.
    Search(SearchArgs),
    /// Run a query over every document in a directory.
    MultiSearch(SearchArgs),
    /// Pre-parse an XML file into the XFRG binary format.
    Compile {
        /// Source XML path.
        input: String,
        /// Destination .xfrg path.
        output: String,
        /// Write-path fault plan (`--inject`), for crash testing.
        inject: Option<String>,
    },
    /// Compile every `.xml` in a source directory into a corpus
    /// directory as a new manifest-committed generation.
    Index {
        /// Directory of source `.xml` files.
        src: String,
        /// Corpus directory receiving the generation.
        out: String,
        /// Commit a delta generation: rewrite only documents that
        /// changed against the latest verified generation (`--delta`).
        delta: bool,
        /// Write-path fault plan (`--inject`), for crash testing.
        inject: Option<String>,
    },
    /// Materialize the latest verified generation — typically the top of
    /// a delta chain — as a new full generation.
    Compact {
        /// Corpus directory to compact.
        dir: String,
        /// Write-path fault plan (`--inject`), for crash testing.
        inject: Option<String>,
    },
    /// Print the optimizer trace (Figure 5-style evaluation trees).
    Explain(SearchArgs),
    /// Print document statistics.
    Info {
        /// Path to the XML file.
        file: String,
    },
    /// Run the newline-delimited-JSON TCP query server.
    Serve(ServeArgs),
    /// Send one request line to a running server and print the reply.
    Request {
        /// `host:port` of the server.
        addr: String,
        /// The raw JSON request line.
        json: String,
        /// How many times to retry retryable outcomes (`--retries`).
        retries: u32,
        /// Base backoff between retries in milliseconds (`--backoff-ms`).
        backoff_ms: u64,
        /// Treat partial (`"complete":false`) replies as retryable
        /// (`--retry-partial`); off by default because a partial reply
        /// is a *success* over the surviving shards.
        retry_partial: bool,
        /// Wall-clock deadline across all attempts in milliseconds
        /// (`--retry-budget-ms`); `None` means attempts-only bounding.
        retry_budget_ms: Option<u64>,
    },
    /// Run the paper's §4 example on the built-in Figure 1 document.
    Demo,
}

/// How `--profile` output should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileMode {
    /// No profiling; evaluation runs with the no-op tracer.
    #[default]
    Off,
    /// Pretty-text span tree.
    Text,
    /// JSON span tree with the fixed emitter schema.
    Json,
}

impl ProfileMode {
    /// Whether profiling is on in any form.
    pub fn is_on(self) -> bool {
        self != ProfileMode::Off
    }
}

/// Arguments shared by `search` and `explain`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchArgs {
    /// Path to the XML file.
    pub file: String,
    /// Raw query keywords.
    pub keywords: Vec<String>,
    /// The assembled selection predicate.
    pub filter: FilterExpr,
    /// Evaluation strategy: planner-chosen (`auto`, the default) or
    /// forced.
    pub strategy: StrategyChoice,
    /// Definition 8 strict leaf semantics.
    pub strict: bool,
    /// Present maximal answers only.
    pub maximal: bool,
    /// Print node ids instead of XML.
    pub ids: bool,
    /// Print stats after results.
    pub stats: bool,
    /// Resource limits (all unlimited by default).
    pub budget: Budget,
    /// What to do when a budget trips.
    pub degrade: DegradeMode,
    /// Per-stage execution profiling (`--profile` / `--profile-json`).
    pub profile: ProfileMode,
    /// `explain` only: execute each plan stage and print estimated vs.
    /// actual cost (`--analyze`).
    pub analyze: bool,
    /// Evaluate through a query cache of this many MB (`--cache-mb`).
    /// `None` (the default) keeps the cache out of the picture, so
    /// plain invocations stay byte-for-byte reproducible.
    pub cache_mb: Option<u64>,
}

fn parse_u32(flag: &str, v: Option<&String>) -> Result<u32, String> {
    let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<u32>()
        .map_err(|_| format!("{flag} needs a non-negative integer, got {v:?}"))
}

/// Parse the positional paths, optional `--inject`, and (for `index`)
/// optional `--delta` of a write-path command (`compile` / `index` /
/// `compact`).
fn parse_write_cmd(
    sub: &str,
    rest: &[String],
    n_paths: usize,
) -> Result<(Vec<String>, Option<String>, bool), String> {
    let mut pos = Vec::new();
    let mut inject = None;
    let mut delta = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--inject" => {
                inject = Some(rest.get(i + 1).ok_or("--inject needs a spec")?.clone());
                i += 1;
            }
            "--delta" if sub == "index" => delta = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            _ => pos.push(rest[i].clone()),
        }
        i += 1;
    }
    if pos.len() != n_paths {
        return Err(format!(
            "{sub} needs exactly {n_paths} path(s), got {}",
            pos.len()
        ));
    }
    Ok((pos, inject, delta))
}

/// Parse argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let sub = it.next().ok_or("missing subcommand")?;
    match sub.as_str() {
        "demo" => Ok(Command::Demo),
        "info" => {
            let file = it.next().ok_or("info needs a file")?.clone();
            if let Some(extra) = it.next() {
                return Err(format!("unexpected argument {extra:?}"));
            }
            Ok(Command::Info { file })
        }
        "search" | "explain" | "msearch" => {
            let rest: Vec<String> = it.cloned().collect();
            let args = parse_search(&rest)?;
            match sub.as_str() {
                "search" => Ok(Command::Search(args)),
                "msearch" => Ok(Command::MultiSearch(args)),
                _ => Ok(Command::Explain(args)),
            }
        }
        "compile" => {
            let rest: Vec<String> = it.cloned().collect();
            let (mut pos, inject, _) = parse_write_cmd("compile", &rest, 2)?;
            let output = pos.pop().unwrap();
            let input = pos.pop().unwrap();
            Ok(Command::Compile {
                input,
                output,
                inject,
            })
        }
        "index" => {
            let rest: Vec<String> = it.cloned().collect();
            let (mut pos, inject, delta) = parse_write_cmd("index", &rest, 2)?;
            let out = pos.pop().unwrap();
            let src = pos.pop().unwrap();
            Ok(Command::Index {
                src,
                out,
                delta,
                inject,
            })
        }
        "compact" => {
            let rest: Vec<String> = it.cloned().collect();
            let (mut pos, inject, _) = parse_write_cmd("compact", &rest, 1)?;
            let dir = pos.pop().unwrap();
            Ok(Command::Compact { dir, inject })
        }
        "serve" => {
            let rest: Vec<String> = it.cloned().collect();
            Ok(Command::Serve(parse_serve(&rest)?))
        }
        "request" => {
            let rest: Vec<String> = it.cloned().collect();
            let mut retries = 0u32;
            let mut backoff_ms = 100u64;
            let mut retry_partial = false;
            let mut retry_budget_ms = None;
            let mut parts = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--retries" => {
                        retries = parse_u32("--retries", rest.get(i + 1))?;
                        i += 1;
                    }
                    "--backoff-ms" => {
                        backoff_ms = parse_u32("--backoff-ms", rest.get(i + 1))? as u64;
                        i += 1;
                    }
                    "--retry-partial" => retry_partial = true,
                    "--retry-budget-ms" => {
                        retry_budget_ms =
                            Some(parse_u32("--retry-budget-ms", rest.get(i + 1))? as u64);
                        i += 1;
                    }
                    _ => parts.push(rest[i].clone()),
                }
                i += 1;
            }
            let mut parts = parts.into_iter();
            let addr = parts.next().ok_or("request needs a host:port")?;
            // Join so unquoted JSON split by the shell still works.
            let json: Vec<String> = parts.collect();
            if json.is_empty() {
                return Err("request needs a JSON request line".into());
            }
            Ok(Command::Request {
                addr,
                json: json.join(" "),
                retries,
                backoff_ms,
                retry_partial,
                retry_budget_ms,
            })
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn parse_search(rest: &[String]) -> Result<SearchArgs, String> {
    let mut file = None;
    let mut keywords = Vec::new();
    let mut filters = Vec::new();
    let mut strategy = StrategyChoice::Auto;
    let mut strict = false;
    let mut maximal = false;
    let mut ids = false;
    let mut stats = false;
    let mut budget = Budget::unlimited();
    let mut degrade = DegradeMode::Ladder;
    let mut profile = ProfileMode::Off;
    let mut analyze = false;
    let mut cache_mb = None;

    let mut i = 0;
    while i < rest.len() {
        let arg = &rest[i];
        match arg.as_str() {
            "--size" => {
                filters.push(FilterExpr::MaxSize(parse_u32("--size", rest.get(i + 1))?));
                i += 1;
            }
            "--height" => {
                filters.push(FilterExpr::MaxHeight(parse_u32(
                    "--height",
                    rest.get(i + 1),
                )?));
                i += 1;
            }
            "--width" => {
                filters.push(FilterExpr::MaxWidth(parse_u32("--width", rest.get(i + 1))?));
                i += 1;
            }
            "--min-size" => {
                filters.push(FilterExpr::MinSize(parse_u32(
                    "--min-size",
                    rest.get(i + 1),
                )?));
                i += 1;
            }
            "--strategy" => {
                let v = rest.get(i + 1).ok_or("--strategy needs a value")?;
                strategy = v.parse::<StrategyChoice>()?;
                i += 1;
            }
            "--timeout-ms" => {
                let ms = parse_u32("--timeout-ms", rest.get(i + 1))?;
                budget.wall_clock = Some(std::time::Duration::from_millis(ms as u64));
                i += 1;
            }
            "--max-fragments" => {
                budget.max_fragments = Some(parse_u32("--max-fragments", rest.get(i + 1))? as u64);
                i += 1;
            }
            "--max-joins" => {
                budget.max_joins = Some(parse_u32("--max-joins", rest.get(i + 1))? as u64);
                i += 1;
            }
            "--degrade" => {
                let v = rest.get(i + 1).ok_or("--degrade needs a value")?;
                degrade = v.parse::<DegradeMode>()?;
                i += 1;
            }
            "--strict" => strict = true,
            "--maximal" => maximal = true,
            "--ids" => ids = true,
            "--stats" => stats = true,
            "--profile" => profile = ProfileMode::Text,
            "--profile-json" => profile = ProfileMode::Json,
            "--analyze" => analyze = true,
            "--cache-mb" => {
                cache_mb = Some(parse_u32("--cache-mb", rest.get(i + 1))? as u64);
                i += 1;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            _ => {
                if file.is_none() {
                    file = Some(arg.clone());
                } else {
                    keywords.push(arg.clone());
                }
            }
        }
        i += 1;
    }

    let file = file.ok_or("missing input file")?;
    if keywords.is_empty() {
        return Err("missing query keywords".into());
    }
    Ok(SearchArgs {
        file,
        keywords,
        filter: FilterExpr::and(filters),
        strategy,
        strict,
        maximal,
        ids,
        stats,
        budget,
        degrade,
        profile,
        analyze,
        cache_mb,
    })
}

fn parse_serve(rest: &[String]) -> Result<ServeArgs, String> {
    let mut dir: Option<String> = None;
    let mut args = ServeArgs::new("");
    let mut i = 0;
    while i < rest.len() {
        let arg = &rest[i];
        match arg.as_str() {
            "--port" => {
                let v = parse_u32("--port", rest.get(i + 1))?;
                args.port =
                    u16::try_from(v).map_err(|_| format!("--port must be <= 65535, got {v}"))?;
                i += 1;
            }
            "--shards" => {
                let v = parse_u32("--shards", rest.get(i + 1))? as usize;
                if v == 0 {
                    return Err("--shards must be at least 1".into());
                }
                args.shards = v;
                i += 1;
            }
            "--replicas" => {
                let v = parse_u32("--replicas", rest.get(i + 1))? as usize;
                if v == 0 {
                    return Err("--replicas must be at least 1".into());
                }
                args.replicas = v;
                i += 1;
            }
            "--hedge-ms" => {
                args.hedge_ms = parse_u32("--hedge-ms", rest.get(i + 1))? as u64;
                i += 1;
            }
            "--breaker-failures" => {
                let v = parse_u32("--breaker-failures", rest.get(i + 1))?;
                if v == 0 {
                    return Err("--breaker-failures must be at least 1".into());
                }
                args.breaker_failures = v;
                i += 1;
            }
            "--breaker-cooldown-ms" => {
                args.breaker_cooldown_ms =
                    parse_u32("--breaker-cooldown-ms", rest.get(i + 1))? as u64;
                i += 1;
            }
            "--workers" => {
                args.workers = parse_u32("--workers", rest.get(i + 1))? as usize;
                i += 1;
            }
            "--queue-depth" => {
                args.queue_depth = parse_u32("--queue-depth", rest.get(i + 1))? as usize;
                i += 1;
            }
            "--timeout-ms" => {
                args.timeout_ms = Some(parse_u32("--timeout-ms", rest.get(i + 1))? as u64);
                i += 1;
            }
            "--watch-ms" => {
                args.watch_ms = Some(parse_u32("--watch-ms", rest.get(i + 1))? as u64);
                i += 1;
            }
            "--inject" => {
                let v = rest.get(i + 1).ok_or("--inject needs a spec")?;
                args.inject = Some(v.clone());
                i += 1;
            }
            "--fault-seed" => {
                let v = rest.get(i + 1).ok_or("--fault-seed needs a value")?;
                args.fault_seed = Some(v.parse::<u64>().map_err(|_| {
                    format!("--fault-seed needs a non-negative integer, got {v:?}")
                })?);
                i += 1;
            }
            "--cache-mb" => {
                args.cache_mb = parse_u32("--cache-mb", rest.get(i + 1))? as u64;
                i += 1;
            }
            "--no-cache" => args.no_cache = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag:?}")),
            _ => {
                if dir.is_some() {
                    return Err(format!("unexpected argument {arg:?}"));
                }
                dir = Some(arg.clone());
            }
        }
        i += 1;
    }
    args.dir = dir.ok_or("serve needs a corpus directory")?;
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_search_with_filters() {
        let cmd = parse(&argv("search doc.xml xquery optimization --size 3 --stats")).unwrap();
        match cmd {
            Command::Search(a) => {
                assert_eq!(a.file, "doc.xml");
                assert_eq!(a.keywords, vec!["xquery", "optimization"]);
                assert_eq!(a.filter, FilterExpr::MaxSize(3));
                assert_eq!(a.strategy, StrategyChoice::Auto);
                assert!(a.stats);
                assert!(!a.strict);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_multiple_filters_conjoin() {
        let cmd = parse(&argv("search d.xml k --size 3 --height 2")).unwrap();
        match cmd {
            Command::Search(a) => {
                assert_eq!(
                    a.filter,
                    FilterExpr::And(vec![FilterExpr::MaxSize(3), FilterExpr::MaxHeight(2)])
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_strategy_aliases() {
        use xfrag_core::Strategy;
        for (alias, expect) in [
            ("auto", StrategyChoice::Auto),
            ("brute", StrategyChoice::Forced(Strategy::BruteForce)),
            ("naive", StrategyChoice::Forced(Strategy::FixedPointNaive)),
            (
                "reduced",
                StrategyChoice::Forced(Strategy::FixedPointReduced),
            ),
            ("pushdown", StrategyChoice::Forced(Strategy::PushDown)),
        ] {
            let cmd = parse(&argv(&format!("search d.xml k --strategy {alias}"))).unwrap();
            match cmd {
                Command::Search(a) => assert_eq!(a.strategy, expect),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn parse_info_and_demo() {
        assert_eq!(
            parse(&argv("info d.xml")).unwrap(),
            Command::Info {
                file: "d.xml".into()
            }
        );
        assert_eq!(parse(&argv("demo")).unwrap(), Command::Demo);
    }

    #[test]
    fn errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&argv("search d.xml")).is_err()); // no keywords
        assert!(parse(&argv("search k --size x d.xml")).is_err());
        assert!(parse(&argv("search d.xml k --strategy warp")).is_err());
        assert!(parse(&argv("search d.xml k --frobnicate")).is_err());
        assert!(parse(&argv("info")).is_err());
        assert!(parse(&argv("info a.xml extra")).is_err());
    }

    #[test]
    fn parse_budget_flags() {
        let cmd = parse(&argv(
            "search d.xml k --timeout-ms 250 --max-fragments 1000 --max-joins 5000 --degrade off",
        ))
        .unwrap();
        match cmd {
            Command::Search(a) => {
                assert_eq!(
                    a.budget.wall_clock,
                    Some(std::time::Duration::from_millis(250))
                );
                assert_eq!(a.budget.max_fragments, Some(1000));
                assert_eq!(a.budget.max_joins, Some(5000));
                assert_eq!(a.degrade, DegradeMode::Off);
            }
            _ => unreachable!(),
        }
        // Defaults: unlimited budget, ladder degradation.
        match parse(&argv("search d.xml k")).unwrap() {
            Command::Search(a) => {
                assert!(!a.budget.is_limited());
                assert_eq!(a.degrade, DegradeMode::Ladder);
            }
            _ => unreachable!(),
        }
        assert!(parse(&argv("search d.xml k --timeout-ms")).is_err());
        assert!(parse(&argv("search d.xml k --degrade maybe")).is_err());
    }

    #[test]
    fn parse_profile_and_analyze_flags() {
        match parse(&argv("search d.xml k --profile")).unwrap() {
            Command::Search(a) => {
                assert_eq!(a.profile, ProfileMode::Text);
                assert!(a.profile.is_on());
                assert!(!a.analyze);
            }
            _ => unreachable!(),
        }
        match parse(&argv("msearch dir k --profile-json")).unwrap() {
            Command::MultiSearch(a) => assert_eq!(a.profile, ProfileMode::Json),
            _ => unreachable!(),
        }
        match parse(&argv("explain d.xml k --analyze")).unwrap() {
            Command::Explain(a) => assert!(a.analyze),
            _ => unreachable!(),
        }
        // Defaults: off.
        match parse(&argv("search d.xml k")).unwrap() {
            Command::Search(a) => {
                assert_eq!(a.profile, ProfileMode::Off);
                assert!(!a.profile.is_on());
                assert!(!a.analyze);
                assert_eq!(a.cache_mb, None);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn parse_search_cache_flag() {
        match parse(&argv("search d.xml k --cache-mb 8")).unwrap() {
            Command::Search(a) => assert_eq!(a.cache_mb, Some(8)),
            _ => unreachable!(),
        }
        assert!(parse(&argv("search d.xml k --cache-mb")).is_err());
        assert!(parse(&argv("search d.xml k --cache-mb lots")).is_err());
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        match parse(&argv("serve corpus")).unwrap() {
            Command::Serve(a) => {
                assert_eq!(a.dir, "corpus");
                assert_eq!(a.port, 7878);
                assert_eq!(a.shards, 1);
                assert_eq!(a.replicas, 1);
                assert_eq!(a.hedge_ms, 25);
                assert_eq!(a.breaker_failures, 3);
                assert_eq!(a.breaker_cooldown_ms, 1000);
                assert_eq!(a.workers, 4);
                assert_eq!(a.queue_depth, 64);
                assert_eq!(a.timeout_ms, None);
                assert_eq!(a.watch_ms, None);
                assert_eq!(a.inject, None);
                assert_eq!(a.fault_seed, None);
                assert_eq!(a.cache_mb, 64);
                assert!(!a.no_cache);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv(
            "serve corpus --port 0 --shards 4 --replicas 2 --hedge-ms 10 \
             --breaker-failures 5 --breaker-cooldown-ms 200 \
             --workers 2 --queue-depth 8 --timeout-ms 250 \
             --watch-ms 500 --inject serve:worker@1=panic --fault-seed 42 \
             --cache-mb 16 --no-cache",
        ))
        .unwrap()
        {
            Command::Serve(a) => {
                assert_eq!(a.port, 0);
                assert_eq!(a.shards, 4);
                assert_eq!(a.replicas, 2);
                assert_eq!(a.hedge_ms, 10);
                assert_eq!(a.breaker_failures, 5);
                assert_eq!(a.breaker_cooldown_ms, 200);
                assert_eq!(a.workers, 2);
                assert_eq!(a.queue_depth, 8);
                assert_eq!(a.timeout_ms, Some(250));
                assert_eq!(a.watch_ms, Some(500));
                assert_eq!(a.inject.as_deref(), Some("serve:worker@1=panic"));
                assert_eq!(a.fault_seed, Some(42));
                assert_eq!(a.cache_mb, 16);
                assert!(a.no_cache);
            }
            _ => unreachable!(),
        }
        assert!(parse(&argv("serve")).is_err());
        assert!(parse(&argv("serve corpus --cache-mb")).is_err());
        assert!(parse(&argv("serve corpus extra")).is_err());
        assert!(parse(&argv("serve corpus --port")).is_err());
        assert!(parse(&argv("serve corpus --port 70000")).is_err());
        assert!(parse(&argv("serve corpus --shards 0")).is_err());
        assert!(parse(&argv("serve corpus --shards")).is_err());
        assert!(parse(&argv("serve corpus --replicas 0")).is_err());
        assert!(parse(&argv("serve corpus --replicas")).is_err());
        assert!(parse(&argv("serve corpus --breaker-failures 0")).is_err());
        assert!(parse(&argv("serve corpus --hedge-ms")).is_err());
        assert!(parse(&argv("serve corpus --frobnicate")).is_err());
    }

    #[test]
    fn parse_request_joins_json_words() {
        match parse(&argv("request 127.0.0.1:7878 {\"kind\":\"health\"}")).unwrap() {
            Command::Request {
                addr,
                json,
                retries,
                backoff_ms,
                retry_partial,
                retry_budget_ms,
            } => {
                assert_eq!(addr, "127.0.0.1:7878");
                assert_eq!(json, "{\"kind\":\"health\"}");
                assert_eq!(retries, 0);
                assert_eq!(backoff_ms, 100);
                assert!(!retry_partial);
                assert_eq!(retry_budget_ms, None);
            }
            _ => unreachable!(),
        }
        // Shell-split JSON is re-joined with single spaces.
        match parse(&argv("request h:1 {\"kind\": \"health\"}")).unwrap() {
            Command::Request { json, .. } => assert_eq!(json, "{\"kind\": \"health\"}"),
            _ => unreachable!(),
        }
        assert!(parse(&argv("request")).is_err());
        assert!(parse(&argv("request h:1")).is_err());
    }

    #[test]
    fn parse_request_retry_flags() {
        // Flags may appear anywhere, including after the JSON words.
        match parse(&argv(
            "request h:1 --retries 3 {\"kind\":\"health\"} --backoff-ms 50 --retry-partial \
             --retry-budget-ms 2000",
        ))
        .unwrap()
        {
            Command::Request {
                json,
                retries,
                backoff_ms,
                retry_partial,
                retry_budget_ms,
                ..
            } => {
                assert_eq!(json, "{\"kind\":\"health\"}");
                assert_eq!(retries, 3);
                assert_eq!(backoff_ms, 50);
                assert!(retry_partial);
                assert_eq!(retry_budget_ms, Some(2000));
            }
            _ => unreachable!(),
        }
        assert!(parse(&argv("request h:1 {} --retries")).is_err());
        assert!(parse(&argv("request h:1 {} --retries x")).is_err());
        assert!(parse(&argv("request h:1 {} --retry-budget-ms")).is_err());
        assert!(parse(&argv("request h:1 {} --retry-budget-ms x")).is_err());
    }

    #[test]
    fn parse_compile_and_index() {
        assert_eq!(
            parse(&argv("compile in.xml out.xfrg")).unwrap(),
            Command::Compile {
                input: "in.xml".into(),
                output: "out.xfrg".into(),
                inject: None,
            }
        );
        assert_eq!(
            parse(&argv(
                "compile in.xml out.xfrg --inject store:write@1=abort"
            ))
            .unwrap(),
            Command::Compile {
                input: "in.xml".into(),
                output: "out.xfrg".into(),
                inject: Some("store:write@1=abort".into()),
            }
        );
        assert_eq!(
            parse(&argv("index src corpus --inject store:rename@1=panic")).unwrap(),
            Command::Index {
                src: "src".into(),
                out: "corpus".into(),
                delta: false,
                inject: Some("store:rename@1=panic".into()),
            }
        );
        assert!(parse(&argv("compile in.xml")).is_err());
        assert!(parse(&argv("compile a b c")).is_err());
        assert!(parse(&argv("index src")).is_err());
        assert!(parse(&argv("index src corpus --inject")).is_err());
        assert!(parse(&argv("index src corpus --frobnicate")).is_err());
    }

    #[test]
    fn parse_delta_and_compact() {
        assert_eq!(
            parse(&argv("index --delta src corpus")).unwrap(),
            Command::Index {
                src: "src".into(),
                out: "corpus".into(),
                delta: true,
                inject: None,
            }
        );
        assert_eq!(
            parse(&argv("compact corpus --inject store:write@0=torn:3")).unwrap(),
            Command::Compact {
                dir: "corpus".into(),
                inject: Some("store:write@0=torn:3".into()),
            }
        );
        // --delta belongs to index only; compact takes exactly one path.
        assert!(parse(&argv("compile --delta in.xml out.xfrg")).is_err());
        assert!(parse(&argv("compact --delta corpus")).is_err());
        assert!(parse(&argv("compact")).is_err());
        assert!(parse(&argv("compact a b")).is_err());
    }

    #[test]
    fn no_filters_means_true() {
        match parse(&argv("search d.xml k")).unwrap() {
            Command::Search(a) => assert!(a.filter.is_true()),
            _ => unreachable!(),
        }
    }
}
