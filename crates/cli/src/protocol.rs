//! Wire protocol for `xfrag serve`: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line; the server answers with
//! exactly one JSON object on one line. Unknown request fields are
//! ignored and every field except `kind` is optional, so old clients
//! keep working as the protocol grows. Responses are emitted with a
//! fixed field order and contain no wall-clock values, so a repeated
//! query against an unchanged corpus yields byte-identical bytes — the
//! property the fault-injection suite leans on.
//!
//! See README § "Serving queries over TCP" for the schema reference.

use serde::{Deserialize, Serialize};
use xfrag_core::{Budget, DegradeMode, EvalStats, FilterExpr, StrategyChoice};

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Evaluate a keyword query over the corpus.
    Query,
    /// Liveness probe: worker/queue/quarantine snapshot.
    Health,
    /// Cumulative serve counters, summed [`EvalStats`], latency histogram.
    Stats,
    /// Load the next corpus generation and swap it in without dropping
    /// in-flight requests; a failed load keeps the serving generation.
    Reload,
    /// Begin graceful drain: stop admitting, finish queued work, exit.
    Shutdown,
}

/// One decoded request line.
///
/// Deserialization is hand-written and *tolerant*: only `kind` is
/// required, every other field defaults when absent, and unrecognized
/// fields are ignored (the derived decoder would reject both).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// What to do.
    pub kind: RequestKind,
    /// Client-chosen correlation id, echoed back verbatim (default 0).
    pub id: u64,
    /// Query keywords (conjunctive).
    pub keywords: Vec<String>,
    /// `σ` predicate components; conjoined when more than one is set.
    pub size: Option<u32>,
    /// Max fragment height.
    pub height: Option<u32>,
    /// Max document-order span.
    pub width: Option<u32>,
    /// Evaluation strategy name (`auto|brute|naive|reduced|pushdown`).
    /// Absent means `auto`: the server's planner picks per document.
    pub strategy: Option<String>,
    /// Per-request deadline in milliseconds, measured from *admission*.
    /// Clamped to the server's `--timeout-ms` when both are set.
    pub timeout_ms: Option<u64>,
    /// Join-kernel budget.
    pub max_joins: Option<u64>,
    /// Materialized-fragment budget.
    pub max_fragments: Option<u64>,
    /// `off | ladder` (default ladder).
    pub degrade: Option<String>,
    /// How many ranked answers to return (default 10).
    pub top_k: Option<usize>,
}

impl Request {
    /// The assembled selection predicate.
    pub fn filter(&self) -> FilterExpr {
        let mut parts = Vec::new();
        if let Some(n) = self.size {
            parts.push(FilterExpr::MaxSize(n));
        }
        if let Some(n) = self.height {
            parts.push(FilterExpr::MaxHeight(n));
        }
        if let Some(n) = self.width {
            parts.push(FilterExpr::MaxWidth(n));
        }
        FilterExpr::and(parts)
    }

    /// Parse the strategy choice (default [`StrategyChoice::Auto`]).
    pub fn strategy(&self) -> Result<StrategyChoice, String> {
        match &self.strategy {
            None => Ok(StrategyChoice::Auto),
            Some(s) => s.parse::<StrategyChoice>(),
        }
    }

    /// Parse the degrade mode (default [`DegradeMode::Ladder`]).
    pub fn degrade(&self) -> Result<DegradeMode, String> {
        match &self.degrade {
            None => Ok(DegradeMode::Ladder),
            Some(s) => s.parse::<DegradeMode>(),
        }
    }

    /// The request's own budget knobs (deadline handled by the server,
    /// which measures it from admission time).
    pub fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        b.max_joins = self.max_joins;
        b.max_fragments = self.max_fragments;
        b
    }
}

/// Pull `name` out of a decoded object, treating JSON `null` as absent.
fn take_opt(obj: &mut Vec<(String, serde::JsonValue)>, name: &str) -> Option<serde::JsonValue> {
    let i = obj.iter().position(|(k, _)| k == name)?;
    match obj.remove(i).1 {
        serde::JsonValue::Null => None,
        v => Some(v),
    }
}

fn field<'de, T, D>(
    obj: &mut Vec<(String, serde::JsonValue)>,
    name: &str,
) -> Result<Option<T>, D::Error>
where
    T: Deserialize<'de>,
    D: serde::de::Deserializer<'de>,
{
    match take_opt(obj, name) {
        None => Ok(None),
        Some(v) => match serde::from_value::<T, D::Error>(v) {
            Ok(t) => Ok(Some(t)),
            // The shim's error type isn't Display-bound, so report the
            // field name and drop the inner detail.
            Err(_) => Err(serde::de::Error::custom(format!(
                "invalid value for field `{name}`"
            ))),
        },
    }
}

impl<'de> Deserialize<'de> for Request {
    fn deserialize<D: serde::de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use serde::de::Error as _;
        let mut obj = match d.take_value()? {
            serde::JsonValue::Object(o) => o,
            _ => return Err(D::Error::custom("request must be a JSON object")),
        };
        let kind = match field::<String, D>(&mut obj, "kind")? {
            None => return Err(D::Error::custom("missing field `kind`")),
            Some(k) => match k.as_str() {
                "query" => RequestKind::Query,
                "health" => RequestKind::Health,
                "stats" => RequestKind::Stats,
                "reload" => RequestKind::Reload,
                "shutdown" => RequestKind::Shutdown,
                other => {
                    return Err(D::Error::custom(format!(
                        "unknown kind {other:?} (expected query|health|stats|reload|shutdown)"
                    )))
                }
            },
        };
        Ok(Request {
            kind,
            id: field::<u64, D>(&mut obj, "id")?.unwrap_or(0),
            keywords: field::<Vec<String>, D>(&mut obj, "keywords")?.unwrap_or_default(),
            size: field::<u32, D>(&mut obj, "size")?,
            height: field::<u32, D>(&mut obj, "height")?,
            width: field::<u32, D>(&mut obj, "width")?,
            strategy: field::<String, D>(&mut obj, "strategy")?,
            timeout_ms: field::<u64, D>(&mut obj, "timeout_ms")?,
            max_joins: field::<u64, D>(&mut obj, "max_joins")?,
            max_fragments: field::<u64, D>(&mut obj, "max_fragments")?,
            degrade: field::<String, D>(&mut obj, "degrade")?,
            top_k: field::<usize, D>(&mut obj, "top_k")?,
        })
        // Remaining fields in `obj` are unknown: deliberately ignored.
    }
}

/// Stable schema of the `stats`-verb response (assembled as raw JSON in
/// the server; documented here because this module is the protocol
/// reference). Field order is fixed; counters are cumulative since
/// boot; no wall-clock values outside `latency`.
///
/// ```json
/// {"id": N, "status": "ok",
///  "generation": N,                       // on-disk generation number
///  "reloads": {"ok": N, "failed": N},     // reload attempts (verb + watcher)
///  "quarantined": [{"file": "...", "reason": "..."}],
///  "serve": {"total": N, "ok": N, "degraded": N, "shed": N,
///            "timeout": N, "error": N, "shutting_down": N,
///            "invalid": N, "worker_panics": N, "accept_errors": N},
///  "eval": { ...summed EvalStats... },
///  "latency": { ...histogram buckets... },
///  "cache": {...} | null,                 // aggregate across all arenas
///  "delta": {"parent_chain": [...], "chain_depth": N,
///            "docs_carried": N, "docs_rewritten": N,
///            "carry_over": {"kept": N, "rekeyed": N, "evicted": N}},
///  "index": {"segments": N, "bytes": N, "terms_loaded": N},
///  "shards": [                            // one entry per shard, in order
///    {"shard": I, "docs": N,
///     "workers": N, "queued": N, "in_flight": N,  // summed over replicas
///     "respawns": N, "evaluations": N,            // summed over replicas
///     "flights": {"led": N, "coalesced": N, "aborted": N},  // summed
///     "plans": {"brute": N, "naive": N, "reduced": N,       // summed:
///               "push_down": N, "forced": N, "replans": N,  // planner picks
///               "cached": N, "planned": N, "invalidations": N},
///     "cache": {...} | null,             // aggregate of replica arenas
///     "replicas": [                      // one entry per replica, in order
///       {"replica": J,
///        "state": "closed" | "open" | "half-open",  // circuit breaker
///        "ewma_us": N,                   // latency EWMA; 0 = no samples
///        "hedges": N,                    // hedge/failover jobs received
///        "wins": N,                      // of those, won the group race
///        "opens": N,                     // lifetime breaker opens
///        "workers": N, "queued": N, "in_flight": N,
///        "respawns": N, "evaluations": N,
///        "flights": {"led": N, "coalesced": N, "aborted": N},
///        "plans": {"brute": N, "naive": N, "reduced": N, "push_down": N,
///                  "forced": N, "replans": N, "cached": N, "planned": N,
///                  "invalidations": N},  // this replica's planner picks
///        "cache": {...} | null}]}]}      // this replica's own arena
/// ```
///
/// Grouping invariants: reload counters live only under `"reloads"`,
/// cache counters only under `"cache"` (aggregate),
/// `"shards"[i]."cache"` (per-group aggregate), and
/// `"shards"[i]."replicas"[j]."cache"` (per-arena) — never at top
/// level; breaker/hedge fields live only under `"replicas"` entries.
pub mod status {
    /// Evaluated in full.
    pub const OK: &str = "ok";
    /// Answered with a sound subset (budget tripped, doc skipped/failed).
    pub const DEGRADED: &str = "degraded";
    /// Rejected at admission: the queue was full.
    pub const SHED: &str = "shed";
    /// The per-request deadline passed before an answer was produced.
    pub const TIMEOUT: &str = "timeout";
    /// The request failed (bad input, worker panic, evaluation error).
    pub const ERROR: &str = "error";
    /// Rejected at admission: the server is draining.
    pub const SHUTTING_DOWN: &str = "shutting-down";
}

/// Per-shard outcome accounting attached to a *partial* query response
/// (one where at least one shard's replica group was dropped from the
/// merge). Counts always sum to the server's `--shards` value; with
/// `--replicas R` a shard counts against a failure bucket only once
/// *every* usable replica in its group failed that way — a fault
/// masked by a hedge or failover leaves the shard under `ok`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardOutcome {
    /// Shards whose evaluation made it into the merged answer set.
    pub ok: u64,
    /// Shards that missed their deadline slice (in-band timeout or no
    /// reply by the gather deadline) and were dropped from the merge.
    pub timed_out: u64,
    /// Shards where every admittable replica's queue was full.
    pub shed: u64,
    /// Shards whose last usable replica panicked evaluating this
    /// request (earlier panics that failed over don't count).
    pub panicked: u64,
    /// Shards where every replica's circuit breaker refused the
    /// sub-job (all open with no probe slot free).
    pub open: u64,
}

/// One ranked answer inside a query response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// Source document name (the corpus file name).
    pub doc: String,
    /// Ranking score.
    pub score: f64,
    /// The fragment's node ids.
    pub nodes: Vec<u32>,
    /// Highlighted text snippet.
    pub snippet: String,
}

/// One response line for `query`-kind requests (and admission
/// rejections). `health` and `stats` responses are assembled directly
/// as JSON in the server because they embed histogram/counter objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Echo of the request id (0 when the request line didn't decode).
    pub id: u64,
    /// One of the [`status`] constants.
    pub status: String,
    /// Ranked answers (empty unless status is `ok`/`degraded`).
    pub answers: Vec<Answer>,
    /// Degradation detail for `degraded` / admission detail for `shed`.
    pub note: Option<String>,
    /// Error detail for `error` / `timeout`.
    pub error: Option<String>,
    /// Evaluation counters (deterministic; no wall-clock values).
    pub stats: Option<EvalStats>,
    /// `false` when at least one shard was dropped from the merge
    /// (deadline slice missed, queue full, or worker panic) and the
    /// answers therefore cover only the surviving shards. Always `true`
    /// for non-query statuses and for complete merges.
    pub complete: bool,
    /// Per-shard outcome counts; present exactly when `complete` is
    /// `false`.
    pub shards: Option<ShardOutcome>,
}

impl Response {
    /// An empty-bodied response with the given status.
    pub fn bare(id: u64, status: &str) -> Self {
        Response {
            id,
            status: status.to_string(),
            answers: Vec::new(),
            note: None,
            error: None,
            stats: None,
            complete: true,
            shards: None,
        }
    }

    /// An `error`-status response with a message.
    pub fn error(id: u64, msg: impl Into<String>) -> Self {
        let mut r = Response::bare(id, status::ERROR);
        r.error = Some(msg.into());
        r
    }

    /// Serialize to one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        // invariant: serialization of a plain value tree cannot fail.
        serde_json::to_string(self).expect("response serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_decodes_with_defaults() {
        let r: Request = serde_json::from_str(r#"{"kind":"health"}"#).unwrap();
        assert_eq!(r.kind, RequestKind::Health);
        assert_eq!(r.id, 0);
        assert!(r.keywords.is_empty());
        assert_eq!(r.timeout_ms, None);
        assert_eq!(r.strategy().unwrap(), StrategyChoice::Auto);
        assert_eq!(r.degrade().unwrap(), DegradeMode::Ladder);
        assert!(r.filter().is_true());
    }

    #[test]
    fn full_query_request_decodes() {
        let r: Request = serde_json::from_str(
            r#"{"kind":"query","id":7,"keywords":["xml","search"],"size":3,
                "strategy":"reduced","timeout_ms":250,"max_joins":1000,
                "degrade":"off","top_k":5}"#,
        )
        .unwrap();
        assert_eq!(r.kind, RequestKind::Query);
        assert_eq!(r.id, 7);
        assert_eq!(r.keywords, vec!["xml", "search"]);
        assert_eq!(r.filter(), FilterExpr::MaxSize(3));
        assert_eq!(
            r.strategy().unwrap(),
            StrategyChoice::Forced(xfrag_core::Strategy::FixedPointReduced)
        );
        assert_eq!(r.timeout_ms, Some(250));
        assert_eq!(r.budget().max_joins, Some(1000));
        assert_eq!(r.degrade().unwrap(), DegradeMode::Off);
        assert_eq!(r.top_k, Some(5));
    }

    #[test]
    fn reload_request_decodes() {
        let r: Request = serde_json::from_str(r#"{"kind":"reload","id":5}"#).unwrap();
        assert_eq!(r.kind, RequestKind::Reload);
        assert_eq!(r.id, 5);
    }

    #[test]
    fn unknown_fields_and_nulls_are_tolerated() {
        let r: Request = serde_json::from_str(
            r#"{"kind":"query","keywords":["k"],"size":null,"future_field":[1,2]}"#,
        )
        .unwrap();
        assert_eq!(r.size, None);
        assert_eq!(r.keywords, vec!["k"]);
    }

    #[test]
    fn bad_requests_are_errors_not_panics() {
        for bad in [
            "[]",
            "42",
            r#"{"id":1}"#,
            r#"{"kind":"frobnicate"}"#,
            r#"{"kind":"query","keywords":"not-a-list"}"#,
            r#"{"kind":"query","id":-3}"#,
        ] {
            assert!(serde_json::from_str::<Request>(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn response_roundtrips_and_is_deterministic() {
        let mut r = Response::bare(9, status::DEGRADED);
        r.note = Some("1 doc skipped".into());
        r.answers.push(Answer {
            doc: "a.xml".into(),
            score: 1.5,
            nodes: vec![1, 2, 3],
            snippet: "xml <<search>>".into(),
        });
        let line = r.to_line();
        assert_eq!(line, r.to_line(), "serialization is deterministic");
        assert!(
            line.starts_with(r#"{"id":9,"status":"degraded","#),
            "{line}"
        );
        assert!(
            line.ends_with(r#""complete":true,"shards":null}"#),
            "shard marker fields trail the line: {line}"
        );
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn partial_response_carries_shard_accounting() {
        let mut r = Response::bare(3, status::DEGRADED);
        r.note = Some("1 of 4 shard(s) missing from merge".into());
        r.complete = false;
        r.shards = Some(ShardOutcome {
            ok: 3,
            timed_out: 1,
            shed: 0,
            panicked: 0,
            open: 0,
        });
        let line = r.to_line();
        assert!(line.contains(r#""complete":false"#), "{line}");
        assert!(
            line.contains(r#""shards":{"ok":3,"timed_out":1,"shed":0,"panicked":0,"open":0}"#),
            "{line}"
        );
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r);
    }
}
