//! Command implementations. Each returns the full output as a string so
//! the logic is unit-testable without capturing stdout.

use crate::args::{Command, ProfileMode, SearchArgs};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use xfrag_core::collection::{
    evaluate_collection_planned_cached_traced_routed, top_k_collection, CollectionResult,
};
use xfrag_core::cost::CostModel;
use xfrag_core::plan::{execute_governed, execute_traced};
use xfrag_core::rank::RankConfig;
use xfrag_core::snippet::{snippet, SnippetConfig};
use xfrag_core::trace::{
    format_duration, render_spans, spans_to_json, LatencyHistogram, RecordingSink, Span, Tracer,
};
use xfrag_core::{
    evaluate_planned_cached_traced, overlap, plan_query, CacheRef, EvalStats, ExecPolicy,
    GenerationTag, Governor, LogicalPlan, Optimizer, PlanDecision, Query, QueryCache,
    StrategyChoice,
};
use xfrag_core::{FaultInjector, FaultPlan};
use xfrag_doc::atomic::{write_atomic, WriteFault, WriteFaultHook};
use xfrag_doc::manifest;
use xfrag_doc::serialize::{fragment_to_xml, WriteOptions};
use xfrag_doc::{
    encode_segment, parse_str, segment_file_name, store, Collection, Document, InvertedIndex,
    PostingsSource, SegmentIndex,
};

/// Top-level error type for command execution.
#[derive(Debug)]
pub enum CliError {
    /// An I/O operation on the named path/address failed (read, write,
    /// or connect — the io::Error says which way it went).
    Io(String, std::io::Error),
    /// The input was not well-formed XML.
    Parse(xfrag_doc::ParseError),
    /// A binary .xfrg file was corrupted or unreadable.
    Store(store::StoreError),
    /// Query evaluation failed.
    Query(String),
    /// `xfrag request` exhausted its retry budget on retryable outcomes
    /// (shed/timeout replies, refused connections). Distinguished from
    /// permanent failures by exit code 3 so scripts can tell "try again
    /// later" from "this will never work".
    RetriesExhausted(String),
    /// `xfrag request` got a *partial* reply (`"complete":false`): some
    /// shards were dropped from the merge, so the answers cover only
    /// the surviving shards. The carried string is the full reply line
    /// (printed to stdout; exit code 4) — a partial success, distinct
    /// from shed/timeout (retryable) and from permanent failures.
    PartialResult(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(path, e) => write!(f, "cannot access {path}: {e}"),
            CliError::Parse(e) => write!(f, "{e}"),
            CliError::Store(e) => write!(f, "{e}"),
            CliError::Query(e) => write!(f, "{e}"),
            CliError::RetriesExhausted(e) => write!(f, "retries exhausted: {e}"),
            CliError::PartialResult(_) => write!(f, "partial reply: some shards were dropped"),
        }
    }
}

impl std::error::Error for CliError {}

/// Execute a parsed command.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Search(a) => {
            let doc = load(&a.file)?;
            let seg = file_segment(&a.file, &doc);
            search_with(&doc, seg.as_ref(), &a)
        }
        Command::MultiSearch(a) => {
            let coll = load_dir(&a.file)?;
            multi_search(&coll, &a)
        }
        Command::Compile {
            input,
            output,
            inject,
        } => {
            let doc = load(&input)?;
            let bytes = store::encode(&doc);
            let hook = write_hook(inject.as_deref())?;
            write_atomic(Path::new(&output), &bytes, hook_ref(&hook))
                .map_err(|e| CliError::Io(output.clone(), e))?;
            Ok(format!(
                "compiled {input} ({} nodes) -> {output} ({} bytes)\n",
                doc.len(),
                bytes.len()
            ))
        }
        Command::Index {
            src,
            out,
            delta,
            inject,
        } => {
            if delta {
                delta_index(&src, &out, inject.as_deref())
            } else {
                index_corpus(&src, &out, inject.as_deref())
            }
        }
        Command::Compact { dir, inject } => compact_corpus(&dir, inject.as_deref()),
        Command::Explain(a) => {
            let doc = load(&a.file)?;
            let seg = file_segment(&a.file, &doc);
            explain_with(&doc, seg.as_ref(), &a)
        }
        Command::Info { file } => {
            let doc = load(&file)?;
            Ok(info(&doc))
        }
        Command::Serve(a) => crate::serve::serve(&a),
        Command::Request {
            addr,
            json,
            retries,
            backoff_ms,
            retry_partial,
            retry_budget_ms,
        } => crate::serve::request_with_retry(
            &addr,
            &json,
            retries,
            backoff_ms,
            retry_partial,
            retry_budget_ms,
        ),
        Command::Demo => Ok(demo()),
    }
}

/// Adapts the CLI's [`FaultInjector`] onto the `doc` crate's minimal
/// write-path hook. A newtype because the orphan rule forbids
/// implementing `doc`'s trait on `core`'s foreign type directly; it also
/// keeps `doc` free of any dependency on the fault machinery.
struct InjectorWriteHook(Arc<FaultInjector>);

impl WriteFaultHook for InjectorWriteHook {
    fn check(&self, at: &str) -> Option<WriteFault> {
        use xfrag_core::fault::{FaultAction, PANIC_MARKER};
        match self.0.check(at)? {
            FaultAction::Panic => panic!("{PANIC_MARKER}: injected panic at {at}"),
            FaultAction::Abort => std::process::abort(),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                None
            }
            FaultAction::Cancel | FaultAction::ReadError => Some(WriteFault::Error),
            FaultAction::Torn(n) => Some(WriteFault::Torn(n)),
        }
    }
}

/// Build the write-path fault hook from a `--inject` spec.
fn write_hook(spec: Option<&str>) -> Result<Option<InjectorWriteHook>, CliError> {
    match spec {
        None => Ok(None),
        Some(s) => {
            let plan = FaultPlan::parse(s).map_err(CliError::Query)?;
            Ok(Some(InjectorWriteHook(plan.build())))
        }
    }
}

/// The trait-object view `write_atomic` wants.
fn hook_ref(hook: &Option<InjectorWriteHook>) -> Option<&dyn WriteFaultHook> {
    hook.as_ref().map(|h| h as &dyn WriteFaultHook)
}

/// `xfrag index <src-dir> <corpus-dir>`: compile every `.xml` in the
/// source directory into the corpus directory as one new
/// manifest-committed generation. Each document commits as a pair: the
/// `.xfrg` tree and a `.xidx` structural-label inverted-index segment
/// (postings + prefix labels), both checksummed in the manifest so the
/// cold query path runs off persistent postings. Ordering is the
/// crash-safety story: every data file is written atomically under its
/// generation-unique name first, and the manifest — the commit point —
/// last, so a crash anywhere leaves the previous generation untouched
/// and loadable. Generations older than the previous one are pruned
/// after the commit.
fn index_corpus(src: &str, out: &str, inject: Option<&str>) -> Result<String, CliError> {
    let hook = write_hook(inject)?;
    let paths = xml_sources(src)?;
    std::fs::create_dir_all(out).map_err(|e| CliError::Io(out.to_string(), e))?;
    let outp = Path::new(out);
    let generation =
        manifest::latest_generation_number(outp).map_err(|e| CliError::Io(out.to_string(), e))? + 1;
    let mut files = Vec::new();
    let mut segments = 0usize;
    for p in &paths {
        let doc = load(&p.to_string_lossy())?;
        let stem = p
            .file_stem()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        let name = manifest::generation_file_name(&stem, generation);
        let bytes = store::encode(&doc);
        write_atomic(&outp.join(&name), &bytes, hook_ref(&hook))
            .map_err(|e| CliError::Io(name.clone(), e))?;
        files.push(manifest::ManifestEntry {
            name,
            len: bytes.len() as u64,
            checksum: manifest::checksum(&bytes),
        });
        let seg_name = segment_file_name(&stem, generation);
        let seg_bytes = encode_segment(&doc);
        write_atomic(&outp.join(&seg_name), &seg_bytes, hook_ref(&hook))
            .map_err(|e| CliError::Io(seg_name.clone(), e))?;
        files.push(manifest::ManifestEntry {
            name: seg_name,
            len: seg_bytes.len() as u64,
            checksum: manifest::checksum(&seg_bytes),
        });
        segments += 1;
    }
    let m = manifest::Manifest {
        generation,
        parent: None,
        files,
    };
    manifest::write_manifest(outp, &m, hook_ref(&hook))
        .map_err(|e| CliError::Io(out.to_string(), e))?;
    // Keep the current and previous generations (the previous is the
    // rollback target); everything older is garbage.
    let pruned = if generation >= 2 {
        manifest::prune_generations(outp, generation - 1)
            .map_err(|e| CliError::Io(out.to_string(), e))?
    } else {
        Vec::new()
    };
    Ok(format!(
        "committed generation {generation}: {} document(s) + {segments} index segment(s) \
         -> {out} ({} old file(s) pruned)\n",
        paths.len(),
        pruned.len()
    ))
}

/// The sorted `.xml` paths of a source directory.
fn xml_sources(src: &str) -> Result<Vec<std::path::PathBuf>, CliError> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(src)
        .map_err(|e| CliError::Io(src.to_string(), e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("xml"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Query(format!("no .xml files in {src}")));
    }
    Ok(paths)
}

/// The logical display name a manifest entry serves under:
/// `a.g000002.xfrg` → `a.xfrg`.
fn logical_name(entry_name: &str) -> String {
    manifest::split_generation_file(entry_name)
        .map(|(logical, _)| logical)
        .unwrap_or_else(|| entry_name.to_string())
}

/// `xfrag index --delta <src-dir> <corpus-dir>`: diff the source tree
/// against the latest verified generation (by encoded length + checksum
/// from its manifest) and commit a *delta* generation — only added or
/// changed documents are rewritten; unchanged ones are referenced under
/// their parent generation's file names. Same commit discipline as a
/// full index: data files first (atomic), manifest last.
fn delta_index(src: &str, out: &str, inject: Option<&str>) -> Result<String, CliError> {
    let hook = write_hook(inject)?;
    let paths = xml_sources(src)?;
    let outp = Path::new(out);
    let parent = match manifest::load_generation(outp) {
        Ok(manifest::GenerationLoad::Committed { manifest, .. }) => manifest,
        Ok(_) => {
            return Err(CliError::Query(format!(
                "no committed generation in {out} to delta against; run a full index first"
            )))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CliError::Query(format!(
                "no committed generation in {out} to delta against; run a full index first"
            )))
        }
        Err(e) => return Err(CliError::Io(out.to_string(), e)),
    };
    let parent_by_logical: std::collections::HashMap<String, &manifest::ManifestEntry> = parent
        .files
        .iter()
        .map(|e| (logical_name(&e.name), e))
        .collect();
    let generation =
        manifest::latest_generation_number(outp).map_err(|e| CliError::Io(out.to_string(), e))? + 1;
    let mut files = Vec::new();
    let mut src_logicals = std::collections::HashSet::new();
    let (mut carried, mut rewritten) = (0usize, 0usize);
    for p in &paths {
        let doc = load(&p.to_string_lossy())?;
        let stem = p
            .file_stem()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        src_logicals.insert(format!("{stem}.xfrg"));
        src_logicals.insert(format!("{stem}.xidx"));
        // A fresh `.xidx` segment for this document, written only when
        // the parent's can't be carried (doc changed, or a legacy parent
        // generation never had one).
        let write_segment = |files: &mut Vec<manifest::ManifestEntry>| -> Result<(), CliError> {
            let seg_name = segment_file_name(&stem, generation);
            let seg_bytes = encode_segment(&doc);
            write_atomic(&outp.join(&seg_name), &seg_bytes, hook_ref(&hook))
                .map_err(|e| CliError::Io(seg_name.clone(), e))?;
            files.push(manifest::ManifestEntry {
                name: seg_name,
                len: seg_bytes.len() as u64,
                checksum: manifest::checksum(&seg_bytes),
            });
            Ok(())
        };
        let bytes = store::encode(&doc);
        match parent_by_logical.get(&format!("{stem}.xfrg")) {
            Some(e) if e.len == bytes.len() as u64 && e.checksum == manifest::checksum(&bytes) => {
                // Unchanged: reference the parent generation's files —
                // the document *and* its index segment (byte-identical
                // document bytes imply an identical segment).
                files.push((*e).clone());
                match parent_by_logical.get(&format!("{stem}.xidx")) {
                    Some(seg) => files.push((*seg).clone()),
                    None => write_segment(&mut files)?,
                }
                carried += 1;
            }
            _ => {
                let name = manifest::generation_file_name(&stem, generation);
                write_atomic(&outp.join(&name), &bytes, hook_ref(&hook))
                    .map_err(|e| CliError::Io(name.clone(), e))?;
                files.push(manifest::ManifestEntry {
                    name,
                    len: bytes.len() as u64,
                    checksum: manifest::checksum(&bytes),
                });
                write_segment(&mut files)?;
                rewritten += 1;
            }
        }
    }
    // Removed *documents* only — a parent `.xidx` entry disappears with
    // its document and is not a removal of its own.
    let removed = parent
        .files
        .iter()
        .filter(|e| {
            let logical = logical_name(&e.name);
            logical.ends_with(".xfrg") && !src_logicals.contains(&logical)
        })
        .count();
    let m = manifest::Manifest {
        generation,
        parent: Some(parent.generation),
        files,
    };
    manifest::write_manifest(outp, &m, hook_ref(&hook))
        .map_err(|e| CliError::Io(out.to_string(), e))?;
    // Keep the parent (the rollback target); parent-chain retention in
    // prune_generations keeps everything the delta still references.
    let pruned = manifest::prune_generations(outp, parent.generation)
        .map_err(|e| CliError::Io(out.to_string(), e))?;
    Ok(format!(
        "committed delta generation {generation} (parent {}): {carried} carried, \
         {rewritten} rewritten, {removed} removed -> {out} ({} old file(s) pruned)\n",
        parent.generation,
        pruned.len()
    ))
}

/// `xfrag compact <corpus-dir>`: materialize the latest verified
/// generation — typically the top of a delta chain — as a new *full*
/// generation (every document rewritten under the new generation's
/// names, `parent: None`), bounding chain depth. The old chain survives
/// as the rollback target until the next commit prunes it.
fn compact_corpus(dir: &str, inject: Option<&str>) -> Result<String, CliError> {
    let hook = write_hook(inject)?;
    let dirp = Path::new(dir);
    let current =
        match manifest::load_generation(dirp).map_err(|e| CliError::Io(dir.to_string(), e))? {
            manifest::GenerationLoad::Committed { manifest, .. } => manifest,
            _ => {
                return Err(CliError::Query(format!(
                    "no committed generation in {dir} to compact"
                )))
            }
        };
    let generation =
        manifest::latest_generation_number(dirp).map_err(|e| CliError::Io(dir.to_string(), e))? + 1;
    let mut entries = current.files.clone();
    entries.sort_by_key(|e| logical_name(&e.name));
    let mut files = Vec::new();
    let (mut count, mut segments) = (0usize, 0usize);
    for e in &entries {
        let bytes =
            std::fs::read(dirp.join(&e.name)).map_err(|err| CliError::Io(e.name.clone(), err))?;
        let logical = logical_name(&e.name);
        // `.xidx` index segments keep their kind across compaction; both
        // kinds are renamed under the new generation's infix.
        let name = match logical.strip_suffix(".xidx") {
            Some(stem) => {
                segments += 1;
                segment_file_name(stem, generation)
            }
            None => {
                count += 1;
                let stem = logical.strip_suffix(".xfrg").unwrap_or(&logical);
                manifest::generation_file_name(stem, generation)
            }
        };
        write_atomic(&dirp.join(&name), &bytes, hook_ref(&hook))
            .map_err(|err| CliError::Io(name.clone(), err))?;
        files.push(manifest::ManifestEntry {
            name,
            len: bytes.len() as u64,
            checksum: manifest::checksum(&bytes),
        });
    }
    let m = manifest::Manifest {
        generation,
        parent: None,
        files,
    };
    manifest::write_manifest(dirp, &m, hook_ref(&hook))
        .map_err(|e| CliError::Io(dir.to_string(), e))?;
    let pruned = manifest::prune_generations(dirp, current.generation)
        .map_err(|e| CliError::Io(dir.to_string(), e))?;
    Ok(format!(
        "compacted generation {} -> {generation}: {count} document(s) + {segments} \
         index segment(s) ({} old file(s) pruned)\n",
        current.generation,
        pruned.len()
    ))
}

pub(crate) fn load(path: &str) -> Result<Document, CliError> {
    if path.ends_with(".xfrg") {
        let bytes = std::fs::read(path).map_err(|e| CliError::Io(path.to_string(), e))?;
        return store::decode(&bytes).map_err(CliError::Store);
    }
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))?;
    parse_str(&text).map_err(CliError::Parse)
}

/// Probe for a persistent index segment next to a `.xfrg` file: the
/// same path with an `.xidx` extension. `Ok(None)` when there is no
/// sibling; `Err(why)` when one exists but is unusable (corrupt, or
/// built for a different document) — callers warn and fall back to the
/// in-memory tree-walk index, never fail the load.
pub(crate) fn sibling_segment(path: &Path, doc: &Document) -> Result<Option<SegmentIndex>, String> {
    if path.extension().and_then(|e| e.to_str()) != Some("xfrg") {
        return Ok(None);
    }
    let seg_path = path.with_extension("xidx");
    if !seg_path.exists() {
        return Ok(None);
    }
    load_segment(&seg_path, doc).map(Some)
}

/// Read, decode, and validate one `.xidx` segment against the document
/// it claims to index.
pub(crate) fn load_segment(path: &Path, doc: &Document) -> Result<SegmentIndex, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let seg = SegmentIndex::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    if seg.doc_len() != doc.len() {
        return Err(format!(
            "{}: segment covers {} node(s) but the document has {}",
            path.display(),
            seg.doc_len(),
            doc.len()
        ));
    }
    Ok(seg)
}

/// Load every `.xml`/`.xfrg` file in a directory (sorted for
/// determinism). An `.xfrg` with a valid `.xidx` sibling loads
/// segment-backed: lazy postings and label arithmetic on the query path.
fn load_dir(dir: &str) -> Result<Collection, CliError> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::Io(dir.to_string(), e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e == "xml" || e == "xfrg")
        })
        .collect();
    paths.sort();
    let mut coll = Collection::new();
    for p in paths {
        let doc = load(&p.to_string_lossy())?;
        let name = p.file_name().unwrap_or_default().to_string_lossy();
        match sibling_segment(&p, &doc) {
            Ok(Some(seg)) => {
                coll.add_with_segment(name, doc, seg);
            }
            Ok(None) => {
                coll.add(name, doc);
            }
            Err(why) => {
                eprintln!("warning: ignoring index segment ({why}); using tree walks");
                coll.add(name, doc);
            }
        }
    }
    Ok(coll)
}

/// A one-shot CLI cache: `--cache-mb N` builds the cache and a fresh
/// generation tag, runs one untraced cold pass to fill it, and lets the
/// reported (warm) pass hit — so `--profile` spans and `--stats` show
/// real hit counters from a single invocation.
fn cli_cache(a: &SearchArgs) -> Option<(QueryCache, GenerationTag)> {
    a.cache_mb
        .map(|mb| (QueryCache::with_capacity_mb(mb), GenerationTag::fresh()))
}

/// `xfrag msearch`.
pub fn multi_search(coll: &Collection, a: &SearchArgs) -> Result<String, CliError> {
    let q = build_query(a);
    let sink = RecordingSink::new();
    let tracer = if a.profile.is_on() {
        Tracer::new(&sink)
    } else {
        Tracer::disabled()
    };
    let cache = cli_cache(a);
    let cache_arg = cache.as_ref().map(|(c, g)| (c, *g));
    let all: Vec<xfrag_doc::DocId> = coll.ids().collect();
    if cache_arg.is_some() {
        // Cold fill pass; the reported pass below runs warm.
        evaluate_collection_planned_cached_traced_routed(
            coll,
            &q,
            a.strategy,
            &exec_policy(a),
            &Tracer::disabled(),
            cache_arg,
            &all,
            None,
            None,
        )
        .map_err(|e| CliError::Query(e.to_string()))?;
    }
    let r = evaluate_collection_planned_cached_traced_routed(
        coll,
        &q,
        a.strategy,
        &exec_policy(a),
        &tracer,
        cache_arg,
        &all,
        None,
        None,
    )
    .map_err(|e| CliError::Query(e.to_string()))?;
    let mut out = String::new();
    writeln!(
        out,
        "{} fragment(s) in {} of {} document(s) ({} pruned) for {:?}",
        r.total_fragments(),
        r.answers.len(),
        coll.len(),
        r.docs_pruned,
        a.keywords
    )
    .unwrap();
    if r.docs_skipped > 0 {
        writeln!(
            out,
            "note: collection budget exhausted — {} candidate document(s) skipped",
            r.docs_skipped
        )
        .unwrap();
    }
    for (id, d) in &r.degraded_docs {
        writeln!(out, "note: {} {}", coll.name(*id), d).unwrap();
    }
    for (id, msg) in &r.docs_failed {
        writeln!(
            out,
            "note: {} failed (panic isolated): {}",
            coll.name(*id),
            msg.lines().next().unwrap_or("")
        )
        .unwrap();
    }
    // Ranking operates on the (possibly partial) answers.
    let ranked = CollectionResult {
        answers: r.answers.clone(),
        docs_pruned: r.docs_pruned,
        docs_failed: r.docs_failed.clone(),
        stats: r.stats,
    };
    let top = top_k_collection(coll, &ranked, &q, &RankConfig::default(), 10);
    for (i, (doc_id, f, score)) in top.iter().enumerate() {
        if a.ids {
            writeln!(out, "[{}] {} {:.3} {}", i + 1, coll.name(*doc_id), score, f).unwrap();
        } else {
            let snip = snippet(coll.doc(*doc_id), f, &q.terms, &SnippetConfig::default());
            writeln!(
                out,
                "--- answer {} from {} (score {:.3}, {} nodes)\n    {}",
                i + 1,
                coll.name(*doc_id),
                score,
                f.size(),
                snip
            )
            .unwrap();
        }
    }
    if a.stats {
        writeln!(out, "stats: {}", r.stats).unwrap();
        if coll.segment_count() > 0 {
            writeln!(
                out,
                "index: segments={} bytes={} terms_loaded={}",
                coll.segment_count(),
                coll.index_bytes(),
                coll.index_terms_loaded()
            )
            .unwrap();
        }
        if let Some((c, _)) = &cache {
            writeln!(out, "cache: {}", c.stats().to_json()).unwrap();
        }
    }
    if a.profile.is_on() {
        let spans = sink.take();
        out.push_str(&profile_block(a.profile, &spans));
        if a.profile == ProfileMode::Text {
            // Collection-level latency aggregation over the per-document
            // spans (one `doc:{name}` top-level span per candidate).
            let hist =
                LatencyHistogram::from_spans(spans.iter().filter(|s| s.stage.starts_with("doc:")));
            if !hist.is_empty() {
                for line in hist.render().lines() {
                    out.push_str("  ");
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
    }
    Ok(out)
}

fn build_query(a: &SearchArgs) -> Query {
    let mut q = Query::new(a.keywords.iter(), a.filter.clone());
    if a.strict {
        q = q.with_strict_leaf_semantics();
    }
    q
}

fn exec_policy(a: &SearchArgs) -> ExecPolicy {
    ExecPolicy::with_budget(a.budget).with_degrade(a.degrade)
}

/// The strategy tag shown in the result header: the forced name, or
/// `auto→<picked>` (with a re-plan marker) so the planner's choice is
/// always visible.
fn strategy_label(choice: StrategyChoice, decision: &PlanDecision) -> String {
    match choice {
        StrategyChoice::Forced(s) => s.name().to_string(),
        StrategyChoice::Auto if decision.replanned => format!(
            "auto→{} after re-plan from {}",
            decision.effective.name(),
            decision.picked.name()
        ),
        StrategyChoice::Auto => format!("auto→{}", decision.effective.name()),
    }
}

/// Render recorded spans per the `--profile` mode: a `profile:` header
/// with the indented span tree (text) or one JSON line (json).
fn profile_block(mode: ProfileMode, spans: &[Span]) -> String {
    match mode {
        ProfileMode::Off => String::new(),
        ProfileMode::Text => {
            let mut out = String::from("profile:\n");
            for line in render_spans(spans).lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
            out
        }
        ProfileMode::Json => format!("profile: {}\n", spans_to_json(spans)),
    }
}

/// Probe the single-file commands' `.xidx` sibling; an unusable
/// segment warns and falls back to tree walks, never fails the command.
fn file_segment(file: &str, doc: &Document) -> Option<SegmentIndex> {
    match sibling_segment(Path::new(file), doc) {
        Ok(seg) => seg,
        Err(why) => {
            eprintln!("warning: ignoring index segment ({why}); using tree walks");
            None
        }
    }
}

/// One-line provenance for `--stats`: how big the persistent segment
/// is and how much of its vocabulary the query actually materialized.
fn segment_stats_line(seg: &SegmentIndex) -> String {
    format!(
        "index: segment bytes={} terms={} terms_loaded={}",
        seg.bytes_len(),
        seg.term_count(),
        seg.terms_loaded()
    )
}

/// `xfrag search`.
pub fn search(doc: &Document, a: &SearchArgs) -> Result<String, CliError> {
    search_with(doc, None, a)
}

/// `xfrag search`, segment-backed when a usable `.xidx` sibling was
/// found: postings stream lazily and structure runs on label arithmetic.
pub fn search_with(
    doc: &Document,
    seg: Option<&SegmentIndex>,
    a: &SearchArgs,
) -> Result<String, CliError> {
    match seg {
        Some(seg) => search_impl(doc, seg, Some(seg), a),
        None => search_impl(doc, &InvertedIndex::build(doc), None, a),
    }
}

fn search_impl<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    seg: Option<&SegmentIndex>,
    a: &SearchArgs,
) -> Result<String, CliError> {
    let q = build_query(a);
    let sink = RecordingSink::new();
    let tracer = if a.profile.is_on() {
        Tracer::new(&sink)
    } else {
        Tracer::disabled()
    };
    let cache = cli_cache(a);
    let cache_ref = cache.as_ref().map(|(c, g)| CacheRef {
        cache: c,
        gen: *g,
        doc: 0,
    });
    let model = CostModel::default();
    if let Some(cref) = cache_ref {
        // Cold fill pass; the reported pass below runs warm.
        evaluate_planned_cached_traced(
            doc,
            index,
            &q,
            a.strategy,
            &exec_policy(a),
            &Tracer::disabled(),
            Some(cref),
            &model,
        )
        .map_err(|e| CliError::Query(e.to_string()))?;
    }
    let (result, decision) = evaluate_planned_cached_traced(
        doc,
        index,
        &q,
        a.strategy,
        &exec_policy(a),
        &tracer,
        cache_ref,
        &model,
    )
    .map_err(|e| CliError::Query(e.to_string()))?;
    let answers = if a.maximal {
        overlap::maximal_only(&result.fragments)
    } else {
        result.fragments.clone()
    };

    let mut out = String::new();
    writeln!(
        out,
        "{} fragment(s) for {:?} [{}]",
        answers.len(),
        a.keywords,
        strategy_label(a.strategy, &decision),
    )
    .unwrap();
    if result.degradation.is_degraded() {
        writeln!(out, "note: {}", result.degradation).unwrap();
    }
    for (i, f) in answers.iter().enumerate() {
        if a.ids {
            writeln!(out, "[{}] {}", i + 1, f).unwrap();
        } else {
            writeln!(
                out,
                "--- answer {} (root {}, {} nodes)",
                i + 1,
                f.root(),
                f.size()
            )
            .unwrap();
            writeln!(
                out,
                "{}",
                fragment_to_xml(doc, f.nodes(), WriteOptions::default())
            )
            .unwrap();
        }
    }
    if a.stats {
        writeln!(out, "stats: {}", result.stats).unwrap();
        if a.strategy == StrategyChoice::Auto {
            writeln!(out, "plan: {}", decision.rationale).unwrap();
        }
        if let Some(seg) = seg {
            writeln!(out, "{}", segment_stats_line(seg)).unwrap();
        }
        if let Some((c, _)) = &cache {
            writeln!(out, "cache: {}", c.stats().to_json()).unwrap();
        }
    }
    out.push_str(&profile_block(a.profile, &sink.take()));
    Ok(out)
}

/// `xfrag explain` without a persistent segment; `run` dispatches
/// through [`explain_with`], so outside the unit tests this shorthand
/// has no binary caller.
#[cfg_attr(not(test), allow(dead_code))]
pub fn explain(doc: &Document, a: &SearchArgs) -> Result<String, CliError> {
    explain_with(doc, None, a)
}

/// `xfrag explain`, segment-backed when a usable `.xidx` sibling was
/// found — the rendered stages then cost and execute off the persistent
/// postings, and `label_ops`/`tree_ops` in the per-stage stats show
/// which structural backend answered.
pub fn explain_with(
    doc: &Document,
    seg: Option<&SegmentIndex>,
    a: &SearchArgs,
) -> Result<String, CliError> {
    match seg {
        Some(seg) => explain_impl(doc, seg, Some(seg), a),
        None => explain_impl(doc, &InvertedIndex::build(doc), None, a),
    }
}

fn explain_impl<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    seg: Option<&SegmentIndex>,
    a: &SearchArgs,
) -> Result<String, CliError> {
    let q = build_query(a);
    let plan = LogicalPlan::for_query(&q).map_err(|e| CliError::Query(e.to_string()))?;
    let optimizer = Optimizer::standard(doc, index, CostModel::default());

    let mut out = String::new();
    for (stage, p) in optimizer.optimize_traced(plan) {
        writeln!(out, "== {stage} ==").unwrap();
        out.push_str(&p.render());
        let mut st = EvalStats::new();
        // Stage executions honor the user's budget too: un-optimized
        // stages can be the very blow-up the optimizer exists to avoid
        // (the pre-push-down fixpoint of a wide operand set is as large
        // as the powerset), and EXPLAIN must never stall on them.
        let gov = Governor::new(a.budget, None);
        if a.analyze {
            // EXPLAIN ANALYZE: cost-model estimate next to the measured
            // execution — wall-clock, counter deltas, per-operator spans.
            let est = CostModel::default().estimate_plan(&p, doc, index);
            let sink = RecordingSink::new();
            let tracer = Tracer::new(&sink);
            let start = std::time::Instant::now();
            let res = execute_traced(&p, doc, index, &mut st, &gov, &tracer);
            let wall = start.elapsed();
            match res {
                Ok(set) => writeln!(out, "-> {} fragment(s)", set.len()).unwrap(),
                Err(breach) => writeln!(out, "-> not executable at this stage ({breach})").unwrap(),
            }
            writeln!(
                out,
                "analyze: estimate joins≈{} fragments≈{} | actual wall {}, {}",
                est.joins,
                est.fragments,
                format_duration(wall),
                st
            )
            .unwrap();
            for line in render_spans(&sink.take()).lines() {
                writeln!(out, "  {line}").unwrap();
            }
            out.push('\n');
        } else {
            match execute_governed(&p, doc, index, &mut st, &gov) {
                Ok(set) => writeln!(out, "-> {} fragment(s), {}\n", set.len(), st).unwrap(),
                Err(breach) => {
                    writeln!(out, "-> not executable at this stage ({breach})\n").unwrap()
                }
            }
        }
    }
    for (term, a_len, b_len) in xfrag_core::query::operand_reduction_factors(doc, index, &q) {
        let rf = if a_len == 0 {
            0.0
        } else {
            (a_len - b_len) as f64 / a_len as f64
        };
        writeln!(
            out,
            "operand {term:?}: |F| = {a_len}, |⊖(F)| = {b_len}, RF = {rf:.2}"
        )
        .unwrap();
    }
    // The §5 planner's verdict for this (query, document) pair — printed
    // whether or not the strategy was forced, so EXPLAIN always shows
    // what `auto` would do and why.
    let mut plan_scratch = EvalStats::new();
    let dec = plan_query(doc, index, &q, &CostModel::default(), &mut plan_scratch);
    let est_line = xfrag_core::Strategy::ALL
        .iter()
        .map(|&s| format!("{}≈{}", s.name(), dec.estimate_for(s).joins))
        .collect::<Vec<_>>()
        .join(", ");
    writeln!(out, "plan: estimated joins {est_line}").unwrap();
    for o in &dec.operands {
        writeln!(
            out,
            "plan: operand {:?}: n={} RF={:.2} depth-span={} ({})",
            o.term,
            o.n,
            o.rf,
            o.depth_span,
            if o.from_segment {
                "segment stats"
            } else {
                "live sample"
            }
        )
        .unwrap();
    }
    match a.strategy {
        StrategyChoice::Auto => writeln!(
            out,
            "plan: auto picks {} — {}",
            dec.picked.name(),
            dec.rationale
        )
        .unwrap(),
        StrategyChoice::Forced(s) => writeln!(
            out,
            "plan: --strategy forces {}; auto would pick {} — {}",
            s.name(),
            dec.picked.name(),
            dec.rationale
        )
        .unwrap(),
    }
    // Budget checkpoints: re-run the fully optimized plan under a governor
    // for the configured budget and report where governance would bite.
    let plan = LogicalPlan::for_query(&q).map_err(|e| CliError::Query(e.to_string()))?;
    let optimized = Optimizer::standard(doc, index, CostModel::default()).optimize(plan);
    let gov = Governor::new(a.budget, None);
    let mut st = EvalStats::new();
    match execute_governed(&optimized, doc, index, &mut st, &gov) {
        Ok(set) => writeln!(
            out,
            "budget: {} checkpoint(s) passed, {} join(s) charged, {} fragment(s) within budget",
            gov.checkpoints_passed(),
            gov.joins_spent(),
            set.len()
        )
        .unwrap(),
        Err(breach) => writeln!(
            out,
            "budget: tripped ({breach}) after {} checkpoint(s), {} join(s) — \
             `search --degrade ladder` would fall back to a cheaper plan",
            gov.checkpoints_passed(),
            gov.joins_spent()
        )
        .unwrap(),
    }
    // `--cache-mb`: run the query cold (filling a fresh cache), then run
    // it again warm under the tracer — the warm span tree carries
    // cache_hits/cache_misses per stage, the EXPLAIN ANALYZE view of the
    // cache.
    if let Some((cache, gen)) = cli_cache(a) {
        let cref = CacheRef {
            cache: &cache,
            gen,
            doc: 0,
        };
        let policy = exec_policy(a);
        writeln!(out, "== cache (cold fill, then warm re-run) ==").unwrap();
        let model = CostModel::default();
        evaluate_planned_cached_traced(
            doc,
            index,
            &q,
            a.strategy,
            &policy,
            &Tracer::disabled(),
            Some(cref),
            &model,
        )
        .map_err(|e| CliError::Query(e.to_string()))?;
        let sink = RecordingSink::new();
        let tracer = Tracer::new(&sink);
        let (warm, _) = evaluate_planned_cached_traced(
            doc,
            index,
            &q,
            a.strategy,
            &policy,
            &tracer,
            Some(cref),
            &model,
        )
        .map_err(|e| CliError::Query(e.to_string()))?;
        writeln!(
            out,
            "-> {} fragment(s) warm, {}",
            warm.fragments.len(),
            warm.stats
        )
        .unwrap();
        for line in render_spans(&sink.take()).lines() {
            writeln!(out, "  {line}").unwrap();
        }
        writeln!(out, "cache: {}", cache.stats().to_json()).unwrap();
    }
    // Last so `terms_loaded` reflects everything the stages above
    // actually materialized from the persistent segment.
    if let Some(seg) = seg {
        writeln!(out, "{}", segment_stats_line(seg)).unwrap();
    }
    Ok(out)
}

/// `xfrag info`.
pub fn info(doc: &Document) -> String {
    let index = InvertedIndex::build(doc);
    let mut tags: std::collections::BTreeMap<&str, usize> = Default::default();
    for n in doc.node_ids() {
        *tags.entry(doc.tag(n)).or_default() += 1;
    }
    let mut out = String::new();
    writeln!(out, "nodes:  {}", doc.len()).unwrap();
    writeln!(out, "height: {}", doc.height()).unwrap();
    writeln!(out, "terms:  {}", index.term_count()).unwrap();
    writeln!(out, "tags:").unwrap();
    for (tag, count) in tags {
        writeln!(out, "  {tag}: {count}").unwrap();
    }
    out
}

/// `xfrag demo` — the paper's §4 walkthrough on the built-in Figure 1
/// document.
pub fn demo() -> String {
    let fig = xfrag_corpus::figure1();
    let doc = &fig.doc;
    let a = SearchArgs {
        file: "<built-in figure 1>".into(),
        keywords: vec!["XQuery".into(), "optimization".into()],
        filter: xfrag_core::FilterExpr::MaxSize(3),
        strategy: StrategyChoice::Forced(xfrag_core::Strategy::PushDown),
        strict: false,
        maximal: false,
        ids: true,
        stats: true,
        budget: xfrag_core::Budget::unlimited(),
        degrade: xfrag_core::DegradeMode::Ladder,
        profile: ProfileMode::Off,
        analyze: false,
        cache_mb: None,
    };
    let mut out = String::from(
        "Paper §4 example: query {XQuery, optimization}, filter size ≤ 3,\n\
         against the Figure 1 document (82 nodes).\n\n",
    );
    out.push_str(&search(doc, &a).expect("demo query evaluates"));
    out.push_str("\nThe fragment ⟨n16,n17,n18⟩ is the paper's \"fragment of interest\".\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfrag_core::{FilterExpr, Strategy};

    fn args(keywords: &[&str], filter: FilterExpr) -> SearchArgs {
        SearchArgs {
            file: String::new(),
            keywords: keywords.iter().map(|s| s.to_string()).collect(),
            filter,
            strategy: StrategyChoice::Forced(Strategy::PushDown),
            strict: false,
            maximal: false,
            ids: true,
            stats: false,
            budget: xfrag_core::Budget::unlimited(),
            degrade: xfrag_core::DegradeMode::Ladder,
            profile: ProfileMode::Off,
            analyze: false,
            cache_mb: None,
        }
    }

    fn doc() -> Document {
        parse_str("<a><b>xml search</b><c>xml ranking</c></a>").unwrap()
    }

    #[test]
    fn search_lists_fragments() {
        let out = search(&doc(), &args(&["xml", "search"], FilterExpr::MaxSize(3))).unwrap();
        assert!(out.contains("fragment(s)"));
        assert!(out.contains("⟨n1⟩"));
    }

    #[test]
    fn search_xml_output() {
        let mut a = args(&["xml", "ranking"], FilterExpr::True);
        a.ids = false;
        let out = search(&doc(), &a).unwrap();
        assert!(out.contains("<c>xml ranking</c>"));
    }

    #[test]
    fn maximal_hides_subfragments() {
        let base = args(&["xml"], FilterExpr::True);
        let all = search(&doc(), &base).unwrap();
        let mut m = base.clone();
        m.maximal = true;
        let max = search(&doc(), &m).unwrap();
        let count = |s: &str| {
            s.lines()
                .next()
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse::<usize>()
                .unwrap()
        };
        assert!(count(&max) < count(&all));
    }

    #[test]
    fn explain_shows_stages_and_rf() {
        let out = explain(&doc(), &args(&["xml", "search"], FilterExpr::MaxSize(2))).unwrap();
        assert!(out.contains("== initial =="));
        assert!(out.contains("Theorem 2"));
        assert!(out.contains("Theorem 3"));
        assert!(out.contains("RF ="));
    }

    #[test]
    fn info_reports_shape() {
        let out = info(&doc());
        assert!(out.contains("nodes:  3"));
        assert!(out.contains("b: 1"));
    }

    #[test]
    fn demo_runs() {
        let out = demo();
        assert!(out.contains("⟨n16,n17,n18⟩"));
        assert!(out.contains("4 fragment(s)"));
    }

    #[test]
    fn search_degrades_under_tight_budget_instead_of_failing() {
        let mut a = args(&["xml"], FilterExpr::True);
        a.budget.max_joins = Some(0);
        let out = search(&doc(), &a).unwrap();
        assert!(out.contains("note: degraded to"), "{out}");
        // With --degrade off the same budget is a hard error.
        a.degrade = xfrag_core::DegradeMode::Off;
        let err = search(&doc(), &a).unwrap_err();
        assert!(err.to_string().contains("budget exceeded"), "{err}");
    }

    #[test]
    fn explain_annotates_budget_checkpoints() {
        let out = explain(&doc(), &args(&["xml", "search"], FilterExpr::MaxSize(2))).unwrap();
        assert!(out.contains("budget:"), "{out}");
        assert!(out.contains("checkpoint(s) passed"), "{out}");
        let mut a = args(&["xml", "search"], FilterExpr::MaxSize(2));
        a.budget.max_joins = Some(0);
        let out = explain(&doc(), &a).unwrap();
        assert!(out.contains("budget: tripped"), "{out}");
    }

    #[test]
    fn stats_flag_prints_counters() {
        let mut a = args(&["xml"], FilterExpr::True);
        a.stats = true;
        let out = search(&doc(), &a).unwrap();
        assert!(out.contains("stats: joins="));
    }

    #[test]
    fn profile_prints_span_tree() {
        let mut a = args(&["xml", "search"], FilterExpr::MaxSize(3));
        a.profile = ProfileMode::Text;
        let out = search(&doc(), &a).unwrap();
        assert!(out.contains("profile:"), "{out}");
        assert!(out.contains("term-lookup:xml"), "{out}");
        assert!(out.contains("rung:full"), "{out}");
        assert!(out.contains("select-top"), "{out}");
        // Profiling must not change the answer.
        let plain = search(&doc(), &args(&["xml", "search"], FilterExpr::MaxSize(3))).unwrap();
        assert!(out.starts_with(plain.lines().next().unwrap()), "{out}");
    }

    #[test]
    fn profile_json_is_machine_readable() {
        let mut a = args(&["xml"], FilterExpr::True);
        a.profile = ProfileMode::Json;
        let out = search(&doc(), &a).unwrap();
        let json_line = out
            .lines()
            .find(|l| l.starts_with("profile: ["))
            .expect("json profile line");
        assert!(json_line.contains("\"stage\":\"rung:full\""), "{out}");
        assert!(json_line.contains("\"wall_ns\":"), "{out}");
        assert!(json_line.ends_with(']'), "{out}");
    }

    #[test]
    fn cached_search_is_byte_identical_and_reports_hits() {
        let base = args(&["xml", "search"], FilterExpr::MaxSize(3));
        let plain = search(&doc(), &base).unwrap();
        let mut cached = base.clone();
        cached.cache_mb = Some(4);
        let warm = search(&doc(), &cached).unwrap();
        assert_eq!(plain, warm, "cache must not change any output byte");

        // With --stats the cache counter line appears and shows hits.
        let mut st = cached.clone();
        st.stats = true;
        let out = search(&doc(), &st).unwrap();
        assert!(out.contains("cache: {\"postings\":"), "{out}");
        assert!(out.contains("cache_hits="), "{out}");
        // Warm pass answered from the result tier: at least one hit.
        assert!(!out.contains("\"result\":{\"hits\":0,"), "{out}");
    }

    #[test]
    fn cached_profile_shows_result_hit_span() {
        let mut a = args(&["xml", "search"], FilterExpr::MaxSize(3));
        a.cache_mb = Some(4);
        a.profile = ProfileMode::Text;
        let out = search(&doc(), &a).unwrap();
        assert!(out.contains("cache:result-hit"), "{out}");
    }

    #[test]
    fn explain_with_cache_renders_warm_pass() {
        let mut a = args(&["xml", "search"], FilterExpr::MaxSize(2));
        a.cache_mb = Some(4);
        let out = explain(&doc(), &a).unwrap();
        assert!(
            out.contains("== cache (cold fill, then warm re-run) =="),
            "{out}"
        );
        assert!(out.contains("cache:result-hit"), "{out}");
        assert!(out.contains("cache: {\"postings\":"), "{out}");
    }

    #[test]
    fn explain_analyze_prints_estimates_and_actuals_per_stage() {
        let mut a = args(&["xml", "search"], FilterExpr::MaxSize(2));
        a.analyze = true;
        let out = explain(&doc(), &a).unwrap();
        let stages = out.matches("== ").count();
        let analyzed = out.matches("analyze: estimate joins≈").count();
        assert!(stages >= 2, "{out}");
        assert_eq!(analyzed, stages, "one analyze line per stage:\n{out}");
        assert!(out.contains("| actual wall "), "{out}");
        assert!(out.contains("joins="), "{out}");
        // Per-operator spans appear under each stage.
        assert!(out.contains("keyword:xml"), "{out}");
    }
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use crate::args::SearchArgs;
    use xfrag_core::{FilterExpr, Strategy};

    fn margs(dir: &str) -> SearchArgs {
        SearchArgs {
            file: dir.to_string(),
            keywords: vec!["xml".into(), "search".into()],
            filter: FilterExpr::MaxSize(3),
            strategy: StrategyChoice::Forced(Strategy::PushDown),
            strict: false,
            maximal: false,
            ids: true,
            stats: true,
            budget: xfrag_core::Budget::unlimited(),
            degrade: xfrag_core::DegradeMode::Ladder,
            profile: ProfileMode::Off,
            analyze: false,
            cache_mb: None,
        }
    }

    #[test]
    fn msearch_over_directory() {
        let dir = std::env::temp_dir().join(format!("xfrag-msearch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.xml"), "<a><p>xml search engines</p></a>").unwrap();
        std::fs::write(dir.join("b.xml"), "<b><p>xml</p><p>search</p></b>").unwrap();
        std::fs::write(dir.join("c.xml"), "<c><p>unrelated</p></c>").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let coll = load_dir(&dir.to_string_lossy()).unwrap();
        assert_eq!(coll.len(), 3);
        let out = multi_search(&coll, &margs(&dir.to_string_lossy())).unwrap();
        assert!(out.contains("a.xml"), "{out}");
        assert!(out.contains("b.xml"), "{out}");
        assert!(!out.contains("c.xml"), "{out}");
        assert!(out.contains("(1 pruned)"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn msearch_profile_includes_per_document_spans_and_histogram() {
        let dir = std::env::temp_dir().join(format!("xfrag-mprof-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.xml"), "<a><p>xml search engines</p></a>").unwrap();
        std::fs::write(dir.join("b.xml"), "<b><p>xml</p><p>search</p></b>").unwrap();
        let coll = load_dir(&dir.to_string_lossy()).unwrap();
        let mut a = margs(&dir.to_string_lossy());
        a.profile = ProfileMode::Text;
        let out = multi_search(&coll, &a).unwrap();
        assert!(out.contains("profile:"), "{out}");
        assert!(out.contains("doc:a.xml"), "{out}");
        assert!(out.contains("doc:b.xml"), "{out}");
        assert!(out.contains("latency histogram: 2 sample(s)"), "{out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compile_then_search_xfrg() {
        let dir = std::env::temp_dir().join(format!("xfrag-compile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let xml = dir.join("d.xml");
        let bin = dir.join("d.xfrg");
        std::fs::write(&xml, "<d><p>xml search</p></d>").unwrap();
        let out = run(Command::Compile {
            input: xml.to_string_lossy().into_owned(),
            output: bin.to_string_lossy().into_owned(),
            inject: None,
        })
        .unwrap();
        assert!(out.contains("compiled"), "{out}");
        // Searching the compiled form gives the same answer as the XML.
        let d_xml = load(&xml.to_string_lossy()).unwrap();
        let d_bin = load(&bin.to_string_lossy()).unwrap();
        assert_eq!(d_xml, d_bin);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compile_write_fault_leaves_existing_output_byte_identical() {
        // Satellite (a): with a fault injected anywhere on the write
        // path, a pre-existing destination file survives unchanged —
        // the failure happens on the temp file, never in place.
        let dir = std::env::temp_dir().join(format!("xfrag-atomic-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let xml = dir.join("d.xml");
        let bin = dir.join("d.xfrg");
        std::fs::write(&xml, "<d><p>xml search</p></d>").unwrap();
        let original = b"pre-existing bytes that must survive".to_vec();
        for spec in [
            "store:write@0=read-error",
            "store:fsync@0=read-error",
            "store:rename@0=cancel",
            "store:write@0=torn:4",
        ] {
            std::fs::write(&bin, &original).unwrap();
            let err = run(Command::Compile {
                input: xml.to_string_lossy().into_owned(),
                output: bin.to_string_lossy().into_owned(),
                inject: Some(spec.into()),
            })
            .unwrap_err();
            assert!(matches!(err, CliError::Io(..)), "{spec}: {err}");
            assert_eq!(
                std::fs::read(&bin).unwrap(),
                original,
                "{spec}: destination modified"
            );
        }
        // Without a fault the same compile replaces the file.
        run(Command::Compile {
            input: xml.to_string_lossy().into_owned(),
            output: bin.to_string_lossy().into_owned(),
            inject: None,
        })
        .unwrap();
        assert_ne!(std::fs::read(&bin).unwrap(), original);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_commits_generations_and_prunes_old_ones() {
        let dir = std::env::temp_dir().join(format!("xfrag-index-{}", std::process::id()));
        let src = dir.join("src");
        let out = dir.join("corpus");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("a.xml"), "<a><p>xml search</p></a>").unwrap();
        std::fs::write(src.join("b.xml"), "<b><p>xml ranking</p></b>").unwrap();
        let outs = out.to_string_lossy().into_owned();
        let srcs = src.to_string_lossy().into_owned();

        let msg = index_corpus(&srcs, &outs, None).unwrap();
        assert!(
            msg.contains("committed generation 1: 2 document(s)"),
            "{msg}"
        );
        assert!(out.join("a.g000001.xfrg").exists());
        assert!(out.join("manifest-000001.xfm").exists());

        let msg = index_corpus(&srcs, &outs, None).unwrap();
        assert!(msg.contains("committed generation 2"), "{msg}");
        // Generation 1 is kept as the rollback target...
        assert!(out.join("manifest-000001.xfm").exists());
        let msg = index_corpus(&srcs, &outs, None).unwrap();
        assert!(msg.contains("committed generation 3"), "{msg}");
        // ...but after generation 3 commits, generation 1 is pruned.
        assert!(!out.join("manifest-000001.xfm").exists());
        assert!(!out.join("a.g000001.xfrg").exists());
        assert!(out.join("manifest-000002.xfm").exists());

        // A failed index attempt leaves the committed generation intact.
        let before = std::fs::read(out.join("a.g000003.xfrg")).unwrap();
        let err = index_corpus(&srcs, &outs, Some("store:rename@0=cancel")).unwrap_err();
        assert!(matches!(err, CliError::Io(..)), "{err}");
        assert_eq!(std::fs::read(out.join("a.g000003.xfrg")).unwrap(), before);
        assert!(!out.join("manifest-000004.xfm").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delta_index_carries_unchanged_documents_and_compact_materializes() {
        let dir = std::env::temp_dir().join(format!("xfrag-delta-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = dir.join("src");
        let out = dir.join("corpus");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("a.xml"), "<a><p>xml search</p></a>").unwrap();
        std::fs::write(src.join("b.xml"), "<b><p>xml ranking</p></b>").unwrap();
        std::fs::write(src.join("c.xml"), "<c><p>xml storage</p></c>").unwrap();
        let outs = out.to_string_lossy().into_owned();
        let srcs = src.to_string_lossy().into_owned();

        // Delta without a committed generation is refused.
        let err = delta_index(&srcs, &outs, None).unwrap_err();
        assert!(err.to_string().contains("full index first"), "{err}");

        index_corpus(&srcs, &outs, None).unwrap();
        // 1-doc change + 1-doc removal.
        std::fs::write(src.join("a.xml"), "<a><p>xml search updated</p></a>").unwrap();
        std::fs::remove_file(src.join("c.xml")).unwrap();
        let msg = delta_index(&srcs, &outs, None).unwrap();
        assert!(
            msg.contains(
                "committed delta generation 2 (parent 1): 1 carried, 1 rewritten, 1 removed"
            ),
            "{msg}"
        );
        // Only the changed document got gen-2 files (tree + index
        // segment); the carried one is still served from gen 1, which
        // the prune retained — its segment rides along.
        assert!(out.join("a.g000002.xfrg").exists());
        assert!(out.join("a.g000002.xidx").exists());
        assert!(!out.join("b.g000002.xfrg").exists());
        assert!(!out.join("b.g000002.xidx").exists());
        assert!(out.join("b.g000001.xfrg").exists());
        assert!(out.join("b.g000001.xidx").exists());
        assert!(out.join("manifest-000001.xfm").exists());
        let m = match manifest::load_generation(Path::new(&outs)).unwrap() {
            manifest::GenerationLoad::Committed { manifest, .. } => manifest,
            other => panic!("{other:?}"),
        };
        assert_eq!(m.generation, 2);
        assert_eq!(m.parent, Some(1));
        // One tree + one segment entry per document.
        assert_eq!(m.files.len(), 4);
        assert_eq!(
            m.files.iter().filter(|e| e.name.ends_with(".xidx")).count(),
            2
        );

        // Compaction rewrites everything as a full generation 3.
        let msg = compact_corpus(&outs, None).unwrap();
        assert!(
            msg.contains("compacted generation 2 -> 3: 2 document(s)"),
            "{msg}"
        );
        let m = match manifest::load_generation(Path::new(&outs)).unwrap() {
            manifest::GenerationLoad::Committed { manifest, .. } => manifest,
            other => panic!("{other:?}"),
        };
        assert_eq!(m.generation, 3);
        assert_eq!(m.parent, None);
        assert!(m.files.iter().all(|e| e.name.contains(".g000003.")));
        // Compacted bytes are identical to what the delta served.
        assert_eq!(
            std::fs::read(out.join("a.g000003.xfrg")).unwrap(),
            std::fs::read(out.join("a.g000002.xfrg")).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
