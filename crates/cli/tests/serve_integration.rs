//! End-to-end tests for `xfrag serve`: the deterministic fault suite
//! and a concurrent soak test (ISSUE 3 tentpole + satellite d).
//!
//! Each test boots the real binary with `--port 0`, reads the
//! `listening on <addr>` line, and drives it over raw TCP with
//! newline-delimited JSON. The fault suite leans on two server
//! guarantees: fault injection is deterministic by spec (serial
//! requests hit per-site counters in order), and responses carry no
//! wall-clock values — so a request unaffected by a fault must be
//! *byte-identical* to the same request against a fault-free server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

fn corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfrag-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("a.xml"),
        "<doc><title>xml search alpha</title><p>ranked xml search over fragments</p></doc>",
    )
    .unwrap();
    std::fs::write(
        dir.join("b.xml"),
        "<doc><title>beta</title><sec><p>xml algebra</p><p>search trees</p></sec></doc>",
    )
    .unwrap();
    std::fs::write(
        dir.join("c.xml"),
        "<doc><p>gamma xml</p><p>keyword search</p><p>gamma filler</p></doc>",
    )
    .unwrap();
    dir
}

/// One NDJSON client connection.
struct Conn {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let s = TcpStream::connect(addr).expect("connect to server");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Conn {
            r: BufReader::new(s.try_clone().unwrap()),
            w: s,
        }
    }

    fn rpc(&mut self, json: &str) -> String {
        self.w.write_all(json.as_bytes()).unwrap();
        self.w.write_all(b"\n").unwrap();
        self.w.flush().unwrap();
        let mut line = String::new();
        self.r.read_line(&mut line).expect("read response line");
        assert!(!line.is_empty(), "server hung up instead of replying");
        line.trim_end().to_string()
    }
}

/// A running `xfrag serve` child. Killed on drop so a failing assertion
/// never leaks a listener into later tests.
struct Server {
    child: Child,
    addr: String,
    out: BufReader<ChildStdout>,
}

impl Server {
    fn start(dir: &Path, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xfrag"))
            .arg("serve")
            .arg(dir)
            .args(["--port", "0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn server");
        let mut out = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        out.read_line(&mut line).expect("read startup line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .to_string();
        Server { child, addr, out }
    }

    fn connect(&self) -> Conn {
        Conn::open(&self.addr)
    }

    fn rpc(&self, json: &str) -> String {
        self.connect().rpc(json)
    }

    /// Send `shutdown`, wait for exit, return (status, drain summary).
    fn shutdown_and_wait(mut self) -> (ExitStatus, String) {
        let reply = self.rpc(r#"{"kind":"shutdown","id":999}"#);
        assert!(reply.contains(r#""note":"draining""#), "{reply}");
        let status = self.child.wait().expect("wait for server exit");
        let mut rest = String::new();
        self.out.read_to_string(&mut rest).unwrap();
        (status, rest)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

/// Commit a new corpus generation with the real `xfrag index` binary.
fn run_index(src: &Path, out: &Path) -> String {
    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .arg("index")
        .arg(src)
        .arg(out)
        .output()
        .expect("run xfrag index");
    assert!(
        o.status.success(),
        "index failed: {}",
        String::from_utf8_lossy(&o.stderr)
    );
    String::from_utf8_lossy(&o.stdout).into_owned()
}

/// An empty scratch directory for a generation-committed corpus.
fn gen_corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfrag-gen-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Pull a string field's value out of a response line (no escapes in
/// the fields we probe).
fn field_str<'a>(line: &'a str, name: &str) -> &'a str {
    let pat = format!("\"{name}\":\"");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {line}"))
        + pat.len();
    let end = line[start..].find('"').unwrap() + start;
    &line[start..end]
}

/// The fixed serial request sequence used by the determinism suite.
/// Every query matches all three corpus docs, so per-request fault-site
/// hits are: `serve:worker` 1, `collection:doc` 3, `query:eval` 3.
const QUERIES: [&str; 4] = [
    r#"{"kind":"query","id":1,"keywords":["xml","search"]}"#,
    r#"{"kind":"query","id":2,"keywords":["xml","search"],"top_k":2}"#,
    r#"{"kind":"query","id":3,"keywords":["xml","search"],"size":6}"#,
    r#"{"kind":"query","id":4,"keywords":["xml"]}"#,
];

fn run_serial(dir: &Path, extra: &[&str]) -> (Vec<String>, ExitStatus, String) {
    let srv = Server::start(dir, extra);
    let mut conn = srv.connect();
    let replies = QUERIES.iter().map(|q| conn.rpc(q)).collect();
    drop(conn);
    let (status, summary) = srv.shutdown_and_wait();
    (replies, status, summary)
}

#[test]
fn fault_injection_is_deterministic_and_isolated() {
    let dir = corpus("det");
    let (base, st, sum) = run_serial(&dir, &[]);
    assert!(st.success(), "fault-free server exited {st:?}");
    assert!(sum.contains("0 in flight"), "{sum}");
    // 4 queries + the shutdown request itself, nothing degraded or worse.
    assert!(
        sum.contains("(5 ok, 0 degraded, 0 shed, 0 timeout, 0 error)"),
        "{sum}"
    );
    for (i, r) in base.iter().enumerate() {
        assert_eq!(field_str(r, "status"), "ok", "baseline[{i}]: {r}");
    }
    // The whole suite is vacuous unless a clean replay is byte-identical.
    let (again, ..) = run_serial(&dir, &[]);
    assert_eq!(base, again, "fault-free replay is not deterministic");

    // (affected request index, expected status, expected detail).
    // Hit arithmetic: serve:worker fires once per request, so hit 2 is
    // request 2; collection:doc / query:eval fire once per candidate
    // doc (3 per request), so hit 4 lands on request 1's second doc.
    struct Case {
        inject: &'static str,
        affected: usize,
        status: &'static str,
        detail: &'static str,
    }
    let cases = [
        Case {
            inject: "serve:worker@2=panic",
            affected: 2,
            status: "error",
            detail: "worker panicked (isolated): xfrag-injected-fault",
        },
        Case {
            inject: "collection:doc@4=cancel",
            affected: 1,
            status: "error",
            detail: "query cancelled",
        },
        Case {
            inject: "query:eval@4=panic",
            affected: 1,
            status: "degraded",
            detail: "b.xml failed: xfrag-injected-fault",
        },
    ];
    for c in &cases {
        let (replies, st, sum) = run_serial(&dir, &["--inject", c.inject]);
        assert!(st.success(), "{}: server died: {st:?}", c.inject);
        assert!(sum.contains("0 in flight"), "{}: {sum}", c.inject);
        for (i, r) in replies.iter().enumerate() {
            if i == c.affected {
                assert_eq!(field_str(r, "status"), c.status, "{}: {r}", c.inject);
                assert!(r.contains(c.detail), "{}: {r}", c.inject);
            } else {
                // The core guarantee: a concurrent-in-spirit request the
                // fault did not touch is byte-for-byte what a fault-free
                // server would have said.
                assert_eq!(r, &base[i], "{}: unaffected reply {i} drifted", c.inject);
            }
        }
    }

    // An injected delay (no deadline configured) perturbs timing only:
    // every response byte must match the fault-free run.
    let (delayed, st, _) = run_serial(&dir, &["--inject", "serve:worker@1=delay:30"]);
    assert!(st.success());
    assert_eq!(delayed, base, "a pure delay changed response bytes");
}

#[test]
fn quarantine_keeps_the_server_up() {
    let dir = corpus("quar");
    // One organically corrupt file, plus an injected read error on the
    // second file in sorted load order (b.xml).
    std::fs::write(dir.join("zz_broken.xml"), "<doc><unclosed>").unwrap();
    let srv = Server::start(&dir, &["--inject", "serve:load@1=read-error"]);
    let mut conn = srv.connect();

    let health = conn.rpc(r#"{"kind":"health","id":1}"#);
    assert!(health.contains("\"docs\":2"), "{health}");
    assert!(
        health.contains("b.xml") && health.contains("zz_broken.xml"),
        "quarantine list wrong: {health}"
    );

    // Queries keep working over the surviving docs.
    let q = conn.rpc(r#"{"kind":"query","id":2,"keywords":["xml","search"]}"#);
    assert_eq!(field_str(&q, "status"), "ok", "{q}");
    assert!(q.contains("a.xml") && q.contains("c.xml"), "{q}");
    assert!(!q.contains("b.xml"), "quarantined doc answered: {q}");

    drop(conn);
    let (st, sum) = srv.shutdown_and_wait();
    assert!(st.success());
    assert!(sum.contains("2 file(s) quarantined"), "{sum}");
}

#[test]
fn shed_timeout_and_drain_rejection_paths() {
    let dir = corpus("shed");
    // One worker stalled 600 ms on each of the first two jobs makes the
    // depth-1 queue's state deterministic under generous sleeps.
    let srv = Server::start(
        &dir,
        &[
            "--workers",
            "1",
            "--queue-depth",
            "1",
            "--inject",
            "serve:worker@0=delay:600,serve:worker@1=delay:600",
        ],
    );
    let addr = srv.addr.clone();
    let occupy = std::thread::spawn({
        let a = addr.clone();
        move || Conn::open(&a).rpc(r#"{"kind":"query","id":11,"keywords":["xml"]}"#)
    });
    std::thread::sleep(Duration::from_millis(150));
    let queued = std::thread::spawn({
        let a = addr.clone();
        move || Conn::open(&a).rpc(r#"{"kind":"query","id":12,"keywords":["xml"]}"#)
    });
    std::thread::sleep(Duration::from_millis(150));

    // Worker busy + queue full => immediate shed with a shed reply.
    let shed = srv.rpc(r#"{"kind":"query","id":13,"keywords":["xml"]}"#);
    assert_eq!(field_str(&shed, "status"), "shed", "{shed}");
    assert!(shed.starts_with("{\"id\":13,"), "{shed}");
    assert!(shed.contains("queue full (depth 1)"), "{shed}");

    // The shed didn't cost the admitted requests anything.
    assert_eq!(field_str(&occupy.join().unwrap(), "status"), "ok");
    assert_eq!(field_str(&queued.join().unwrap(), "status"), "ok");

    // An already-expired deadline surfaces as `timeout`, not an error.
    let to = srv.rpc(r#"{"kind":"query","id":14,"keywords":["xml"],"timeout_ms":0}"#);
    assert_eq!(field_str(&to, "status"), "timeout", "{to}");
    assert!(to.contains("deadline of 0 ms"), "{to}");

    // A connection opened before shutdown still gets answered — with a
    // structured drain rejection, not a hangup.
    let mut pre = srv.connect();
    let mut sc = srv.connect();
    let r = sc.rpc(r#"{"kind":"shutdown","id":90}"#);
    assert!(r.contains("draining"), "{r}");
    let rejected = pre.rpc(r#"{"kind":"query","id":15,"keywords":["xml"]}"#);
    assert_eq!(
        field_str(&rejected, "status"),
        "shutting-down",
        "{rejected}"
    );
    drop(pre);
    drop(sc);
    let mut srv = srv;
    let st = srv.child.wait().expect("server exit");
    let mut sum = String::new();
    srv.out.read_to_string(&mut sum).unwrap();
    assert!(st.success(), "server exited {st:?}");
    assert!(sum.contains("1 shed"), "{sum}");
    assert!(sum.contains("1 timeout"), "{sum}");
    assert!(sum.contains("0 in flight"), "{sum}");
}

#[test]
fn soak_concurrent_clients_lose_no_responses() {
    let dir = corpus("soak");
    // Two workers, a tight queue, two injected panics and two stalls:
    // the storm below must still produce exactly one well-formed reply
    // per request, and the drain must end with zero in flight.
    let srv = Server::start(
        &dir,
        &[
            "--workers",
            "2",
            "--queue-depth",
            "2",
            "--inject",
            "serve:worker@0=delay:300,serve:worker@3=panic,serve:worker@6=panic,serve:worker@10=delay:300",
        ],
    );

    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = srv.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut conn = Conn::open(&addr);
            let mut replies = Vec::new();
            for i in 0..PER_THREAD {
                let id = t * 100 + i;
                let req = format!(
                    r#"{{"kind":"query","id":{id},"keywords":["xml","search"],"top_k":2}}"#
                );
                replies.push((id, conn.rpc(&req)));
            }
            replies
        }));
    }

    let mut total = 0usize;
    let mut by_status: std::collections::BTreeMap<String, usize> = Default::default();
    for h in handles {
        for (id, reply) in h.join().expect("client thread") {
            total += 1;
            // Exactly this request's reply, on this request's connection.
            assert!(reply.starts_with(&format!("{{\"id\":{id},")), "{reply}");
            let status = field_str(&reply, "status").to_string();
            match status.as_str() {
                "ok" | "degraded" => {}
                "shed" => assert!(reply.contains("queue full"), "{reply}"),
                // Keywords are always present and valid here, so the only
                // organic error path is an isolated worker panic.
                "error" => assert!(reply.contains("worker panicked (isolated)"), "{reply}"),
                other => panic!("unexpected status {other:?}: {reply}"),
            }
            *by_status.entry(status).or_default() += 1;
        }
    }
    assert_eq!(
        total,
        (THREADS * PER_THREAD) as usize,
        "lost responses: {by_status:?}"
    );

    // Post-storm: the pool healed (both panicked workers respawned) and
    // nothing is stuck in the queue.
    let health = srv.rpc(r#"{"kind":"health","id":900}"#);
    assert!(health.contains("\"workers\":2"), "{health}");
    assert!(
        health.contains("\"queued\":0,\"in_flight\":0"),
        "work stuck after storm: {health}"
    );
    let stats = srv.rpc(r#"{"kind":"stats","id":901}"#);
    assert!(stats.contains("\"worker_panics\":2"), "{stats}");

    let (st, sum) = srv.shutdown_and_wait();
    assert!(st.success(), "server exited {st:?}");
    assert!(sum.contains("2 worker panic(s)"), "{sum}");
    assert!(sum.contains("0 in flight"), "{sum}");
}

#[test]
fn hot_reload_swaps_generations_under_concurrent_load() {
    let src = corpus("reload-src");
    let out = gen_corpus("reload");
    run_index(&src, &out);
    let srv = Server::start(&out, &[]);
    let health = srv.rpc(r#"{"kind":"health","id":1}"#);
    assert!(health.contains("\"generation\":1"), "{health}");

    // The next generation, with a changed document.
    std::fs::write(
        src.join("a.xml"),
        "<doc><title>xml search alpha two</title><p>ranked xml search regenerated</p></doc>",
    )
    .unwrap();
    run_index(&src, &out);

    // The ISSUE's acceptance bar: a reload landing in the middle of the
    // 6×5 concurrent soak drops zero in-flight requests.
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = srv.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut conn = Conn::open(&addr);
            let mut replies = Vec::new();
            for i in 0..PER_THREAD {
                let id = t * 100 + i;
                let req = format!(
                    r#"{{"kind":"query","id":{id},"keywords":["xml","search"],"top_k":2}}"#
                );
                replies.push((id, conn.rpc(&req)));
            }
            replies
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    let reload = srv.rpc(r#"{"kind":"reload","id":50}"#);
    assert_eq!(field_str(&reload, "status"), "ok", "{reload}");
    assert!(reload.contains("serving generation 2"), "{reload}");

    let mut total = 0usize;
    for h in handles {
        for (id, reply) in h.join().expect("client thread") {
            total += 1;
            assert!(reply.starts_with(&format!("{{\"id\":{id},")), "{reply}");
            assert_eq!(field_str(&reply, "status"), "ok", "{reply}");
            // Display names stay stable across generations.
            assert!(reply.contains("a.xfrg"), "{reply}");
        }
    }
    assert_eq!(total, (THREADS * PER_THREAD) as usize, "lost responses");

    let stats = srv.rpc(r#"{"kind":"stats","id":60}"#);
    assert!(stats.contains("\"generation\":2"), "{stats}");
    assert!(
        stats.contains("\"reloads\":{\"ok\":1,\"failed\":0}"),
        "{stats}"
    );
    // Post-reload queries answer from the new generation's content.
    let q = srv.rpc(r#"{"kind":"query","id":61,"keywords":["regenerated"]}"#);
    assert_eq!(field_str(&q, "status"), "ok", "{q}");
    assert!(q.contains("a.xfrg"), "{q}");

    let (st, sum) = srv.shutdown_and_wait();
    assert!(st.success(), "server exited {st:?}");
    assert!(sum.contains("0 in flight"), "{sum}");
}

/// Pull a numeric field's value out of a response line.
fn field_u64(hay: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let start = hay
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {hay}"))
        + pat.len();
    hay[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Result-tier `(hits, misses)` from a `stats` reply's cache section.
fn result_tier(stats: &str) -> (u64, u64) {
    let c = &stats[stats
        .find("\"cache\":{")
        .expect("stats line has a cache section")..];
    let r = &c[c
        .find("\"result\":{")
        .expect("cache section has a result tier")..];
    (field_u64(r, "hits"), field_u64(r, "misses"))
}

/// The `"answers":[...]`-to-end tail of a query reply — the part that must
/// not change between a computed answer and a cache replay (the `stats`
/// field legitimately differs: that's where the hit counters live).
fn answers_of(reply: &str) -> &str {
    let start = reply.find("\"answers\":").expect("query reply has answers");
    let end = reply.find(",\"stats\":").unwrap_or(reply.len());
    &reply[start..end]
}

/// ISSUE 5 satellite: hot reload invalidates the query cache implicitly
/// (generation-keyed entries from the old snapshot are never served
/// again), under the same 6×5 concurrent soak as the reload test, and
/// the per-tier counters reconcile across the swap.
#[test]
fn hot_reload_invalidates_cache_under_concurrent_load() {
    let src = corpus("cache-reload-src");
    let out = gen_corpus("cache-reload");
    run_index(&src, &out);
    let srv = Server::start(&out, &["--cache-mb", "16"]);

    // Warm the result tier: the second identical request replays the
    // first's answer bytes and says so in its stats.
    let q_alpha = r#"{"kind":"query","id":7,"keywords":["alpha"]}"#;
    let cold = srv.rpc(q_alpha);
    assert_eq!(field_str(&cold, "status"), "ok", "{cold}");
    assert_eq!(field_u64(&cold, "cache_hits"), 0, "{cold}");
    let warm = srv.rpc(q_alpha);
    assert_eq!(
        answers_of(&warm),
        answers_of(&cold),
        "cache replay changed the answer"
    );
    assert!(field_u64(&warm, "cache_hits") >= 1, "{warm}");
    let stats = srv.rpc(r#"{"kind":"stats","id":8}"#);
    let (h0, m0) = result_tier(&stats);
    assert!(h0 >= 1 && m0 >= 1, "warm-up not visible in stats: {stats}");

    // Commit generation 2 with changed content for the cached query.
    std::fs::write(
        src.join("a.xml"),
        "<doc><title>alpha regenerated</title><p>ranked xml search regenerated</p></doc>",
    )
    .unwrap();
    run_index(&src, &out);

    // Reload lands in the middle of the 6×5 soak, every query of which
    // is cache-eligible and most of which are cache hits.
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = srv.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut conn = Conn::open(&addr);
            let mut replies = Vec::new();
            for i in 0..PER_THREAD {
                let id = t * 100 + i;
                let req = format!(
                    r#"{{"kind":"query","id":{id},"keywords":["xml","search"],"top_k":2}}"#
                );
                replies.push((id, conn.rpc(&req)));
            }
            replies
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    let reload = srv.rpc(r#"{"kind":"reload","id":50}"#);
    assert_eq!(field_str(&reload, "status"), "ok", "{reload}");
    assert!(reload.contains("serving generation 2"), "{reload}");

    let mut total = 0usize;
    for h in handles {
        for (id, reply) in h.join().expect("client thread") {
            total += 1;
            assert!(reply.starts_with(&format!("{{\"id\":{id},")), "{reply}");
            assert_eq!(field_str(&reply, "status"), "ok", "{reply}");
        }
    }
    assert_eq!(total, (THREADS * PER_THREAD) as usize, "lost responses");

    // The acceptance bar: the old generation's cached answer is never
    // served again. The first post-reload run of the warmed query must
    // be a clean miss that computes the *new* content...
    let stats = srv.rpc(r#"{"kind":"stats","id":51}"#);
    let (h1, m1) = result_tier(&stats);
    let post = srv.rpc(q_alpha);
    assert_eq!(field_str(&post, "status"), "ok", "{post}");
    assert_eq!(
        field_u64(&post, "cache_hits"),
        0,
        "stale hit after reload: {post}"
    );
    assert!(
        post.contains("regenerated"),
        "stale content after reload: {post}"
    );
    assert_ne!(
        answers_of(&post),
        answers_of(&cold),
        "old-generation answer served"
    );
    let stats = srv.rpc(r#"{"kind":"stats","id":52}"#);
    let (h2, m2) = result_tier(&stats);
    assert_eq!(h2, h1, "result-tier hits moved on a post-reload miss");
    assert!(m2 > m1, "post-reload probe not counted as a miss: {stats}");

    // ...and the new generation caches normally from then on.
    let post2 = srv.rpc(q_alpha);
    assert!(field_u64(&post2, "cache_hits") >= 1, "{post2}");
    assert_eq!(answers_of(&post2), answers_of(&post));
    let stats = srv.rpc(r#"{"kind":"stats","id":53}"#);
    let (h3, _) = result_tier(&stats);
    assert!(h3 > h2, "new-generation hit not counted: {stats}");
    assert!(field_u64(&stats, "insertions") >= 1, "{stats}");
    assert!(field_u64(&stats, "entries") >= 1, "{stats}");

    let (st, sum) = srv.shutdown_and_wait();
    assert!(st.success(), "server exited {st:?}");
    assert!(sum.contains("0 in flight"), "{sum}");
}

/// Commit a delta generation with the real `xfrag index --delta` binary.
fn run_delta(src: &Path, out: &Path) -> String {
    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args(["index", "--delta"])
        .arg(src)
        .arg(out)
        .output()
        .expect("run xfrag index --delta");
    assert!(
        o.status.success(),
        "delta index failed: {}",
        String::from_utf8_lossy(&o.stderr)
    );
    String::from_utf8_lossy(&o.stdout).into_owned()
}

/// ISSUE 6 satellite: a 1-document delta reload under the 6×5 soak
/// carries cache entries for the two untouched documents across the
/// generation bump. The warmed query's hit rate dips by exactly the
/// changed fraction (1 of 3 per-doc result entries evicted), not to
/// zero, and in-flight soak requests all finish on their snapshot.
#[test]
fn delta_reload_carries_cache_for_unchanged_documents() {
    let src = corpus("delta-reload-src");
    let out = gen_corpus("delta-reload");
    run_index(&src, &out);
    let srv = Server::start(&out, &["--cache-mb", "16"]);

    // Warm a measurement query the soak never issues: `xml` matches all
    // three documents, so its result tier holds one entry per doc.
    let q_xml = r#"{"kind":"query","id":7,"keywords":["xml"]}"#;
    let cold = srv.rpc(q_xml);
    assert_eq!(field_str(&cold, "status"), "ok", "{cold}");
    let warm = srv.rpc(q_xml);
    assert_eq!(answers_of(&warm), answers_of(&cold));
    assert!(field_u64(&warm, "cache_hits") >= 3, "{warm}");

    // A 1-document delta: only a.xml changes; b and c are carried.
    std::fs::write(
        src.join("a.xml"),
        "<doc><title>xml search alpha two</title><p>ranked xml search regenerated</p></doc>",
    )
    .unwrap();
    let msg = run_delta(&src, &out);
    assert!(
        msg.contains("committed delta generation 2 (parent 1): 2 carried, 1 rewritten"),
        "{msg}"
    );

    // Reload lands in the middle of the 6×5 concurrent soak.
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = srv.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut conn = Conn::open(&addr);
            let mut replies = Vec::new();
            for i in 0..PER_THREAD {
                let id = t * 100 + i;
                let req = format!(
                    r#"{{"kind":"query","id":{id},"keywords":["xml","search"],"top_k":2}}"#
                );
                replies.push((id, conn.rpc(&req)));
            }
            replies
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    let reload = srv.rpc(r#"{"kind":"reload","id":50}"#);
    assert_eq!(field_str(&reload, "status"), "ok", "{reload}");
    assert!(reload.contains("serving generation 2"), "{reload}");

    let mut total = 0usize;
    for h in handles {
        for (id, reply) in h.join().expect("client thread") {
            total += 1;
            // In-flight requests finish on whichever snapshot they
            // pinned — never dropped, never torn across generations.
            assert!(reply.starts_with(&format!("{{\"id\":{id},")), "{reply}");
            assert_eq!(field_str(&reply, "status"), "ok", "{reply}");
        }
    }
    assert_eq!(total, (THREADS * PER_THREAD) as usize, "lost responses");

    // Delta lineage is visible, and carry-over really moved entries.
    let stats = srv.rpc(r#"{"kind":"stats","id":51}"#);
    assert!(stats.contains("\"generation\":2"), "{stats}");
    assert!(
        stats.contains(
            "\"parent_chain\":[1],\"chain_depth\":1,\"docs_carried\":2,\"docs_rewritten\":1"
        ),
        "{stats}"
    );
    assert!(field_u64(&stats, "kept") >= 3, "nothing carried: {stats}");
    assert!(
        field_u64(&stats, "evicted") >= 1,
        "changed doc kept: {stats}"
    );

    // The dip bar: re-running the warmed query misses only the changed
    // document — exactly the changed fraction, not a cold start.
    let (h1, m1) = result_tier(&stats);
    let post = srv.rpc(q_xml);
    assert_eq!(field_str(&post, "status"), "ok", "{post}");
    // At least the two carried result entries hit (the per-request
    // counter aggregates all tiers, so soak-warmed postings for the
    // changed doc may add to it).
    assert!(
        field_u64(&post, "cache_hits") >= 2,
        "carried entries not hit: {post}"
    );
    assert!(post.contains("regenerated"), "stale content: {post}");
    let stats = srv.rpc(r#"{"kind":"stats","id":52}"#);
    let (h2, m2) = result_tier(&stats);
    assert_eq!(h2 - h1, 2, "hit rate dipped below 2/3: {stats}");
    assert_eq!(m2 - m1, 1, "more than the changed fraction missed: {stats}");

    // Carried hits splice in byte-identically: once the changed doc is
    // re-cached, a full-hit replay matches the mixed computed/carried
    // answer byte for byte.
    let post2 = srv.rpc(q_xml);
    assert!(field_u64(&post2, "cache_hits") >= 3, "{post2}");
    assert_eq!(answers_of(&post2), answers_of(&post));

    let (st, sum) = srv.shutdown_and_wait();
    assert!(st.success(), "server exited {st:?}");
    assert!(sum.contains("0 in flight"), "{sum}");
}

/// `--no-cache` keeps the cache section of `stats` null and serves every
/// request computed fresh — the escape hatch the runbook documents.
#[test]
fn no_cache_flag_disables_caching_entirely() {
    let dir = corpus("nocache");
    let srv = Server::start(&dir, &["--no-cache"]);
    let q = r#"{"kind":"query","id":1,"keywords":["xml","search"]}"#;
    let a = srv.rpc(q);
    let b = srv.rpc(q);
    assert_eq!(a, b, "uncached replies must be byte-identical");
    assert_eq!(field_u64(&a, "cache_hits"), 0, "{a}");
    assert_eq!(field_u64(&b, "cache_hits"), 0, "{b}");
    let stats = srv.rpc(r#"{"kind":"stats","id":2}"#);
    assert!(stats.contains("\"cache\":null"), "{stats}");
    let (st, _) = srv.shutdown_and_wait();
    assert!(st.success());
}

#[test]
fn corrupt_next_generation_never_replaces_the_serving_one() {
    let src = corpus("corrupt-src");
    let out = gen_corpus("corrupt");
    run_index(&src, &out);
    let srv = Server::start(&out, &[]);

    // Commit generation 2, then tear one of its data files.
    run_index(&src, &out);
    let victim = out.join("a.g000002.xfrg");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    let reload = srv.rpc(r#"{"kind":"reload","id":1}"#);
    assert_eq!(field_str(&reload, "status"), "error", "{reload}");
    assert!(reload.contains("reload failed"), "{reload}");
    assert!(reload.contains("generation 2 rejected"), "{reload}");

    // Still serving generation 1, and still answering.
    let stats = srv.rpc(r#"{"kind":"stats","id":2}"#);
    assert!(stats.contains("\"generation\":1"), "{stats}");
    assert!(
        stats.contains("\"reloads\":{\"ok\":0,\"failed\":1}"),
        "{stats}"
    );
    let q = srv.rpc(r#"{"kind":"query","id":3,"keywords":["xml","search"]}"#);
    assert_eq!(field_str(&q, "status"), "ok", "{q}");

    // Repairing the generation makes the same reload succeed.
    std::fs::write(&victim, &bytes).unwrap();
    let reload = srv.rpc(r#"{"kind":"reload","id":4}"#);
    assert_eq!(field_str(&reload, "status"), "ok", "{reload}");
    assert!(reload.contains("serving generation 2"), "{reload}");

    let (st, _) = srv.shutdown_and_wait();
    assert!(st.success());
}

#[test]
fn stats_surfaces_quarantine_detail_and_generation() {
    let dir = corpus("statsq");
    std::fs::write(dir.join("zz_broken.xml"), "<doc><unclosed>").unwrap();
    let srv = Server::start(&dir, &[]);

    let stats = srv.rpc(r#"{"kind":"stats","id":1}"#);
    // Legacy (unversioned) corpora serve as generation 0.
    assert!(stats.contains("\"generation\":0"), "{stats}");
    assert!(
        stats.contains("\"reloads\":{\"ok\":0,\"failed\":0}"),
        "{stats}"
    );
    // Quarantine entries carry the file name AND the reason.
    assert!(stats.contains("\"file\":\"zz_broken.xml\""), "{stats}");
    assert!(stats.contains("\"reason\":\""), "{stats}");

    let (st, sum) = srv.shutdown_and_wait();
    assert!(st.success());
    assert!(sum.contains("1 file(s) quarantined"), "{sum}");
}

#[test]
fn watch_mode_hot_reloads_without_a_reload_request() {
    let src = corpus("watch-src");
    let out = gen_corpus("watch");
    run_index(&src, &out);
    let srv = Server::start(&out, &["--watch-ms", "50"]);
    assert!(srv
        .rpc(r#"{"kind":"health","id":1}"#)
        .contains("\"generation\":1"));

    run_index(&src, &out);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = srv.rpc(r#"{"kind":"stats","id":2}"#);
        if stats.contains("\"generation\":2") {
            assert!(
                stats.contains("\"reloads\":{\"ok\":1,\"failed\":0}"),
                "{stats}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watcher never picked up generation 2: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (st, _) = srv.shutdown_and_wait();
    assert!(st.success());
}

/// Satellite (f): `xfrag request --retries` rides out a shed and
/// succeeds once the queue clears; exhausted retries exit 3.
#[test]
fn request_retries_shed_then_succeeds() {
    let dir = corpus("retry");
    // One worker stalled 600 ms with a single-slot queue: the first
    // attempt below is deterministically shed, later attempts land.
    let srv = Server::start(
        &dir,
        &[
            "--workers",
            "1",
            "--queue-depth",
            "1",
            "--inject",
            "serve:worker@0=delay:600",
        ],
    );
    let addr = srv.addr.clone();
    let occupy = std::thread::spawn({
        let a = addr.clone();
        move || Conn::open(&a).rpc(r#"{"kind":"query","id":1,"keywords":["xml"]}"#)
    });
    std::thread::sleep(Duration::from_millis(150));
    let queued = std::thread::spawn({
        let a = addr.clone();
        move || Conn::open(&a).rpc(r#"{"kind":"query","id":2,"keywords":["xml"]}"#)
    });
    std::thread::sleep(Duration::from_millis(150));

    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args([
            "request",
            &addr,
            r#"{"kind":"query","id":3,"keywords":["xml"]}"#,
            "--retries",
            "6",
            "--backoff-ms",
            "200",
        ])
        .output()
        .expect("run xfrag request");
    let stdout = String::from_utf8_lossy(&o.stdout);
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(
        o.status.success(),
        "request exited {:?}: {stderr}",
        o.status
    );
    assert!(stdout.contains("\"status\":\"ok\""), "{stdout}");
    // It really was shed first: the retry log names the shed reply.
    assert!(stderr.contains("retry 1/6"), "{stderr}");
    assert!(stderr.contains("shed"), "{stderr}");

    occupy.join().unwrap();
    queued.join().unwrap();
    let (st, _) = srv.shutdown_and_wait();
    assert!(st.success());
}

#[test]
fn request_retry_exit_codes_distinguish_retryable_from_permanent() {
    // A port with no listener: connection refused is retryable, so with
    // retries armed the client exhausts them and exits 3.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let a = l.local_addr().unwrap().to_string();
        drop(l);
        a
    };
    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args([
            "request",
            &dead,
            r#"{"kind":"health","id":1}"#,
            "--retries",
            "2",
            "--backoff-ms",
            "10",
        ])
        .output()
        .unwrap();
    assert_eq!(o.status.code(), Some(3), "{o:?}");
    let stderr = String::from_utf8_lossy(&o.stderr);
    assert!(stderr.contains("retries exhausted"), "{stderr}");
    assert!(stderr.contains("3 attempt(s)"), "{stderr}");

    // Without --retries the same failure is permanent: exit 1, exactly
    // the pre-retry behavior scripts already rely on.
    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args(["request", &dead, r#"{"kind":"health","id":1}"#])
        .output()
        .unwrap();
    assert_eq!(o.status.code(), Some(1), "{o:?}");
}

/// Sum one counter across every `"plans"` object in a stats line. The
/// schema repeats the object at shard level (the sum of that shard's
/// replicas) and at replica level, so the grand total over all replicas
/// is half the raw sum.
fn plans_total(stats: &str, name: &str) -> u64 {
    let mut sum = 0;
    let mut rest = stats;
    while let Some(i) = rest.find("\"plans\":{") {
        let obj = &rest[i..];
        sum += field_u64(obj, name);
        rest = &obj["\"plans\":{".len()..];
    }
    sum / 2
}

/// ISSUE 10 satellite: the planner in the full serving topology. `auto`
/// is the wire default and byte-identical (answer payload) to every
/// forced strategy; per-shard `plans` counters account for auto picks,
/// forced requests and plan-cache traffic under the 6×5 concurrent
/// soak; and a hot reload's fresh generation invalidates memoized plans.
#[test]
fn planner_auto_default_under_sharded_soak() {
    let src = corpus("planner-src");
    let out = gen_corpus("planner");
    run_index(&src, &out);
    let srv = Server::start(
        &out,
        &["--shards", "2", "--replicas", "2", "--cache-mb", "16"],
    );

    // Omitting `strategy` means auto, and saying `"auto"` is the same
    // request.
    let auto = srv.rpc(r#"{"kind":"query","id":1,"keywords":["xml","search"]}"#);
    assert_eq!(field_str(&auto, "status"), "ok", "{auto}");
    let explicit =
        srv.rpc(r#"{"kind":"query","id":2,"keywords":["xml","search"],"strategy":"auto"}"#);
    assert_eq!(
        answers_of(&explicit),
        answers_of(&auto),
        "auto not the default"
    );

    // Byte-identity across the strategy matrix: whatever the planner
    // picked per document, the merged answer payload must equal every
    // forced strategy's.
    for s in ["brute", "naive", "reduced", "pushdown"] {
        let forced = srv.rpc(&format!(
            r#"{{"kind":"query","id":3,"keywords":["xml","search"],"strategy":"{s}"}}"#
        ));
        assert_eq!(field_str(&forced, "status"), "ok", "{forced}");
        assert_eq!(
            answers_of(&forced),
            answers_of(&auto),
            "forced {s} diverged from auto"
        );
    }

    // Pick accounting so far: 2 auto requests and 4 forced requests,
    // each evaluating 3 documents. Hedged sub-jobs can only add counts,
    // so the bounds are one-sided.
    let stats = srv.rpc(r#"{"kind":"stats","id":4}"#);
    let auto_picks = |stats: &str| {
        ["brute", "naive", "reduced", "push_down"]
            .iter()
            .map(|k| plans_total(stats, k))
            .sum::<u64>()
    };
    let picks0 = auto_picks(&stats);
    assert!(picks0 >= 6, "expected ≥ 6 auto picks: {stats}");
    assert!(
        plans_total(&stats, "forced") >= 12,
        "expected ≥ 12 forced picks: {stats}"
    );
    assert!(
        plans_total(&stats, "planned") >= 3,
        "every document should have been planned once: {stats}"
    );
    assert_eq!(
        plans_total(&stats, "replans"),
        0,
        "serve requests are budgeted; the guard must never arm: {stats}"
    );

    // The 6×5 soak on the default (auto) path: no responses lost, and
    // repeated queries start hitting the per-replica plan cache.
    const THREADS: u64 = 6;
    const PER_THREAD: u64 = 5;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let addr = srv.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut conn = Conn::open(&addr);
            let mut replies = Vec::new();
            for i in 0..PER_THREAD {
                let id = t * 100 + i;
                let req = format!(
                    r#"{{"kind":"query","id":{id},"keywords":["xml","search"],"top_k":2}}"#
                );
                replies.push((id, conn.rpc(&req)));
            }
            replies
        }));
    }
    let mut total = 0usize;
    for h in handles {
        for (id, reply) in h.join().expect("client thread") {
            total += 1;
            assert!(reply.starts_with(&format!("{{\"id\":{id},")), "{reply}");
            assert_eq!(field_str(&reply, "status"), "ok", "{reply}");
        }
    }
    assert_eq!(total, (THREADS * PER_THREAD) as usize, "lost responses");

    let stats = srv.rpc(r#"{"kind":"stats","id":5}"#);
    assert!(
        auto_picks(&stats) > picks0,
        "soak picks not recorded: {stats}"
    );
    assert!(
        plans_total(&stats, "cached") >= 1,
        "30 identical requests never hit a plan cache: {stats}"
    );
    let inv0 = plans_total(&stats, "invalidations");

    // A hot reload mints a fresh generation; memoized plans must die
    // with the old one — the first post-reload plan on a serving
    // replica records an invalidation, and answers track new content.
    std::fs::write(
        src.join("a.xml"),
        "<doc><title>xml regenerated</title><p>planner search regenerated</p></doc>",
    )
    .unwrap();
    run_index(&src, &out);
    let reload = srv.rpc(r#"{"kind":"reload","id":90}"#);
    assert_eq!(field_str(&reload, "status"), "ok", "{reload}");
    assert!(reload.contains("serving generation 2"), "{reload}");

    let fresh = srv.rpc(r#"{"kind":"query","id":91,"keywords":["xml","search"]}"#);
    assert_eq!(field_str(&fresh, "status"), "ok", "{fresh}");
    assert!(
        fresh.contains("regenerated"),
        "stale content after reload: {fresh}"
    );
    let stats = srv.rpc(r#"{"kind":"stats","id":92}"#);
    assert!(
        plans_total(&stats, "invalidations") > inv0,
        "reload did not invalidate cached plans: {stats}"
    );

    let (st, sum) = srv.shutdown_and_wait();
    assert!(st.success(), "server exited {st:?}");
    assert!(sum.contains("0 in flight"), "{sum}");
}
