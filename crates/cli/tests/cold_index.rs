//! Cold-index integration: `xfrag index` commits checksummed `.xidx`
//! segments alongside the `.xfrg` trees, a cold `msearch` runs off
//! those segments, and the answer bytes are identical across all four
//! strategies *and* identical to the tree-walk fallback when segments
//! are missing or corrupt — degraded never means different.

use std::path::{Path, PathBuf};
use std::process::Command;
use xfrag_doc::manifest::{self, load_generation, GenerationLoad};
use xfrag_doc::SegmentIndex;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfrag-cold-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn msearch(dir: &Path, strategy: &str) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args([
            "msearch",
            dir.to_str().unwrap(),
            "xml",
            "retrieval",
            "--size",
            "4",
            "--ids",
            "--strategy",
            strategy,
        ])
        .output()
        .expect("run xfrag msearch");
    assert!(out.status.success(), "msearch --strategy {strategy} failed");
    (
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

#[test]
fn cold_queries_run_off_checksummed_segments_and_match_tree_walks() {
    let src = scratch("src");
    let out = scratch("corpus");
    std::fs::write(
        src.join("a.xml"),
        "<doc><sec><par>xml retrieval alpha</par><par>retrieval systems</par></sec></doc>",
    )
    .unwrap();
    std::fs::write(
        src.join("b.xml"),
        "<doc><par>xml models</par><par>retrieval of xml data</par></doc>",
    )
    .unwrap();
    std::fs::write(src.join("c.xml"), "<doc><par>unrelated text</par></doc>").unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args(["index", src.to_str().unwrap(), out.to_str().unwrap()])
        .status()
        .expect("run xfrag index");
    assert!(status.success(), "index failed");

    // The committed manifest carries one segment per document, each
    // checksummed, byte-accurate, and decodable.
    let m = match load_generation(&out).unwrap() {
        GenerationLoad::Committed { manifest, .. } => manifest,
        other => panic!("expected a committed generation, got {other:?}"),
    };
    let segments: Vec<_> = m
        .files
        .iter()
        .filter(|e| e.name.ends_with(".xidx"))
        .collect();
    assert_eq!(segments.len(), 3, "{:?}", m.files);
    for e in &segments {
        let bytes = std::fs::read(out.join(&e.name)).unwrap();
        assert_eq!(bytes.len() as u64, e.len, "{}", e.name);
        assert_eq!(manifest::checksum(&bytes), e.checksum, "{}", e.name);
        SegmentIndex::from_bytes(&bytes).unwrap_or_else(|err| panic!("{}: {err}", e.name));
    }

    // Cold queries off the segments: all four strategies byte-identical.
    let (base, base_err) = msearch(&out, "pushdown");
    assert!(base.contains("fragment(s)"), "{base}");
    assert!(
        !base_err.contains("warning"),
        "segment-backed run warned: {base_err}"
    );
    for s in ["brute", "naive", "reduced"] {
        assert_eq!(msearch(&out, s).0, base, "--strategy {s} diverged");
    }

    // A corrupt segment degrades that document to tree walks with a
    // warning — same answer bytes, never a failed or missing document.
    let a_seg = segments
        .iter()
        .find(|e| e.name.starts_with("a."))
        .unwrap()
        .name
        .clone();
    let good = std::fs::read(out.join(&a_seg)).unwrap();
    std::fs::write(out.join(&a_seg), &good[..good.len() / 2]).unwrap();
    let (stdout, stderr) = msearch(&out, "pushdown");
    assert_eq!(stdout, base, "corrupt-segment fallback changed answers");
    assert!(stderr.contains("using tree walks"), "{stderr}");

    // No segments at all (a legacy generation): pure tree walks, still
    // byte-identical across every strategy.
    for e in &segments {
        let _ = std::fs::remove_file(out.join(&e.name));
    }
    for s in ["pushdown", "brute", "naive", "reduced"] {
        let (stdout, stderr) = msearch(&out, s);
        assert_eq!(stdout, base, "legacy fallback diverged under {s}");
        assert!(!stderr.contains("warning"), "{stderr}");
    }

    std::fs::remove_dir_all(&src).unwrap();
    std::fs::remove_dir_all(&out).unwrap();
}

#[test]
fn single_file_search_and_explain_pick_up_the_segment_sibling() {
    let src = scratch("single-src");
    let out = scratch("single-corpus");
    std::fs::write(
        src.join("a.xml"),
        "<doc><sec><par>xml retrieval alpha</par><par>retrieval systems</par></sec></doc>",
    )
    .unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args(["index", src.to_str().unwrap(), out.to_str().unwrap()])
        .status()
        .expect("run xfrag index");
    assert!(status.success());
    let xfrg = out.join("a.g000001.xfrg");
    assert!(xfrg.exists(), "expected generation file");

    // `search` on the committed `.xfrg` runs segment-backed: the stats
    // block reports the persistent tier and the lazily-loaded terms.
    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args([
            "search",
            xfrg.to_str().unwrap(),
            "xml",
            "retrieval",
            "--size",
            "4",
            "--ids",
            "--stats",
        ])
        .output()
        .expect("run xfrag search");
    assert!(o.status.success());
    let stdout = String::from_utf8(o.stdout).unwrap();
    assert!(stdout.contains("index: segment bytes="), "{stdout}");
    assert!(stdout.contains("terms_loaded=2"), "{stdout}");
    assert!(stdout.contains("label_ops="), "{stdout}");

    // `explain` reports the same provenance after running its stages.
    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args(["explain", xfrg.to_str().unwrap(), "xml", "retrieval"])
        .output()
        .expect("run xfrag explain");
    assert!(o.status.success());
    let stdout = String::from_utf8(o.stdout).unwrap();
    assert!(stdout.contains("index: segment bytes="), "{stdout}");

    std::fs::remove_dir_all(&src).unwrap();
    std::fs::remove_dir_all(&out).unwrap();
}

#[test]
fn msearch_stats_surface_the_segment_tier() {
    let src = scratch("stats-src");
    let out = scratch("stats-corpus");
    std::fs::write(
        src.join("a.xml"),
        "<doc><par>xml retrieval here</par></doc>",
    )
    .unwrap();
    let status = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args(["index", src.to_str().unwrap(), out.to_str().unwrap()])
        .status()
        .expect("run xfrag index");
    assert!(status.success());

    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .args([
            "msearch",
            out.to_str().unwrap(),
            "xml",
            "retrieval",
            "--stats",
        ])
        .output()
        .expect("run xfrag msearch --stats");
    assert!(o.status.success());
    let stdout = String::from_utf8(o.stdout).unwrap();
    assert!(stdout.contains("index: segments=1"), "{stdout}");
    assert!(stdout.contains("terms_loaded="), "{stdout}");
    // The query touched its two terms; the vocabulary stayed lazy.
    assert!(
        stdout.contains("terms_loaded=2"),
        "expected exactly the query terms materialized: {stdout}"
    );

    std::fs::remove_dir_all(&src).unwrap();
    std::fs::remove_dir_all(&out).unwrap();
}
