//! End-to-end tests driving the actual `xfrag` binary.

use std::process::Command;

fn xfrag() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xfrag"))
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xfrag-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn demo_reproduces_paper_answer() {
    let out = xfrag().arg("demo").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("4 fragment(s)"), "{stdout}");
    assert!(stdout.contains("⟨n16,n17,n18⟩"), "{stdout}");
}

#[test]
fn search_explain_info_flow() {
    let dir = tmpdir("flow");
    let file = dir.join("doc.xml");
    std::fs::write(
        &file,
        "<article><sec><par>xml retrieval systems</par><par>retrieval models</par></sec></article>",
    )
    .unwrap();

    let out = xfrag()
        .args([
            "search",
            file.to_str().unwrap(),
            "xml",
            "retrieval",
            "--size",
            "3",
            "--ids",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("fragment(s)"), "{stdout}");

    let out = xfrag()
        .args([
            "explain",
            file.to_str().unwrap(),
            "xml",
            "retrieval",
            "--size",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Theorem 2"), "{stdout}");
    assert!(stdout.contains("RF ="), "{stdout}");

    let out = xfrag()
        .args(["info", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("nodes:"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compile_and_msearch() {
    let dir = tmpdir("msearch");
    std::fs::write(dir.join("a.xml"), "<a><p>rust engines</p></a>").unwrap();
    std::fs::write(dir.join("b.xml"), "<b><p>rust</p><p>engines</p></b>").unwrap();
    // Compile a third document to the binary format.
    let cxml = dir.join("c.xml");
    std::fs::write(&cxml, "<c><p>rust engines again</p></c>").unwrap();
    let cbin = dir.join("c.xfrg");
    let out = xfrag()
        .args(["compile", cxml.to_str().unwrap(), cbin.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::remove_file(&cxml).unwrap(); // msearch must read the .xfrg

    let out = xfrag()
        .args([
            "msearch",
            dir.to_str().unwrap(),
            "rust",
            "engines",
            "--size",
            "3",
            "--ids",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("a.xml"), "{stdout}");
    assert!(stdout.contains("c.xfrg"), "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn errors_exit_nonzero() {
    // Unknown subcommand → usage on stderr, exit code 2.
    let out = xfrag().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage:"));

    // Missing file → exit 1.
    let out = xfrag()
        .args(["search", "/nonexistent/x.xml", "kw"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    // Malformed XML → parse error with position.
    let dir = tmpdir("err");
    let bad = dir.join("bad.xml");
    std::fs::write(&bad, "<a><b></a>").unwrap();
    let out = xfrag()
        .args(["search", bad.to_str().unwrap(), "kw"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("XML parse error"));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Run `xfrag` with `args` and assert the full failure contract: the
/// expected exit code, an `error:`-prefixed diagnostic containing
/// `needle` on stderr, and *nothing* on stdout.
fn expect_failure(args: &[&str], code: i32, needle: &str) {
    let out = xfrag().args(args).output().unwrap();
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        out.status.code(),
        Some(code),
        "args {args:?}: stderr {err:?}"
    );
    assert!(err.contains("error:"), "args {args:?}: stderr {err:?}");
    assert!(err.contains(needle), "args {args:?}: stderr {err:?}");
    assert!(
        out.stdout.is_empty(),
        "args {args:?}: diagnostics leaked to stdout: {:?}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// Audit of every CLI failure path: usage errors exit 2 with the usage
/// text, runtime errors exit 1, and diagnostics go to stderr only.
#[test]
fn error_paths_audit() {
    let dir = tmpdir("audit");

    // Usage errors: exit 2, usage text on stderr.
    expect_failure(&["search"], 2, "usage:");
    expect_failure(&["serve"], 2, "serve needs a corpus directory");
    expect_failure(
        &["serve", dir.to_str().unwrap(), "--port", "99999"],
        2,
        "--port",
    );
    expect_failure(&["request"], 2, "request needs a host:port");
    expect_failure(&["request", "h:1"], 2, "request needs a JSON request line");

    // A corrupted .xfrg surfaces the typed store error.
    let bad_bin = dir.join("bad.xfrg");
    std::fs::write(&bad_bin, b"definitely not an XFRG file").unwrap();
    expect_failure(&["search", bad_bin.to_str().unwrap(), "kw"], 1, "corrupted");

    // Directory-level failures.
    expect_failure(
        &["msearch", "/nonexistent-xfrag-dir", "kw"],
        1,
        "cannot access",
    );
    expect_failure(&["serve", "/nonexistent-xfrag-dir"], 1, "cannot access");

    // A corpus where every file is quarantined refuses to serve.
    let quarantine_only = tmpdir("audit-quar");
    std::fs::write(quarantine_only.join("a.xml"), "<a><oops>").unwrap();
    expect_failure(
        &["serve", quarantine_only.to_str().unwrap()],
        1,
        "no loadable documents",
    );

    // A malformed --inject spec fails before binding the port.
    std::fs::write(dir.join("ok.xml"), "<a><p>kw</p></a>").unwrap();
    expect_failure(
        &["serve", dir.to_str().unwrap(), "--inject", "gibberish"],
        1,
        "fault clause",
    );

    // Writing compiled output onto a directory is an I/O error, not a
    // panic, and says which path failed.
    expect_failure(
        &[
            "compile",
            dir.join("ok.xml").to_str().unwrap(),
            dir.to_str().unwrap(),
        ],
        1,
        "cannot access",
    );

    // A one-shot request to a dead address fails cleanly.
    expect_failure(
        &["request", "127.0.0.1:1", r#"{"kind":"health"}"#],
        1,
        "cannot access 127.0.0.1:1",
    );

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&quarantine_only).unwrap();
}

/// A reader hanging up early (`xfrag ... | head`) must not turn into a
/// panic or a failing exit code.
#[test]
fn broken_pipe_is_not_an_error() {
    let dir = tmpdir("pipe");
    let file = dir.join("wide.xml");
    let mut xml = String::from("<doc>");
    for _ in 0..300 {
        xml.push_str("<sec><par>needle</par></sec>");
    }
    xml.push_str("</doc>");
    std::fs::write(&file, xml).unwrap();

    let mut child = xfrag()
        .args([
            "search",
            file.to_str().unwrap(),
            "needle",
            "--size",
            "1",
            "--ids",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    // Close the read end before the child finishes evaluating, so its
    // (single, buffered) output write hits EPIPE.
    drop(child.stdout.take());
    let status = child.wait().unwrap();
    assert!(status.success(), "broken pipe became exit {status:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
