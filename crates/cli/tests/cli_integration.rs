//! End-to-end tests driving the actual `xfrag` binary.

use std::process::Command;

fn xfrag() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xfrag"))
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xfrag-it-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn demo_reproduces_paper_answer() {
    let out = xfrag().arg("demo").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("4 fragment(s)"), "{stdout}");
    assert!(stdout.contains("⟨n16,n17,n18⟩"), "{stdout}");
}

#[test]
fn search_explain_info_flow() {
    let dir = tmpdir("flow");
    let file = dir.join("doc.xml");
    std::fs::write(
        &file,
        "<article><sec><par>xml retrieval systems</par><par>retrieval models</par></sec></article>",
    )
    .unwrap();

    let out = xfrag()
        .args([
            "search",
            file.to_str().unwrap(),
            "xml",
            "retrieval",
            "--size",
            "3",
            "--ids",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("fragment(s)"), "{stdout}");

    let out = xfrag()
        .args([
            "explain",
            file.to_str().unwrap(),
            "xml",
            "retrieval",
            "--size",
            "3",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Theorem 2"), "{stdout}");
    assert!(stdout.contains("RF ="), "{stdout}");

    let out = xfrag()
        .args(["info", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout).unwrap().contains("nodes:"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compile_and_msearch() {
    let dir = tmpdir("msearch");
    std::fs::write(dir.join("a.xml"), "<a><p>rust engines</p></a>").unwrap();
    std::fs::write(dir.join("b.xml"), "<b><p>rust</p><p>engines</p></b>").unwrap();
    // Compile a third document to the binary format.
    let cxml = dir.join("c.xml");
    std::fs::write(&cxml, "<c><p>rust engines again</p></c>").unwrap();
    let cbin = dir.join("c.xfrg");
    let out = xfrag()
        .args(["compile", cxml.to_str().unwrap(), cbin.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::remove_file(&cxml).unwrap(); // msearch must read the .xfrg

    let out = xfrag()
        .args([
            "msearch",
            dir.to_str().unwrap(),
            "rust",
            "engines",
            "--size",
            "3",
            "--ids",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("a.xml"), "{stdout}");
    assert!(stdout.contains("c.xfrg"), "{stdout}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn errors_exit_nonzero() {
    // Unknown subcommand → usage on stderr, exit code 2.
    let out = xfrag().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage:"));

    // Missing file → exit 1.
    let out = xfrag()
        .args(["search", "/nonexistent/x.xml", "kw"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    // Malformed XML → parse error with position.
    let dir = tmpdir("err");
    let bad = dir.join("bad.xml");
    std::fs::write(&bad, "<a><b></a>").unwrap();
    let out = xfrag()
        .args(["search", bad.to_str().unwrap(), "kw"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("XML parse error"));
    std::fs::remove_dir_all(&dir).unwrap();
}
