//! End-to-end tests for replicated serving (ISSUE 9): hedged reads
//! masking a stalled replica byte-identically, per-replica circuit
//! breakers opening and recovering through a half-open probe, the
//! whole-group-down demotion to the PR 8 partial-reply ladder (client
//! exit 4), byte identity across replica counts, and the client-side
//! `--retry-budget-ms` wall-clock bound.
//!
//! Each test boots the real binary with `--port 0`, reads the
//! `listening on <addr>` line, and drives it over raw TCP with
//! newline-delimited JSON, exactly like `shard_scatter.rs`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

fn corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfrag-replica-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("a.xml"),
        "<doc><title>xml search alpha</title><p>ranked xml search over fragments</p></doc>",
    )
    .unwrap();
    std::fs::write(
        dir.join("b.xml"),
        "<doc><title>beta</title><sec><p>xml algebra</p><p>search trees</p></sec></doc>",
    )
    .unwrap();
    std::fs::write(
        dir.join("c.xml"),
        "<doc><p>gamma xml</p><p>keyword search</p><p>gamma filler</p></doc>",
    )
    .unwrap();
    dir
}

/// One NDJSON client connection.
struct Conn {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let s = TcpStream::connect(addr).expect("connect to server");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Conn {
            r: BufReader::new(s.try_clone().unwrap()),
            w: s,
        }
    }

    fn rpc(&mut self, json: &str) -> String {
        self.w.write_all(json.as_bytes()).unwrap();
        self.w.write_all(b"\n").unwrap();
        self.w.flush().unwrap();
        let mut line = String::new();
        self.r.read_line(&mut line).expect("read response line");
        assert!(!line.is_empty(), "server hung up instead of replying");
        line.trim_end().to_string()
    }
}

/// A running `xfrag serve` child. Killed on drop so a failing assertion
/// never leaks a listener into later tests.
struct Server {
    child: Child,
    addr: String,
    out: BufReader<ChildStdout>,
}

impl Server {
    fn start(dir: &Path, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xfrag"))
            .arg("serve")
            .arg(dir)
            .args(["--port", "0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn server");
        let mut out = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        out.read_line(&mut line).expect("read startup line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .to_string();
        Server { child, addr, out }
    }

    fn rpc(&self, json: &str) -> String {
        Conn::open(&self.addr).rpc(json)
    }

    /// Send `shutdown`, wait for exit, return (status, drain summary).
    fn shutdown_and_wait(mut self) -> (ExitStatus, String) {
        let reply = self.rpc(r#"{"kind":"shutdown","id":999}"#);
        assert!(reply.contains(r#""note":"draining""#), "{reply}");
        let status = self.child.wait().expect("wait for server exit");
        let mut rest = String::new();
        self.out.read_to_string(&mut rest).unwrap();
        (status, rest)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

fn field_str<'a>(line: &'a str, name: &str) -> &'a str {
    let pat = format!("\"{name}\":\"");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {line}"))
        + pat.len();
    let end = line[start..].find('"').unwrap() + start;
    &line[start..end]
}

fn field_u64(hay: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let start = hay
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {hay}"))
        + pat.len();
    hay[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// The stats entry for one replica of one shard, as a substring slice.
fn replica_entry(stats: &str, shard: usize, replica: usize) -> &str {
    let shard_pat = format!("{{\"shard\":{shard},");
    let si = stats
        .find(&shard_pat)
        .unwrap_or_else(|| panic!("no shard {shard} in {stats}"));
    let rep_pat = format!("{{\"replica\":{replica},");
    let ri = stats[si..]
        .find(&rep_pat)
        .unwrap_or_else(|| panic!("no replica {replica} under shard {shard} in {stats}"))
        + si;
    let end = stats[ri..]
        .find("}}")
        .map(|e| ri + e)
        .unwrap_or(stats.len());
    &stats[ri..end]
}

/// Run `xfrag request` against `addr`, returning (exit code, stdout, stderr).
fn run_request(addr: &str, json: &str, extra: &[&str]) -> (i32, String, String) {
    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .arg("request")
        .arg(addr)
        .arg(json)
        .args(extra)
        .output()
        .expect("run xfrag request");
    (
        o.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&o.stdout).into_owned(),
        String::from_utf8_lossy(&o.stderr).into_owned(),
    )
}

/// Tentpole acceptance: a hedge masks a stalled replica. The preferred
/// replica's worker sleeps far longer than the hedge delay; the backup
/// replica answers, the reply is `"complete":true` and byte-identical
/// to an unfaulted single-replica server's, and the replica stats
/// record the hedge and its win.
#[test]
fn hedge_masks_a_stalled_replica_byte_identically() {
    let dir = corpus("hedge");
    // Hit 0 of `serve:worker` is the preferred replica's primary
    // sub-job (one group, so nothing else reaches the site first);
    // the backup's sub-job (hit 1) runs clean.
    let srv = Server::start(
        &dir,
        &[
            "--shards",
            "1",
            "--replicas",
            "2",
            "--hedge-ms",
            "30",
            "--inject",
            "serve:worker@0=delay:2000",
        ],
    );
    let reference = Server::start(&dir, &["--shards", "1"]);
    let q = r#"{"kind":"query","id":61,"keywords":["xml","search"]}"#;
    let start = Instant::now();
    let hedged = srv.rpc(q);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(1500),
        "hedge did not mask the stall: {elapsed:?}"
    );
    assert_eq!(field_str(&hedged, "status"), "ok", "{hedged}");
    assert!(
        hedged.contains(r#""complete":true,"shards":null"#),
        "{hedged}"
    );
    assert_eq!(
        hedged,
        reference.rpc(q),
        "replica fault handling leaked into response bytes"
    );
    let stats = srv.rpc(r#"{"kind":"stats","id":62}"#);
    let backup = replica_entry(&stats, 0, 1);
    assert_eq!(field_u64(backup, "hedges"), 1, "{stats}");
    assert_eq!(field_u64(backup, "wins"), 1, "{stats}");
    // The stalled primary took a cancelled loss, not a breaker failure:
    // both replicas stay closed.
    assert_eq!(field_str(replica_entry(&stats, 0, 0), "state"), "closed");
    assert_eq!(field_str(backup, "state"), "closed");
    // Drain waits out the injected sleep still held by the loser.
    let (status, summary) = srv.shutdown_and_wait();
    assert!(status.success());
    assert!(summary.contains("0 in flight"), "{summary}");
    let (status, _) = reference.shutdown_and_wait();
    assert!(status.success());
}

/// Satellite 3: deterministic breaker ladder at the serve level —
/// consecutive injected panics open the replica's breaker (closed →
/// open), an open breaker sheds with an explanatory note instead of
/// dispatching, and after the cooldown a single half-open probe closes
/// it again. (The half-open single-probe and failed-probe-reopens
/// invariants are unit-tested in `xfrag_core::breaker`.)
#[test]
fn breaker_opens_after_consecutive_panics_and_probe_recloses() {
    let dir = corpus("breaker");
    let srv = Server::start(
        &dir,
        &[
            "--shards",
            "1",
            "--breaker-failures",
            "2",
            "--breaker-cooldown-ms",
            "500",
            "--inject",
            "serve:worker@0=panic,serve:worker@1=panic",
        ],
    );
    let q = r#"{"kind":"query","id":71,"keywords":["xml"]}"#;
    // Two panics in a row: with a single replica there is no backup,
    // so each surfaces as an isolated-worker error reply…
    for _ in 0..2 {
        let r = srv.rpc(q);
        assert_eq!(field_str(&r, "status"), "error", "{r}");
        assert!(r.contains("worker panicked (isolated)"), "{r}");
    }
    // …and the second one trips the breaker: the next request is shed
    // at admission without touching a worker.
    let shed = srv.rpc(q);
    assert_eq!(field_str(&shed, "status"), "shed", "{shed}");
    assert!(
        shed.contains("every replica's circuit breaker is open"),
        "{shed}"
    );
    let stats = srv.rpc(r#"{"kind":"stats","id":72}"#);
    let rep = replica_entry(&stats, 0, 0);
    assert_eq!(field_str(rep, "state"), "open", "{stats}");
    assert_eq!(field_u64(rep, "opens"), 1, "{stats}");
    // Past the cooldown the breaker half-opens; the probe runs clean
    // (the fault plan is exhausted) and closes it for good.
    std::thread::sleep(Duration::from_millis(650));
    let probed = srv.rpc(q);
    assert_eq!(field_str(&probed, "status"), "ok", "{probed}");
    assert!(probed.contains(r#""complete":true"#), "{probed}");
    let stats = srv.rpc(r#"{"kind":"stats","id":73}"#);
    let rep = replica_entry(&stats, 0, 0);
    assert_eq!(field_str(rep, "state"), "closed", "{stats}");
    assert_eq!(field_u64(rep, "opens"), 1, "{stats}");
    let (status, summary) = srv.shutdown_and_wait();
    assert!(status.success());
    assert!(summary.contains("2 worker panic(s)"), "{summary}");
}

/// Zero-partial failover, and its limit: with both replicas of the
/// only candidate group stalled, the hedge fires but cannot help, and
/// the reply demotes to the PR 8 partial ladder — survivors kept,
/// `"complete":false`, the group under `timed_out` — with client exit
/// code 4. Redundancy failed, but the failure is still bounded.
#[test]
fn whole_group_down_demotes_to_bounded_partial() {
    let dir = corpus("groupdown");
    // `collection:doc` fires once per candidate document; `alpha`
    // matches only a.xml, so exactly a.xml's owning group reaches the
    // site — first the preferred replica (hit 0), then, after the
    // hedge fires, the backup (hit 1). Both stall past the deadline.
    let srv = Server::start(
        &dir,
        &[
            "--shards",
            "2",
            "--replicas",
            "2",
            "--hedge-ms",
            "25",
            "--inject",
            "collection:doc@0=delay:2500,collection:doc@1=delay:2500",
        ],
    );
    let q = r#"{"kind":"query","id":81,"keywords":["alpha"],"timeout_ms":600}"#;
    let start = Instant::now();
    let (code, out, _) = run_request(&srv.addr, q, &[]);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(2200),
        "gather waited for the wedged group: {elapsed:?}"
    );
    assert_eq!(code, 4, "whole-group loss must exit 4: {out}");
    assert_eq!(field_str(&out, "status"), "degraded", "{out}");
    assert!(out.contains(r#""complete":false"#), "{out}");
    assert!(
        out.contains(r#""shards":{"ok":1,"timed_out":1,"shed":0,"panicked":0,"open":0}"#),
        "{out}"
    );
    // The hedge did fire before the group was given up.
    let stats = srv.rpc(r#"{"kind":"stats","id":82}"#);
    let hedges: u64 = (0..2)
        .map(|g| field_u64(replica_entry(&stats, g, 1), "hedges"))
        .sum();
    assert_eq!(hedges, 1, "{stats}");
    let (status, summary) = srv.shutdown_and_wait();
    assert!(status.success());
    assert!(summary.contains("0 in flight"), "{summary}");
}

/// Byte identity across replica counts with no faults: every sub-job
/// lands on each group's replica 0, no hedge fires, and replies —
/// cold and cache-replayed — are byte-identical to a single-replica
/// server's, for the same reason the PR 8 shard merge is.
#[test]
fn replicated_serving_matches_single_replica_bytes() {
    let dir = corpus("rbytes");
    let one = Server::start(&dir, &["--shards", "2"]);
    let three = Server::start(
        &dir,
        &["--shards", "2", "--replicas", "3", "--hedge-ms", "2000"],
    );
    let queries = [
        r#"{"kind":"query","id":1,"keywords":["xml","search"]}"#,
        r#"{"kind":"query","id":2,"keywords":["xml","search"],"top_k":2}"#,
        r#"{"kind":"query","id":3,"keywords":["alpha"],"size":6}"#,
        r#"{"kind":"query","id":4,"keywords":["xml"],"strategy":"reduced"}"#,
    ];
    let mut c1 = Conn::open(&one.addr);
    let mut c3 = Conn::open(&three.addr);
    for q in &queries {
        let r1 = c1.rpc(q);
        let r3 = c3.rpc(q);
        assert_eq!(r1, r3, "replica count leaked into response bytes for {q}");
        assert!(r1.contains(r#""complete":true,"shards":null"#), "{r1}");
    }
    // Replay pass: replica 0's arena answers; still indistinguishable.
    for q in &queries {
        assert_eq!(c1.rpc(q), c3.rpc(q), "cache replay differs for {q}");
    }
    // All traffic stayed on the preferred replicas: no hedges anywhere,
    // and the backups never evaluated a thing.
    let stats = c3.rpc(r#"{"kind":"stats","id":9}"#);
    for g in 0..2 {
        for r in 1..3 {
            let rep = replica_entry(&stats, g, r);
            assert_eq!(field_u64(rep, "hedges"), 0, "{stats}");
            assert_eq!(field_u64(rep, "evaluations"), 0, "{stats}");
        }
    }
    drop(c1);
    drop(c3);
    let (s1, _) = one.shutdown_and_wait();
    let (s3, _) = three.shutdown_and_wait();
    assert!(s1.success() && s3.success());
}

/// Satellite 2: `--retry-budget-ms` is a wall-clock deadline shared
/// across attempts. Against a dead port with a huge `--retries`, the
/// client stops within the budget, exits 3 (retryable exhaustion, not
/// permanent failure), and says which budget ran out.
#[test]
fn client_retry_budget_bounds_wall_clock() {
    // Bind-then-drop yields a port that refuses connections (retryable).
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let start = Instant::now();
    let (code, _, err) = run_request(
        &dead,
        r#"{"kind":"health"}"#,
        &[
            "--retries",
            "1000",
            "--backoff-ms",
            "40",
            "--retry-budget-ms",
            "400",
        ],
    );
    let elapsed = start.elapsed();
    assert_eq!(code, 3, "budget exhaustion must exit 3: {err}");
    assert!(err.contains("retry budget of 400 ms exhausted"), "{err}");
    assert!(
        elapsed < Duration::from_secs(5),
        "budget failed to bound the retry loop: {elapsed:?}"
    );
}
