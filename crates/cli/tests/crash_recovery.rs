//! Crash-point harness (ISSUE 4 tentpole): run the real `xfrag index`
//! binary with `abort` armed at every write-path fault site — the
//! kill -9 model, no destructors, no unwinding — and assert that the
//! previously-committed generation survives byte-identical and loadable.
//!
//! Hit arithmetic: the source corpus has three documents, and each one
//! writes a `.xfrg` tree plus a `.xidx` index segment, so one index run
//! traverses each of `store:write` / `store:fsync` / `store:rename`
//! seven times — hits 0..=5 for the data files, hit 6 for the manifest
//! (the commit point, written last).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use xfrag_doc::manifest::{load_generation, GenerationLoad};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfrag-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn source_corpus(tag: &str) -> PathBuf {
    let src = scratch(tag);
    std::fs::write(src.join("a.xml"), "<doc><p>xml search alpha</p></doc>").unwrap();
    std::fs::write(src.join("b.xml"), "<doc><p>xml algebra beta</p></doc>").unwrap();
    std::fs::write(src.join("c.xml"), "<doc><p>keyword gamma</p></doc>").unwrap();
    src
}

fn run_index(src: &Path, out: &Path, inject: Option<&str>) -> std::process::ExitStatus {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xfrag"));
    cmd.arg("index").arg(src).arg(out);
    if let Some(spec) = inject {
        cmd.args(["--inject", spec]);
    }
    let o = cmd.output().expect("run xfrag index");
    o.status
}

/// Every file in `dir` with its exact bytes.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect()
}

/// Assert the corpus still loads generation 1 and that every file the
/// pre-crash snapshot contained is still byte-identical.
fn assert_generation_1_intact(out: &Path, before: &BTreeMap<String, Vec<u8>>, context: &str) {
    let after = snapshot(out);
    for (name, bytes) in before {
        assert_eq!(
            after.get(name),
            Some(bytes),
            "{context}: {name} changed or disappeared"
        );
    }
    match load_generation(out).unwrap() {
        GenerationLoad::Committed { manifest, .. } => {
            assert_eq!(manifest.generation, 1, "{context}");
        }
        other => panic!("{context}: expected committed generation 1, got {other:?}"),
    }
}

#[test]
fn kill9_at_every_injected_crash_point_preserves_previous_generation() {
    let src = source_corpus("k9-src");
    let out = scratch("k9-out");
    assert!(run_index(&src, &out, None).success(), "seed index failed");
    let before = snapshot(&out);

    for site in ["store:write", "store:fsync", "store:rename"] {
        // Hit 0: crash on the first data file. Hit 6: crash on the
        // manifest write — every data file of the doomed generation is
        // already on disk, and the commit still never happens.
        for hit in [0, 6] {
            let spec = format!("{site}@{hit}=abort");
            let status = run_index(&src, &out, Some(&spec));
            assert!(!status.success(), "{spec}: child should have died");
            // SIGABRT, not a clean error exit: this models kill -9 (no
            // destructors ran), which is the point of the harness.
            assert_eq!(status.code(), None, "{spec}: exited {status:?}");
            assert_generation_1_intact(&out, &before, &spec);
            // Clear crash remnants so each case starts from the same
            // directory state (a real operator's cleanup, or the next
            // successful commit's prune, does the same).
            for name in snapshot(&out).keys() {
                if !before.contains_key(name) {
                    std::fs::remove_file(out.join(name)).unwrap();
                }
            }
        }
    }

    // Torn-write crash: a prefix of the payload reaches disk. The
    // remnant is invisible to the loader and the old generation stands.
    let spec = "store:write@1=torn:5";
    assert!(!run_index(&src, &out, Some(spec)).success());
    assert_generation_1_intact(&out, &before, spec);

    // After all those crashes, a clean index still commits the next
    // generation on top (remnants never block recovery).
    assert!(
        run_index(&src, &out, None).success(),
        "recovery index failed"
    );
    match load_generation(&out).unwrap() {
        GenerationLoad::Committed { manifest, .. } => {
            assert!(manifest.generation >= 2, "{}", manifest.generation)
        }
        other => panic!("{other:?}"),
    }
}

fn run_delta(src: &Path, out: &Path, inject: Option<&str>) -> std::process::ExitStatus {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xfrag"));
    cmd.arg("index").arg("--delta").arg(src).arg(out);
    if let Some(spec) = inject {
        cmd.args(["--inject", spec]);
    }
    cmd.output().expect("run xfrag index --delta").status
}

fn run_compact(out: &Path, inject: Option<&str>) -> std::process::ExitStatus {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xfrag"));
    cmd.arg("compact").arg(out);
    if let Some(spec) = inject {
        cmd.args(["--inject", spec]);
    }
    cmd.output().expect("run xfrag compact").status
}

/// Remove any file the pre-crash snapshot did not contain.
fn clear_remnants(out: &Path, before: &BTreeMap<String, Vec<u8>>) {
    for name in snapshot(out).keys() {
        if !before.contains_key(name) {
            std::fs::remove_file(out.join(name)).unwrap();
        }
    }
}

#[test]
fn kill9_during_delta_commit_recovers_to_parent_never_a_hybrid() {
    // A 1-document delta writes the rewritten tree, its index segment,
    // then one manifest, so each write-path site is traversed three
    // times: hits 0 and 1 are the rewritten document's data files,
    // hit 2 the delta manifest (commit point).
    let src = source_corpus("delta-k9-src");
    let out = scratch("delta-k9-out");
    assert!(run_index(&src, &out, None).success(), "seed index failed");
    std::fs::write(src.join("a.xml"), "<doc><p>xml search alpha two</p></doc>").unwrap();
    let before = snapshot(&out);

    for site in ["store:write", "store:fsync", "store:rename"] {
        for hit in [0, 1, 2] {
            let spec = format!("{site}@{hit}=abort");
            let status = run_delta(&src, &out, Some(&spec));
            assert!(!status.success(), "{spec}: child should have died");
            assert_eq!(status.code(), None, "{spec}: exited {status:?}");
            // The delta never committed, so recovery lands on the
            // parent — byte-identical, never a carried/rewritten mix.
            assert_generation_1_intact(&out, &before, &spec);
            clear_remnants(&out, &before);
        }
    }

    // Torn delta data file: remnant is invisible, parent stands.
    let spec = "store:write@0=torn:5";
    assert!(!run_delta(&src, &out, Some(spec)).success());
    assert_generation_1_intact(&out, &before, spec);

    // A clean delta on the crash-scarred directory commits generation 2
    // referencing the parent's unchanged files.
    assert!(
        run_delta(&src, &out, None).success(),
        "recovery delta failed"
    );
    match load_generation(&out).unwrap() {
        GenerationLoad::Committed { manifest, .. } => {
            assert_eq!(manifest.generation, 2);
            assert_eq!(manifest.parent, Some(1));
            // Exactly one rewritten document (tree + index segment);
            // b and c carried from gen 1.
            let gen2: Vec<&str> = manifest
                .files
                .iter()
                .filter(|e| e.name.contains(".g000002."))
                .map(|e| e.name.as_str())
                .collect();
            assert_eq!(gen2, ["a.g000002.xfrg", "a.g000002.xidx"]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn kill9_during_compaction_keeps_serving_the_delta_chain() {
    // Seed: gen 1 full, gen 2 delta rewriting `a`. Compacting the chain
    // writes all three documents and their index segments under gen-3
    // names (hits 0..=5) and the full manifest last (hit 6).
    let src = source_corpus("compact-k9-src");
    let out = scratch("compact-k9-out");
    assert!(run_index(&src, &out, None).success(), "seed index failed");
    std::fs::write(src.join("a.xml"), "<doc><p>xml search alpha two</p></doc>").unwrap();
    assert!(run_delta(&src, &out, None).success(), "seed delta failed");
    let before = snapshot(&out);
    let assert_delta_intact = |context: &str| {
        let after = snapshot(&out);
        for (name, bytes) in &before {
            assert_eq!(
                after.get(name),
                Some(bytes),
                "{context}: {name} changed or disappeared"
            );
        }
        match load_generation(&out).unwrap() {
            GenerationLoad::Committed { manifest, .. } => {
                assert_eq!(manifest.generation, 2, "{context}");
                assert_eq!(manifest.parent, Some(1), "{context}");
            }
            other => panic!("{context}: expected delta generation 2, got {other:?}"),
        }
    };

    for site in ["store:write", "store:fsync", "store:rename"] {
        for hit in [0, 6] {
            let spec = format!("{site}@{hit}=abort");
            let status = run_compact(&out, Some(&spec));
            assert!(!status.success(), "{spec}: child should have died");
            assert_eq!(status.code(), None, "{spec}: exited {status:?}");
            assert_delta_intact(&spec);
            clear_remnants(&out, &before);
        }
    }

    // A clean compaction materializes the chain into a full gen 3 whose
    // bytes match what the delta chain served.
    assert!(run_compact(&out, None).success(), "recovery compact failed");
    match load_generation(&out).unwrap() {
        GenerationLoad::Committed { manifest, .. } => {
            assert_eq!(manifest.generation, 3);
            assert_eq!(manifest.parent, None);
            for e in &manifest.files {
                assert!(e.name.contains(".g000003."), "{}", e.name);
            }
            let read = |n: &str| std::fs::read(out.join(n)).unwrap();
            assert_eq!(read("a.g000003.xfrg"), before["a.g000002.xfrg"]);
            assert_eq!(read("b.g000003.xfrg"), before["b.g000001.xfrg"]);
            assert_eq!(read("c.g000003.xfrg"), before["c.g000001.xfrg"]);
            // Index segments ride along byte-identical, too.
            assert_eq!(read("a.g000003.xidx"), before["a.g000002.xidx"]);
            assert_eq!(read("b.g000003.xidx"), before["b.g000001.xidx"]);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn error_faults_fail_cleanly_and_preserve_previous_generation() {
    // Same sweep with clean-failure actions: the process survives to
    // report the error (exit 1), and the guarantees are identical.
    let src = source_corpus("err-src");
    let out = scratch("err-out");
    assert!(run_index(&src, &out, None).success());
    let before = snapshot(&out);

    for spec in [
        "store:write@0=read-error",
        "store:fsync@1=cancel",
        "store:rename@2=read-error",
        "store:rename@3=cancel",
    ] {
        let status = run_index(&src, &out, Some(spec));
        assert_eq!(status.code(), Some(1), "{spec}: {status:?}");
        assert_generation_1_intact(&out, &before, spec);
        for name in snapshot(&out).keys() {
            if !before.contains_key(name) {
                std::fs::remove_file(out.join(name)).unwrap();
            }
        }
    }
}
