//! End-to-end tests for sharded scatter-gather serving (ISSUE 8):
//! N-shard vs single-shard byte identity, partial-result degradation
//! when a shard stalls, singleflight stampede coalescing, faulted-
//! leader wakeups, shard-isolated worker panics, and the `xfrag
//! request` exit-code-4 contract for partial replies.
//!
//! Each test boots the real binary with `--port 0`, reads the
//! `listening on <addr>` line, and drives it over raw TCP with
//! newline-delimited JSON, exactly like `serve_integration.rs`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, ExitStatus, Stdio};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn corpus(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xfrag-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("a.xml"),
        "<doc><title>xml search alpha</title><p>ranked xml search over fragments</p></doc>",
    )
    .unwrap();
    std::fs::write(
        dir.join("b.xml"),
        "<doc><title>beta</title><sec><p>xml algebra</p><p>search trees</p></sec></doc>",
    )
    .unwrap();
    std::fs::write(
        dir.join("c.xml"),
        "<doc><p>gamma xml</p><p>keyword search</p><p>gamma filler</p></doc>",
    )
    .unwrap();
    dir
}

/// One NDJSON client connection.
struct Conn {
    w: TcpStream,
    r: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Conn {
        let s = TcpStream::connect(addr).expect("connect to server");
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Conn {
            r: BufReader::new(s.try_clone().unwrap()),
            w: s,
        }
    }

    fn rpc(&mut self, json: &str) -> String {
        self.w.write_all(json.as_bytes()).unwrap();
        self.w.write_all(b"\n").unwrap();
        self.w.flush().unwrap();
        let mut line = String::new();
        self.r.read_line(&mut line).expect("read response line");
        assert!(!line.is_empty(), "server hung up instead of replying");
        line.trim_end().to_string()
    }
}

/// A running `xfrag serve` child. Killed on drop so a failing assertion
/// never leaks a listener into later tests.
struct Server {
    child: Child,
    addr: String,
    out: BufReader<ChildStdout>,
}

impl Server {
    fn start(dir: &Path, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_xfrag"))
            .arg("serve")
            .arg(dir)
            .args(["--port", "0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn server");
        let mut out = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        out.read_line(&mut line).expect("read startup line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .to_string();
        Server { child, addr, out }
    }

    fn connect(&self) -> Conn {
        Conn::open(&self.addr)
    }

    fn rpc(&self, json: &str) -> String {
        self.connect().rpc(json)
    }

    /// Send `shutdown`, wait for exit, return (status, drain summary).
    fn shutdown_and_wait(mut self) -> (ExitStatus, String) {
        let reply = self.rpc(r#"{"kind":"shutdown","id":999}"#);
        assert!(reply.contains(r#""note":"draining""#), "{reply}");
        let status = self.child.wait().expect("wait for server exit");
        let mut rest = String::new();
        self.out.read_to_string(&mut rest).unwrap();
        (status, rest)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

fn field_str<'a>(line: &'a str, name: &str) -> &'a str {
    let pat = format!("\"{name}\":\"");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {line}"))
        + pat.len();
    let end = line[start..].find('"').unwrap() + start;
    &line[start..end]
}

/// The `"answers":[...]` slice of a reply (everything before the
/// per-request stats, which may legitimately differ between a cache
/// leader and its followers).
fn answers_of(reply: &str) -> &str {
    let start = reply.find("\"answers\":").expect("answers field");
    let end = reply.find(",\"stats\":").expect("stats field");
    &reply[start..end]
}

fn field_u64(hay: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let start = hay
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in {hay}"))
        + pat.len();
    hay[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Tentpole acceptance: with no faults, an N-shard server's replies
/// are byte-identical to a single-shard server's, across every
/// strategy — the merge (concat, sort by doc id, rank once) is
/// observationally equivalent to never having sharded at all.
#[test]
fn sharded_serving_matches_single_shard_bytes() {
    let dir = corpus("bytes");
    let one = Server::start(&dir, &["--shards", "1"]);
    let four = Server::start(&dir, &["--shards", "4"]);
    let mut queries = vec![
        r#"{"kind":"query","id":1,"keywords":["xml","search"]}"#.to_string(),
        r#"{"kind":"query","id":2,"keywords":["xml","search"],"top_k":2}"#.to_string(),
        r#"{"kind":"query","id":3,"keywords":["alpha"],"size":6}"#.to_string(),
    ];
    for strat in ["brute", "naive", "reduced", "pushdown"] {
        queries.push(format!(
            r#"{{"kind":"query","id":4,"keywords":["xml"],"strategy":"{strat}"}}"#
        ));
    }
    let mut c1 = one.connect();
    let mut c4 = four.connect();
    for q in &queries {
        let r1 = c1.rpc(q);
        let r4 = c4.rpc(q);
        assert_eq!(r1, r4, "shard-count leaked into response bytes for {q}");
        assert!(r1.contains(r#""complete":true,"shards":null"#), "{r1}");
    }
    // Second pass: both sides now answer from their caches (one arena
    // vs four); replay must be just as indistinguishable as cold.
    for q in &queries {
        assert_eq!(c1.rpc(q), c4.rpc(q), "cache replay differs for {q}");
    }
    drop(c1);
    drop(c4);
    let (s1, _) = one.shutdown_and_wait();
    let (s4, _) = four.shutdown_and_wait();
    assert!(s1.success() && s4.success());
}

/// A stalled shard is dropped from the merge within the deadline plus
/// gather grace: the reply keeps the survivors, flips
/// `"complete":false`, and accounts for the missing shard — and once
/// the stall clears, the same query completes again. The injected
/// delay fires at `collection:doc`, which only the stalled document's
/// owning shard reaches (`alpha` has one candidate), so exactly one
/// shard wedges.
#[test]
fn stalled_shard_yields_partial_result_within_deadline() {
    let dir = corpus("stall");
    let srv = Server::start(
        &dir,
        &["--shards", "4", "--inject", "collection:doc@0=delay:2500"],
    );
    let q = r#"{"kind":"query","id":21,"keywords":["alpha"],"timeout_ms":600}"#;
    let start = std::time::Instant::now();
    let partial = srv.rpc(q);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(2000),
        "gather waited for the wedged shard: {elapsed:?}"
    );
    assert_eq!(field_str(&partial, "status"), "degraded", "{partial}");
    assert!(partial.contains(r#""complete":false"#), "{partial}");
    assert!(
        partial.contains(r#""shards":{"ok":3,"timed_out":1,"shed":0,"panicked":0,"open":0}"#),
        "{partial}"
    );
    assert!(
        partial.contains("1 of 4 shard(s) missing from merge"),
        "{partial}"
    );
    // `alpha` only matches the stalled shard's document, so the
    // surviving merge is sound but empty.
    assert!(partial.contains(r#""answers":[]"#), "{partial}");
    // Let the injected stall drain out of the wedged worker, then ask
    // again: the fault is exhausted, so the answer comes back whole.
    std::thread::sleep(Duration::from_millis(2500));
    let healed = srv.rpc(q);
    assert_eq!(field_str(&healed, "status"), "ok", "{healed}");
    assert!(
        healed.contains(r#""complete":true,"shards":null"#),
        "{healed}"
    );
    assert!(healed.contains(r#""doc":"a.xml""#), "{healed}");
    let (status, summary) = srv.shutdown_and_wait();
    assert!(status.success());
    assert!(summary.contains("0 in flight"), "{summary}");
}

/// Satellite 3a: a stampede of identical cold queries coalesces onto
/// one singleflight leader — exactly one real evaluation, every reply
/// byte-identical, and the shard's counters record the coalescing.
#[test]
fn stampede_of_identical_cold_queries_coalesces_to_one_evaluation() {
    let dir = corpus("stampede");
    // The injected `query:eval` delay holds the leader's evaluation
    // open long enough for the whole stampede to pile onto the flight.
    let srv = Arc::new(Server::start(
        &dir,
        &[
            "--shards",
            "1",
            "--workers",
            "4",
            "--queue-depth",
            "128",
            "--inject",
            "query:eval@0=delay:300",
        ],
    ));
    const STAMPEDE: usize = 64;
    let barrier = Arc::new(Barrier::new(STAMPEDE));
    let mut joins = Vec::new();
    for _ in 0..STAMPEDE {
        let srv = Arc::clone(&srv);
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let mut conn = srv.connect();
            barrier.wait();
            conn.rpc(r#"{"kind":"query","id":77,"keywords":["alpha"]}"#)
        }));
    }
    let replies: Vec<String> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    // Every client observes the byte-identical cached answer; the only
    // permitted difference between replies is the per-request cache
    // accounting that distinguishes the leader from its followers.
    for r in &replies {
        assert_eq!(field_str(r, "status"), "ok", "{r}");
        assert_eq!(
            answers_of(r),
            answers_of(&replies[0]),
            "stampede answers must be byte-identical"
        );
    }
    // Exactly one reply did the work; the rest replayed the cached
    // result (a pure replay reports `cache_misses: 0`) and are fully
    // byte-identical to each other, accounting included.
    let (leaders, replays): (Vec<&String>, Vec<&String>) = replies
        .iter()
        .partition(|r| field_u64(r, "cache_misses") > 0);
    assert_eq!(leaders.len(), 1, "expected one evaluation: {leaders:?}");
    for r in &replays {
        assert_eq!(*r, replays[0], "replayed replies must be byte-identical");
    }
    let stats = srv.rpc(r#"{"kind":"stats","id":88}"#);
    let shard_block = &stats[stats.find("\"shards\":[").expect("shards block")..];
    assert_eq!(field_u64(shard_block, "evaluations"), 1, "{stats}");
    assert!(
        field_u64(shard_block, "coalesced") >= 1,
        "no requests coalesced: {stats}"
    );
    let srv = Arc::into_inner(srv).unwrap();
    let (status, summary) = srv.shutdown_and_wait();
    assert!(status.success());
    assert!(summary.contains("0 in flight"), "{summary}");
}

/// Satellite 3b: a leader whose evaluation is wrecked by an injected
/// `query:eval` panic must not strand its followers. The leader's
/// degraded result is uncacheable, so woken followers miss and
/// re-evaluate — one degraded reply, the rest whole, nobody hangs.
#[test]
fn faulted_leader_wakes_followers_to_reevaluate() {
    let dir = corpus("leader");
    let srv = Arc::new(Server::start(
        &dir,
        &[
            "--shards",
            "1",
            "--workers",
            "4",
            "--inject",
            "query:eval@0=panic",
        ],
    ));
    const CLIENTS: usize = 8;
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut joins = Vec::new();
    for _ in 0..CLIENTS {
        let srv = Arc::clone(&srv);
        let barrier = Arc::clone(&barrier);
        joins.push(std::thread::spawn(move || {
            let mut conn = srv.connect();
            barrier.wait();
            conn.rpc(r#"{"kind":"query","id":31,"keywords":["alpha"]}"#)
        }));
    }
    let replies: Vec<String> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let degraded: Vec<&String> = replies
        .iter()
        .filter(|r| field_str(r, "status") == "degraded")
        .collect();
    assert_eq!(degraded.len(), 1, "{replies:?}");
    assert!(
        degraded[0].contains("a.xml failed: xfrag-injected-fault"),
        "{}",
        degraded[0]
    );
    for r in &replies {
        if field_str(r, "status") != "degraded" {
            assert_eq!(field_str(r, "status"), "ok", "{r}");
            assert!(r.contains(r#""doc":"a.xml""#), "{r}");
        }
    }
    let srv = Arc::into_inner(srv).unwrap();
    let (status, summary) = srv.shutdown_and_wait();
    assert!(status.success());
    assert!(summary.contains("0 in flight"), "{summary}");
}

/// A worker panic is a shard-local event: the sibling shard's answers
/// still merge, the reply reports the lost shard, the panicking pool
/// respawns to full strength, and the drain is clean.
#[test]
fn worker_panic_is_isolated_to_its_shard_and_pool_respawns() {
    let dir = corpus("panic");
    let srv = Server::start(
        &dir,
        &[
            "--shards",
            "2",
            "--workers",
            "2",
            "--inject",
            "serve:worker@0=panic",
        ],
    );
    let partial = srv.rpc(r#"{"kind":"query","id":41,"keywords":["xml"]}"#);
    assert_eq!(field_str(&partial, "status"), "degraded", "{partial}");
    assert!(partial.contains(r#""complete":false"#), "{partial}");
    assert!(
        partial.contains(r#""shards":{"ok":1,"timed_out":0,"shed":0,"panicked":1,"open":0}"#),
        "{partial}"
    );
    assert!(
        partial.contains("1 of 2 shard(s) missing from merge"),
        "{partial}"
    );
    // The replacement worker joined the panicking shard's pool: full
    // strength (2 shards x 2 workers), nothing queued or in flight.
    // Polled briefly: the reply races ahead of the dying worker's last
    // bookkeeping (respawn-before-exit briefly overcounts the pool).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let health = loop {
        let h = srv.rpc(r#"{"kind":"health","id":42}"#);
        if h.contains(r#""workers":4,"queued":0,"in_flight":0"#) {
            break h;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pool never settled: {h}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(health.contains(r#""docs":3"#), "{health}");
    let stats = srv.rpc(r#"{"kind":"stats","id":43}"#);
    assert_eq!(field_u64(&stats, "worker_panics"), 1, "{stats}");
    let shard_block = &stats[stats.find("\"shards\":[").expect("shards block")..];
    let respawns: u64 = shard_block
        .match_indices("\"respawns\":")
        .map(|(i, pat)| field_u64(&shard_block[i..i + pat.len() + 24], "respawns"))
        .sum();
    // The one respawn appears twice in the shards block: once in the
    // shard's aggregate counters and once in its replica breakdown.
    assert_eq!(respawns, 2, "{stats}");
    // With the fault exhausted the same query merges whole again.
    let healed = srv.rpc(r#"{"kind":"query","id":44,"keywords":["xml"]}"#);
    assert!(
        healed.contains(r#""complete":true,"shards":null"#),
        "{healed}"
    );
    let (status, summary) = srv.shutdown_and_wait();
    assert!(status.success());
    assert!(summary.contains("1 worker panic(s)"), "{summary}");
    assert!(summary.contains("0 in flight"), "{summary}");
}

/// Run `xfrag request` against `addr`, returning (exit code, stdout).
fn run_request(addr: &str, json: &str, extra: &[&str]) -> (i32, String) {
    let o = Command::new(env!("CARGO_BIN_EXE_xfrag"))
        .arg("request")
        .arg(addr)
        .arg(json)
        .args(extra)
        .output()
        .expect("run xfrag request");
    (
        o.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&o.stdout).into_owned(),
    )
}

/// Satellite 1: the `xfrag request` client surfaces a partial reply as
/// exit code 4 (still printing the line), does *not* burn retries on
/// it by default, and retries it to completion under `--retry-partial`.
#[test]
fn request_client_reports_partials_with_exit_code_4() {
    let dir = corpus("exit4");
    // Two armed panics: the first request's scatter consumes hits 0-1
    // (one panic -> partial), the `--retry-partial` request's first
    // attempt consumes hits 2-3 (one panic -> partial) and its retry
    // consumes hits 4-5 (clean -> complete).
    let srv = Server::start(
        &dir,
        &[
            "--shards",
            "2",
            "--inject",
            "serve:worker@0=panic,serve:worker@2=panic",
        ],
    );
    let q = r#"{"kind":"query","id":51,"keywords":["xml"]}"#;
    // Retries armed but no --retry-partial: the partial reply must
    // come back immediately as exit 4 — retrying it would have found
    // hit 2's panic and then a clean pass (exit 0), so exit 4 also
    // proves no retry was attempted.
    let (code, out) = run_request(&srv.addr, q, &["--retries", "2", "--backoff-ms", "10"]);
    assert_eq!(code, 4, "partial reply must exit 4: {out}");
    assert!(out.contains(r#""complete":false"#), "{out}");
    assert!(out.contains(r#""status":"degraded""#), "{out}");
    // Opting in: the first attempt is partial (hit 2), the retry is
    // clean and complete (hits 4-5), so the client exits 0.
    let (code, out) = run_request(
        &srv.addr,
        q,
        &["--retries", "2", "--backoff-ms", "10", "--retry-partial"],
    );
    assert_eq!(code, 0, "retried-to-complete reply must exit 0: {out}");
    assert!(out.contains(r#""complete":true,"shards":null"#), "{out}");
    // A complete reply exits 0 without any retry machinery.
    let (code, out) = run_request(&srv.addr, q, &[]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains(r#""complete":true"#), "{out}");
    let (status, _) = srv.shutdown_and_wait();
    assert!(status.success());
}
