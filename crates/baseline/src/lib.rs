#![warn(missing_docs)]

//! # xfrag-baseline — the competing query semantics
//!
//! The paper's central effectiveness claim is comparative: "the smallest
//! subtree containing all the keywords … is not guaranteed to be effective
//! … against general document-centric XML documents" (§1), citing the
//! SLCA line of work (Xu & Papakonstantinou) and XRank's ELCA semantics.
//! To measure that claim (experiment P4 in DESIGN.md) we implement the
//! baselines faithfully:
//!
//! * [`slca`] — *Smallest* LCAs: nodes that are an LCA of one node per
//!   keyword and have no descendant with the same property;
//! * [`elca`] — *Exclusive* LCAs (XRank): nodes that are an LCA of a
//!   witness tuple not already consumed by a descendant ELCA;
//! * [`smallest_subtree`] — the single smallest subtree containing all
//!   keywords (the strawman of the paper's introduction);
//! * [`answers_as_fragments`] — adapters turning baseline results into
//!   [`xfrag_core::Fragment`]s so effectiveness comparisons are
//!   apples-to-apples.

pub mod elca;
pub mod slca;
pub mod subtree;

pub use elca::elca;
pub use slca::slca;
pub use subtree::{smallest_subtree, subtree_answers_as_fragments};

use xfrag_core::Fragment;
use xfrag_doc::{Document, NodeId};

/// Turn a list of answer *roots* into whole-subtree fragments (the way
/// SLCA/ELCA systems present results: the subtree rooted at the LCA).
pub fn answers_as_fragments(doc: &Document, roots: &[NodeId]) -> Vec<Fragment> {
    roots.iter().map(|&r| Fragment::subtree(doc, r)).collect()
}
