//! Smallest Lowest Common Ancestor (SLCA) keyword semantics
//! (Xu & Papakonstantinou, SIGMOD 2005 — the paper's reference \[20\]).
//!
//! An SLCA of keyword sets `S1 … Sm` is a node whose subtree contains at
//! least one occurrence of every keyword while no *descendant*'s subtree
//! does. We compute it with one bottom-up mask pass: O(N·m/64 + Σ|Si|).

use xfrag_doc::{Document, InvertedIndex, NodeId};

/// Per-node keyword containment masks for up to 64 keywords.
pub(crate) fn subtree_masks(
    doc: &Document,
    index: &InvertedIndex,
    terms: &[String],
) -> (Vec<u64>, Vec<u64>) {
    assert!(
        terms.len() <= 64,
        "mask algorithms support at most 64 terms"
    );
    let n = doc.len();
    let mut own = vec![0u64; n];
    for (bit, term) in terms.iter().enumerate() {
        for &node in index.lookup(term) {
            own[node.index()] |= 1 << bit;
        }
    }
    // Reverse pre-order: children precede parents when walking ids
    // backwards, so one pass accumulates subtree masks.
    let mut sub = own.clone();
    for i in (1..n).rev() {
        let p = doc.parent(NodeId(i as u32)).expect("non-root").index();
        sub[p] |= sub[i];
    }
    (own, sub)
}

/// All SLCA nodes for the given terms, in document order. Empty if any
/// term has no occurrence (conjunctive semantics) or `terms` is empty.
pub fn slca(doc: &Document, index: &InvertedIndex, terms: &[String]) -> Vec<NodeId> {
    if terms.is_empty() {
        return Vec::new();
    }
    let full: u64 = if terms.len() == 64 {
        u64::MAX
    } else {
        (1 << terms.len()) - 1
    };
    let (_, sub) = subtree_masks(doc, index, terms);
    if sub[0] != full {
        return Vec::new();
    }
    doc.node_ids()
        .filter(|&v| {
            sub[v.index()] == full && !doc.children(v).iter().any(|c| sub[c.index()] == full)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfrag_doc::DocumentBuilder;

    /// r(0) -> a(1){k1} ; r -> b(2) -> c(3){k1}, d(4){k2}
    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.leaf("a", "k1");
        b.begin("b");
        b.leaf("c", "k1");
        b.leaf("d", "k2");
        b.end();
        b.end();
        b.finish().unwrap()
    }

    fn terms(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn basic_slca() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // {k1, k2}: subtree of b(2) has both via c,d; root also — but b is
        // smaller → SLCA = {b}.
        assert_eq!(slca(&d, &idx, &terms(&["k1", "k2"])), vec![NodeId(2)]);
    }

    #[test]
    fn single_keyword_slcas_are_occurrences() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        assert_eq!(slca(&d, &idx, &terms(&["k1"])), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn missing_keyword_empties() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        assert!(slca(&d, &idx, &terms(&["k1", "zzz"])).is_empty());
        assert!(slca(&d, &idx, &[]).is_empty());
    }

    #[test]
    fn node_containing_all_keywords_is_slca() {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.leaf("p", "k1 k2");
        b.leaf("q", "k1");
        b.end();
        let d = b.finish().unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(slca(&d, &idx, &terms(&["k1", "k2"])), vec![NodeId(1)]);
    }

    #[test]
    fn multiple_slcas() {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.begin("s");
        b.leaf("p", "k1");
        b.leaf("q", "k2");
        b.end();
        b.begin("t");
        b.leaf("p", "k1");
        b.leaf("q", "k2");
        b.end();
        b.end();
        let d = b.finish().unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(
            slca(&d, &idx, &terms(&["k1", "k2"])),
            vec![NodeId(1), NodeId(4)]
        );
    }
}
