//! The "smallest subtree containing all the keywords" semantics — the
//! strawman the paper's introduction argues against.
//!
//! "It is often argued that given a set of keywords as a query against an
//! XML tree, the smallest subtree containing all the keywords is enough to
//! answer this query" (§1). We return *every* size-minimal such subtree
//! root (ties are possible), so the effectiveness comparison can be fair
//! to the baseline.

use crate::slca::subtree_masks;
use xfrag_core::Fragment;
use xfrag_doc::{Document, InvertedIndex, NodeId};

/// Roots of the minimal-size subtrees containing all keywords, in
/// document order. Empty if some keyword is absent or `terms` is empty.
pub fn smallest_subtree(doc: &Document, index: &InvertedIndex, terms: &[String]) -> Vec<NodeId> {
    if terms.is_empty() {
        return Vec::new();
    }
    let full: u64 = if terms.len() == 64 {
        u64::MAX
    } else {
        (1 << terms.len()) - 1
    };
    let (_, sub) = subtree_masks(doc, index, terms);
    if sub[0] != full {
        return Vec::new();
    }
    let best = doc
        .node_ids()
        .filter(|&v| sub[v.index()] == full)
        .map(|v| doc.subtree_size(v))
        .min()
        .expect("root qualifies");
    doc.node_ids()
        .filter(|&v| sub[v.index()] == full && doc.subtree_size(v) == best)
        .collect()
}

/// The smallest-subtree answers as whole-subtree fragments.
pub fn subtree_answers_as_fragments(
    doc: &Document,
    index: &InvertedIndex,
    terms: &[String],
) -> Vec<Fragment> {
    smallest_subtree(doc, index, terms)
        .into_iter()
        .map(|r| Fragment::subtree(doc, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfrag_doc::DocumentBuilder;

    fn terms(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn picks_minimal_subtree() {
        // r(0) -> s(1) -> p(2){k1 k2}; r -> t(3){k1}
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.begin("s");
        b.leaf("p", "k1 k2");
        b.end();
        b.leaf("t", "k1");
        b.end();
        let d = b.finish().unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(
            smallest_subtree(&d, &idx, &terms(&["k1", "k2"])),
            vec![NodeId(2)]
        );
    }

    #[test]
    fn ties_are_all_reported() {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.leaf("p", "k1 k2");
        b.leaf("q", "k1 k2");
        b.end();
        let d = b.finish().unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(
            smallest_subtree(&d, &idx, &terms(&["k1", "k2"])),
            vec![NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn fragments_are_whole_subtrees() {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.begin("s");
        b.leaf("p", "k1");
        b.leaf("q", "k2");
        b.end();
        b.end();
        let d = b.finish().unwrap();
        let idx = InvertedIndex::build(&d);
        let frags = subtree_answers_as_fragments(&d, &idx, &terms(&["k1", "k2"]));
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].nodes().len(), 3); // s with both leaves
    }

    #[test]
    fn absent_keyword_empties() {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.leaf("p", "k1");
        b.end();
        let d = b.finish().unwrap();
        let idx = InvertedIndex::build(&d);
        assert!(smallest_subtree(&d, &idx, &terms(&["k1", "nope"])).is_empty());
        assert!(smallest_subtree(&d, &idx, &[]).is_empty());
    }
}
