//! Exclusive Lowest Common Ancestor (ELCA) semantics — the answer model
//! of XRank (Guo et al., SIGMOD 2003; the paper's reference \[7\]).
//!
//! A node `v` is an ELCA if, after *excluding* the subtrees of those
//! children of `v` that already contain all keywords on their own, the
//! remainder of `v`'s subtree still contains every keyword. Every SLCA is
//! an ELCA; ELCA additionally keeps ancestors that own "exclusive"
//! witnesses.

use crate::slca::subtree_masks;
use xfrag_doc::{Document, InvertedIndex, NodeId};

/// All ELCA nodes for the given terms, in document order.
pub fn elca(doc: &Document, index: &InvertedIndex, terms: &[String]) -> Vec<NodeId> {
    if terms.is_empty() {
        return Vec::new();
    }
    let full: u64 = if terms.len() == 64 {
        u64::MAX
    } else {
        (1 << terms.len()) - 1
    };
    let (own, sub) = subtree_masks(doc, index, terms);
    if sub[0] != full {
        return Vec::new();
    }
    doc.node_ids()
        .filter(|&v| {
            if sub[v.index()] != full {
                return false;
            }
            let mut exclusive = own[v.index()];
            for &c in doc.children(v) {
                if sub[c.index()] != full {
                    exclusive |= sub[c.index()];
                }
            }
            exclusive == full
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slca::slca;
    use xfrag_doc::DocumentBuilder;

    fn terms(ts: &[&str]) -> Vec<String> {
        ts.iter().map(|s| s.to_string()).collect()
    }

    /// r(0) -> s(1) -> p(2){k1}, q(3){k2} ; r -> t(4){k1}, u(5){k2}
    ///
    /// s is an SLCA (hence ELCA). r has its own exclusive witnesses t, u
    /// outside the full child s → r is an ELCA too, but not an SLCA.
    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.begin("s");
        b.leaf("p", "k1");
        b.leaf("q", "k2");
        b.end();
        b.leaf("t", "k1");
        b.leaf("u", "k2");
        b.end();
        b.finish().unwrap()
    }

    #[test]
    fn elca_strictly_contains_slca() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let ts = terms(&["k1", "k2"]);
        let s = slca(&d, &idx, &ts);
        let e = elca(&d, &idx, &ts);
        assert_eq!(s, vec![NodeId(1)]);
        assert_eq!(e, vec![NodeId(0), NodeId(1)]);
        for v in &s {
            assert!(e.contains(v), "every SLCA is an ELCA");
        }
    }

    #[test]
    fn ancestor_without_exclusive_witness_is_not_elca() {
        // r(0) -> s(1) -> p(2){k1}, q(3){k2}: r's only witnesses live in
        // the full child s → r is not an ELCA.
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.begin("s");
        b.leaf("p", "k1");
        b.leaf("q", "k2");
        b.end();
        b.end();
        let d = b.finish().unwrap();
        let idx = InvertedIndex::build(&d);
        assert_eq!(elca(&d, &idx, &terms(&["k1", "k2"])), vec![NodeId(1)]);
    }

    #[test]
    fn missing_keyword_empties() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        assert!(elca(&d, &idx, &terms(&["k1", "zzz"])).is_empty());
        assert!(elca(&d, &idx, &[]).is_empty());
    }

    #[test]
    fn single_term_elcas() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // k1 at p(2) and t(4): both are ELCAs; ancestors hold no exclusive
        // occurrence of k1 outside a full child... r has t outside the full
        // child s? For m=1 every occurrence-subtree is "full", so r's
        // exclusive mask is empty → not an ELCA.
        assert_eq!(elca(&d, &idx, &terms(&["k1"])), vec![NodeId(2), NodeId(4)]);
    }
}
