//! Workspace-local stand-in for the subset of `criterion` the benches
//! use. It actually measures (median of timed batches, wall clock) and
//! prints one line per benchmark, but performs no statistical analysis,
//! HTML reporting, or baseline comparison. Good enough for the relative
//! A/B readings EXPERIMENTS.md records; swap in real criterion when a
//! registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark, wall clock.
const TARGET_TIME: Duration = Duration::from_millis(300);
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), None, &mut f);
        self
    }

    pub fn final_summary(self) {}
}

/// A named benchmark family; `sample_size` is accepted for API
/// compatibility (the time budget governs the sample count here).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.throughput.as_ref(),
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label()),
            self.throughput.as_ref(),
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: function name + parameter.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Units the per-iteration time is normalized against.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing loop handle passed to the closure under test.
pub struct Bencher {
    /// Total time and iterations accumulated by `iter` calls.
    elapsed: Duration,
    iters: u64,
    deadline: Instant,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm up until the warmup budget is spent, then measure in
        // growing batches until the target budget is spent.
        let warm_end = Instant::now() + WARMUP_TIME;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let mut batch: u64 = 1;
        while Instant::now() < self.deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.elapsed += t0.elapsed();
            self.iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }

    fn per_iter(&self) -> Option<Duration> {
        if self.iters == 0 {
            None
        } else {
            Some(self.elapsed / u32::try_from(self.iters.min(u32::MAX as u64)).unwrap_or(1))
        }
    }
}

fn run_one(label: &str, throughput: Option<&Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
        deadline: Instant::now() + TARGET_TIME,
    };
    f(&mut b);
    match b.per_iter() {
        Some(per) => {
            let extra = match throughput {
                Some(Throughput::Bytes(n)) if per.as_secs_f64() > 0.0 => {
                    let mbps = *n as f64 / per.as_secs_f64() / 1e6;
                    format!("  ({mbps:.1} MB/s)")
                }
                Some(Throughput::Elements(n)) if per.as_secs_f64() > 0.0 => {
                    let eps = *n as f64 / per.as_secs_f64();
                    format!("  ({eps:.0} elem/s)")
                }
                _ => String::new(),
            };
            println!("bench: {label:<60} {per:>12.3?}/iter{extra}");
        }
        None => println!("bench: {label:<60} (no iterations)"),
    }
}

/// `criterion_group!(name, target, ...)` — simple form only.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function(BenchmarkId::new("sum", 8), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.finish();
    }
}
