//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the workspace's
//! offline serde stand-in.
//!
//! The macros parse the item declaration directly from the token stream
//! (no `syn`/`quote` — the registry is unreachable) and emit impls that
//! lower values to / rebuild values from `serde::JsonValue` trees via the
//! helpers in `serde::__private`. Supported shapes are exactly what the
//! workspace declares: structs with named fields, newtype and tuple
//! structs, and enums whose variants are unit, newtype, tuple, or
//! struct-like. Generic type parameters are not supported.
//!
//! Encoding (mirrors serde's "externally tagged" default):
//! - named struct      → `{field: value, ...}`
//! - newtype struct    → inner value
//! - tuple struct      → `[v0, v1, ...]`
//! - unit variant      → `"Name"`
//! - newtype variant   → `{"Name": value}`
//! - tuple variant     → `{"Name": [v0, ...]}`
//! - struct variant    → `{"Name": {field: value, ...}}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model + parser
// ---------------------------------------------------------------------------

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skip `#[...]` attributes and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // invariant: a lone `#` in item position is always followed
                // by a bracket group (the attribute body).
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Split a field-list token group on top-level commas, tracking `<...>`
/// nesting so `Vec<Option<NodeId>>` stays one piece. Parens/brackets are
/// opaque sub-groups in the token tree, so only angle brackets need care.
fn split_top_commas(group: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut pieces: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in group {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                pieces.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        pieces.push(cur);
    }
    pieces
}

/// Parse one field declaration piece into its name (named fields) after
/// stripping attributes and visibility.
fn field_name(piece: &[TokenTree]) -> Option<String> {
    let mut it = piece.iter().cloned().peekable();
    skip_attrs_and_vis(&mut it);
    match it.next() {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    split_top_commas(group)
        .iter()
        .filter_map(|p| field_name(p))
        .collect()
}

fn parse_enum_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = group.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(_) => continue,
            None => break,
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_commas(g.stream()).len();
                toks.next();
                Fields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Consume up to and including the variant separator (skips
        // explicit discriminants, which the workspace does not use).
        for t in toks.by_ref() {
            if matches!(&t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the offline serde derive"
        ));
    }
    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(split_top_commas(g.stream()).len()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_enum_variants(g.stream()),
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

const P: &str = "::serde::__private";

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .unwrap_or_default()
}

/// Expression producing the `JsonValue` for a named-field set, given
/// bindings `{prefix}{field}` in scope.
fn named_to_object(fields: &[String], prefix: &str) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| format!("({:?}.to_string(), {P}::to_value({prefix}{f})),", f))
        .collect();
    format!("{P}::JsonValue::Object(vec![{pushes}])")
}

/// Statements rebuilding named fields from an object binding `__obj`,
/// as `field: expr,` initializers.
fn named_from_object(fields: &[String]) -> String {
    fields
        .iter()
        .map(|f| {
            format!("{f}: {P}::from_value({P}::take_field::<__D::Error>(&mut __obj, {f:?})?)?,")
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let expr = match fields {
                Fields::Named(fs) => {
                    let refs: Vec<String> = fs.iter().map(|f| format!("&self.{f}")).collect();
                    let pushes: String = fs
                        .iter()
                        .zip(&refs)
                        .map(|(f, r)| format!("({f:?}.to_string(), {P}::to_value({r})),"))
                        .collect();
                    format!("{P}::JsonValue::Object(vec![{pushes}])")
                }
                Fields::Tuple(1) => format!("{P}::to_value(&self.0)"),
                Fields::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|i| format!("{P}::to_value(&self.{i}),"))
                        .collect();
                    format!("{P}::JsonValue::Array(vec![{items}])")
                }
                Fields::Unit => format!("{P}::JsonValue::Null"),
            };
            (name, format!("__serializer.serialize_value({expr})"))
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "Self::{vn} => __serializer.serialize_value({P}::JsonValue::Str({vn:?}.to_string())),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = if *n == 1 {
                                format!("{P}::to_value(__f0)")
                            } else {
                                let items: String =
                                    binds.iter().map(|b| format!("{P}::to_value({b}),")).collect();
                                format!("{P}::JsonValue::Array(vec![{items}])")
                            };
                            format!(
                                "Self::{vn}({}) => __serializer.serialize_value({P}::JsonValue::Object(vec![({vn:?}.to_string(), {inner})])),",
                                binds.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds: String =
                                fs.iter().map(|f| format!("{f}: __b_{f},")).collect();
                            let obj = named_to_object(
                                fs,
                                "__b_",
                            );
                            format!(
                                "Self::{vn} {{ {binds} }} => __serializer.serialize_value({P}::JsonValue::Object(vec![({vn:?}.to_string(), {obj})])),"
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let inits = named_from_object(fs);
                    format!(
                        "let mut __obj = {P}::expect_object::<__D::Error>(__value)?;\n\
                         ::core::result::Result::Ok({name} {{ {inits} }})"
                    )
                }
                Fields::Tuple(1) => {
                    format!("::core::result::Result::Ok({name}({P}::from_value(__value)?))")
                }
                Fields::Tuple(n) => {
                    let takes: String = (0..*n)
                        .map(|_| {
                            format!(
                                "{P}::from_value(match __it.next() {{\n\
                                     Some(v) => v,\n\
                                     None => return Err(::serde::de::Error::custom(\"tuple struct arity mismatch\")),\n\
                                 }})?,"
                            )
                        })
                        .collect();
                    format!(
                        "let __arr = {P}::expect_array::<__D::Error>(__value)?;\n\
                         if __arr.len() != {n} {{\n\
                             return Err(::serde::de::Error::custom(\"tuple struct arity mismatch\"));\n\
                         }}\n\
                         let mut __it = __arr.into_iter();\n\
                         ::core::result::Result::Ok({name}({takes}))"
                    )
                }
                Fields::Unit => format!("::core::result::Result::Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{:?} => ::core::result::Result::Ok(Self::{}),",
                        v.name, v.name
                    )
                })
                .collect();
            let data_arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => String::new(),
                        Fields::Tuple(1) => format!(
                            "{vn:?} => ::core::result::Result::Ok(Self::{vn}({P}::from_value(__inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let takes: String = (0..*n)
                                .map(|_| {
                                    format!(
                                        "{P}::from_value(match __it.next() {{\n\
                                             Some(v) => v,\n\
                                             None => return Err(::serde::de::Error::custom(\"variant arity mismatch\")),\n\
                                         }})?,"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __arr = {P}::expect_array::<__D::Error>(__inner)?;\n\
                                     if __arr.len() != {n} {{\n\
                                         return Err(::serde::de::Error::custom(\"variant arity mismatch\"));\n\
                                     }}\n\
                                     let mut __it = __arr.into_iter();\n\
                                     ::core::result::Result::Ok(Self::{vn}({takes}))\n\
                                 }}"
                            )
                        }
                        Fields::Named(fs) => {
                            let inits = named_from_object(fs);
                            format!(
                                "{vn:?} => {{\n\
                                     let mut __obj = {P}::expect_object::<__D::Error>(__inner)?;\n\
                                     ::core::result::Result::Ok(Self::{vn} {{ {inits} }})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            let body = format!(
                "match __value {{\n\
                     {P}::JsonValue::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(::serde::de::Error::custom(\n\
                             format!(\"unknown unit variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     {P}::JsonValue::Object(mut __o) if __o.len() == 1 => {{\n\
                         let (__tag, __inner) = __o.remove(0);\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\n\
                             __other => Err(::serde::de::Error::custom(\n\
                                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::de::Error::custom(\n\
                         format!(\"invalid representation for enum {name}\"))),\n\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::de::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 #[allow(unused_variables)]\n\
                 let __value = __deserializer.take_value()?;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
