//! JSON text serialization over the workspace-local serde stand-in:
//! `to_string` prints a `serde::JsonValue` tree, `from_str` parses JSON
//! text back into one and hands it to `Deserialize`. Object key order is
//! preserved in both directions, so output is deterministic.

use serde::JsonValue;

/// Serialization/deserialization failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value);
    let mut out = String::new();
    write_value(&mut out, &v);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<'de, T: serde::Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let v = Parser::new(input).parse_document()?;
    T::deserialize(serde::ValueDeserializer::<Error>::new(v))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &JsonValue) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Int(i) => out.push_str(&i.to_string()),
        JsonValue::UInt(u) => out.push_str(&u.to_string()),
        JsonValue::Float(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that round-trips;
                // integral floats come back as integers, which the reader
                // coerces back to f64.
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Infinity; mirror serde_json's lossy null.
                out.push_str("null");
            }
        }
        JsonValue::Str(s) => write_string(out, s),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        JsonValue::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Recursion guard: JSON nesting deeper than this is rejected rather than
/// risking a stack overflow on adversarial input.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn parse_document(mut self) -> Result<JsonValue, Error> {
        let v = self.parse_value(0)?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|_| JsonValue::Null),
            Some(b't') => self.eat_literal("true").map(|_| JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| JsonValue::Bool(false)),
            Some(b'"') => self.parse_string().map(JsonValue::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':', "expected `:`")?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect the low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; find the char at this offset).
                    let rest = &self.bytes[self.pos..];
                    // invariant: `rest` starts at a char boundary of the
                    // original &str, so from_utf8 on a 4-byte prefix and
                    // chars().next() always yields a char.
                    let len = utf8_len(rest[0]);
                    let chunk = rest.get(..len).ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        // invariant: parse_value only dispatches here on a digit or '-',
        // so the slice is non-empty ASCII.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(JsonValue::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&7u32).unwrap(), "7");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(from_str::<u32>("7").unwrap(), 7);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(
            from_str::<String>("\"a\\\"b\\\\c\\nd\"").unwrap(),
            "a\"b\\c\nd"
        );
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, "x".to_string()), (2, "y".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[[1,"x"],[2,"y"]]"#);
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let o: Option<u8> = from_str("null").unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
        assert_eq!(from_str::<String>("\"é😀\"").unwrap(), "é😀");
    }

    #[test]
    fn errors_are_errors_not_panics() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\"1}", "nul", "01x", "[1]]"] {
            assert!(from_str::<Vec<u8>>(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn large_u64_roundtrips() {
        let big = u64::MAX;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }
}
