//! Workspace-local stand-in for the subset of `serde` this repository
//! uses. The build environment has no access to a crate registry, so the
//! workspace vendors a minimal data model instead: every serializable
//! value lowers to a [`JsonValue`] tree, and a [`ser::Serializer`] /
//! [`de::Deserializer`] is simply a sink/source of such trees. This keeps
//! the public trait shapes that the repo's hand-written impls rely on
//! (`Serialize::serialize<S: Serializer>`, associated `Ok`/`Error` types)
//! while staying a few hundred lines of dependency-free code.

use std::fmt::Display;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The universal data model every value serializes into.
///
/// Objects preserve insertion order so serialized output is deterministic
/// (plans are cached by their JSON text).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

pub mod ser {
    use super::JsonValue;
    use std::fmt::Display;

    /// Error constraint for serializers.
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A sink for one [`JsonValue`] tree.
    pub trait Serializer: Sized {
        type Ok;
        type Error: Error;
        fn serialize_value(self, value: JsonValue) -> Result<Self::Ok, Self::Error>;
    }
}

pub mod de {
    use super::JsonValue;
    use std::fmt::Display;

    /// Error constraint for deserializers.
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A source of one [`JsonValue`] tree.
    pub trait Deserializer<'de>: Sized {
        type Error: Error;
        fn take_value(self) -> Result<JsonValue, Self::Error>;
    }

    /// Deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> super::Deserialize<'de> {}
}

/// A type that can lower itself into the data model.
pub trait Serialize {
    fn serialize<S: ser::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can rebuild itself from the data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: de::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------------
// Value-level plumbing
// ---------------------------------------------------------------------------

/// Uninhabited error for the infallible [`ValueSerializer`].
#[derive(Debug)]
pub enum Impossible {}

impl ser::Error for Impossible {
    fn custom<T: Display>(msg: T) -> Self {
        unreachable!("value serialization is infallible: {msg}")
    }
}

/// Serializer that just hands the value tree back.
pub struct ValueSerializer;

impl ser::Serializer for ValueSerializer {
    type Ok = JsonValue;
    type Error = Impossible;
    fn serialize_value(self, value: JsonValue) -> Result<JsonValue, Impossible> {
        Ok(value)
    }
}

/// Lower any serializable value into a [`JsonValue`]. Infallible by
/// construction: the value serializer has no failure mode.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> JsonValue {
    match value.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

/// Deserializer that yields a pre-built value tree, generic in the error
/// type so derive-generated code can thread its caller's `D::Error`.
pub struct ValueDeserializer<E> {
    value: JsonValue,
    _marker: std::marker::PhantomData<fn() -> E>,
}

impl<E> ValueDeserializer<E> {
    pub fn new(value: JsonValue) -> Self {
        ValueDeserializer {
            value,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<'de, E: de::Error> de::Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;
    fn take_value(self) -> Result<JsonValue, E> {
        Ok(self.value)
    }
}

/// Rebuild a value from a [`JsonValue`] tree.
pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(value: JsonValue) -> Result<T, E> {
    T::deserialize(ValueDeserializer::new(value))
}

// ---------------------------------------------------------------------------
// Impls for primitives and std containers
// ---------------------------------------------------------------------------

fn type_name(v: &JsonValue) -> &'static str {
    match v {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "bool",
        JsonValue::Int(_) | JsonValue::UInt(_) => "integer",
        JsonValue::Float(_) => "float",
        JsonValue::Str(_) => "string",
        JsonValue::Array(_) => "array",
        JsonValue::Object(_) => "object",
    }
}

fn mismatch<E: de::Error>(expected: &str, got: &JsonValue) -> E {
    E::custom(format!("expected {expected}, found {}", type_name(got)))
}

fn as_u64<E: de::Error>(v: JsonValue) -> Result<u64, E> {
    match v {
        JsonValue::UInt(u) => Ok(u),
        JsonValue::Int(i) if i >= 0 => Ok(i as u64),
        other => Err(mismatch("unsigned integer", &other)),
    }
}

fn as_i64<E: de::Error>(v: JsonValue) -> Result<i64, E> {
    match v {
        JsonValue::Int(i) => Ok(i),
        JsonValue::UInt(u) if u <= i64::MAX as u64 => Ok(u as i64),
        other => Err(mismatch("integer", &other)),
    }
}

fn as_f64<E: de::Error>(v: JsonValue) -> Result<f64, E> {
    match v {
        JsonValue::Float(f) => Ok(f),
        JsonValue::Int(i) => Ok(i as f64),
        JsonValue::UInt(u) => Ok(u as f64),
        other => Err(mismatch("number", &other)),
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(JsonValue::UInt(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8 u16 u32 u64 usize);

macro_rules! impl_ser_int {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(JsonValue::Int(*self as i64))
            }
        }
    )*};
}
impl_ser_int!(i8 i16 i32 i64 isize);

macro_rules! impl_de_uint {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let u = as_u64::<D::Error>(d.take_value()?)?;
                <$t>::try_from(u)
                    .map_err(|_| de::Error::custom(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_uint!(u8 u16 u32 u64 usize);

macro_rules! impl_de_int {
    ($($t:ty)*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let i = as_i64::<D::Error>(d.take_value()?)?;
                <$t>::try_from(i)
                    .map_err(|_| de::Error::custom(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8 i16 i32 i64 isize);

impl Serialize for f64 {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(JsonValue::Float(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(JsonValue::Float(*self as f64))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        as_f64::<D::Error>(d.take_value()?)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(as_f64::<D::Error>(d.take_value()?)? as f32)
    }
}

impl Serialize for bool {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(JsonValue::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            JsonValue::Bool(b) => Ok(b),
            other => Err(mismatch("bool", &other)),
        }
    }
}

impl Serialize for char {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(JsonValue::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            JsonValue::Str(st) => {
                let mut it = st.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(de::Error::custom("expected single-character string")),
                }
            }
            other => Err(mismatch("string", &other)),
        }
    }
}

impl Serialize for str {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(JsonValue::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(JsonValue::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            JsonValue::Str(st) => Ok(st),
            other => Err(mismatch("string", &other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(d)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(JsonValue::Null),
            Some(v) => s.serialize_value(to_value(v)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            JsonValue::Null => Ok(None),
            other => Ok(Some(from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(JsonValue::Array(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            JsonValue::Array(items) => items.into_iter().map(from_value).collect(),
            other => Err(mismatch("array", &other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: ser::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(JsonValue::Array(vec![$(to_value(&self.$idx)),+]))
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: de::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take_value()? {
                    JsonValue::Array(items) => {
                        let expected = 0usize $(+ { let _ = $idx; 1 })+;
                        if items.len() != expected {
                            return Err(de::Error::custom(format!(
                                "expected tuple of {expected}, found array of {}", items.len()
                            )));
                        }
                        let mut it = items.into_iter();
                        Ok(($({
                            let _ = $idx;
                            let item = match it.next() {
                                Some(v) => v,
                                // invariant: length checked above.
                                None => return Err(de::Error::custom("tuple underflow")),
                            };
                            from_value::<$name, D::Error>(item)?
                        },)+))
                    }
                    other => Err(mismatch("array", &other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, E: 3)
}

// ---------------------------------------------------------------------------
// Support for derive-generated code (stable names, not a public API)
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub mod __private {
    use super::{de, mismatch};
    pub use super::{from_value, to_value, JsonValue};

    /// Remove and return a named field from a decoded object.
    pub fn take_field<E: de::Error>(
        obj: &mut Vec<(String, JsonValue)>,
        name: &str,
    ) -> Result<JsonValue, E> {
        match obj.iter().position(|(k, _)| k == name) {
            Some(i) => Ok(obj.remove(i).1),
            None => Err(E::custom(format!("missing field `{name}`"))),
        }
    }

    pub fn expect_object<E: de::Error>(v: JsonValue) -> Result<Vec<(String, JsonValue)>, E> {
        match v {
            JsonValue::Object(o) => Ok(o),
            other => Err(mismatch("object", &other)),
        }
    }

    pub fn expect_array<E: de::Error>(v: JsonValue) -> Result<Vec<JsonValue>, E> {
        match v {
            JsonValue::Array(a) => Ok(a),
            other => Err(mismatch("array", &other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(to_value(&42u32), JsonValue::UInt(42));
        assert_eq!(to_value(&-7i64), JsonValue::Int(-7));
        assert_eq!(to_value(&true), JsonValue::Bool(true));
        assert_eq!(to_value("hi"), JsonValue::Str("hi".into()));
        let v: Vec<u32> = from_value::<_, Demo>(to_value(&vec![1u32, 2, 3])).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (String, u8) = from_value::<_, Demo>(to_value(&("a".to_string(), 9u8))).unwrap();
        assert_eq!(t, ("a".to_string(), 9));
        let o: Option<u8> = from_value::<_, Demo>(JsonValue::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn range_errors_are_reported() {
        assert!(from_value::<u8, Demo>(JsonValue::UInt(300)).is_err());
        assert!(from_value::<bool, Demo>(JsonValue::Int(1)).is_err());
    }

    #[derive(Debug)]
    struct Demo(#[allow(dead_code)] String);
    impl de::Error for Demo {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Demo(msg.to_string())
        }
    }
}
