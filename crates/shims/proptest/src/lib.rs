//! Workspace-local stand-in for the subset of `proptest` this repository
//! uses. It keeps the macro surface (`proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert*!`) and the combinator surface
//! (`any::<T>()`, ranges, tuples, `prop::collection::vec`,
//! `prop::option::of`, regex-literal string strategies, `prop_map`) but
//! drops shrinking: a failing case panics with its case index and the
//! generator is deterministic per test name, so failures reproduce
//! exactly by re-running the test.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// SplitMix64 stream used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Seed from a test's module path + name: every test gets its own
    /// stable stream, so adding a test never perturbs another's cases.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy backed by a plain sampling closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    pub fn new(f: F) -> Self {
        FnStrategy(f)
    }
}

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Type-erased strategy; what `prop_oneof!` arms are unified into.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len());
        self.0[i].sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty)*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty)*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------------

/// A `&str` is a strategy: the string is interpreted as a (tiny) subset
/// of regex — character classes with ranges, `\PC` (any printable), and
/// `{m}` / `{m,n}` / `*` / `+` / `?` quantifiers — and sampled.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

#[derive(Clone)]
enum Atom {
    Class(Vec<char>),
    Printable,
}

fn printable_char(rng: &mut TestRng) -> char {
    // Mostly ASCII printable, occasionally multi-byte to exercise UTF-8
    // handling in parsers.
    const EXOTIC: &[char] = &['é', 'λ', '中', 'ß', '€', '☃'];
    if rng.below(16) == 0 {
        EXOTIC[rng.below(EXOTIC.len())]
    } else {
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' ')
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    for c in chars.by_ref() {
        match c {
            ']' => return set,
            '-' => {
                // Range if we have a previous char and a next char follows;
                // resolved when the next char arrives via `prev` handling.
                prev = Some('\u{0}'); // marker: pending range
                continue;
            }
            '\\' => continue, // next char taken literally by the next arm
            c => {
                if prev == Some('\u{0}') {
                    // Complete a pending range using the last pushed char.
                    if let Some(&lo) = set.last() {
                        let (lo, hi) = (lo as u32, c as u32);
                        for u in lo + 1..=hi {
                            if let Some(ch) = char::from_u32(u) {
                                set.push(ch);
                            }
                        }
                    }
                } else {
                    set.push(c);
                }
                prev = Some(c);
            }
        }
    }
    set
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC` — not-a-control-character.
                    if chars.peek() == Some(&'C') {
                        chars.next();
                    }
                    Atom::Printable
                }
                Some('d') => Atom::Class(('0'..='9').collect()),
                Some('w') => {
                    let mut s: Vec<char> = ('a'..='z').collect();
                    s.extend('A'..='Z');
                    s.extend('0'..='9');
                    s.push('_');
                    Atom::Class(s)
                }
                Some(other) => Atom::Class(vec![other]),
                None => break,
            },
            '.' => Atom::Printable,
            other => Atom::Class(vec![other]),
        };
        // Optional quantifier.
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                if let Some((a, b)) = spec.split_once(',') {
                    (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(8))
                } else {
                    let n = spec.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push((atom, lo, hi));
    }

    let mut out = String::new();
    for (atom, lo, hi) in atoms {
        let n = lo + rng.below(hi - lo + 1);
        for _ in 0..n {
            match &atom {
                Atom::Class(set) if !set.is_empty() => out.push(set[rng.below(set.len())]),
                Atom::Class(_) => {}
                Atom::Printable => out.push(printable_char(rng)),
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Sizes accepted by [`prop::collection::vec`]: an exact count or a
/// half-open / inclusive range.
pub trait IntoSizeRange {
    /// Inclusive bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.lo + rng.below(self.hi - self.lo + 1);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

pub struct OptionStrategy<S>(S);

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.sample(rng))
        }
    }
}

pub mod prop {
    pub mod collection {
        use crate::{IntoSizeRange, Strategy, VecStrategy};

        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            VecStrategy { element, lo, hi }
        }
    }

    pub mod option {
        use crate::{OptionStrategy, Strategy};

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

// ---------------------------------------------------------------------------
// Runner configuration + failure reporting
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Prints the failing case index if a test body panics (no shrinking;
/// the deterministic per-test stream makes the failure reproducible).
pub struct CaseGuard {
    case: u32,
    armed: bool,
}

impl CaseGuard {
    pub fn new(case: u32) -> Self {
        CaseGuard { case, armed: true }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest: case #{} failed (deterministic per-test stream; re-run to reproduce)",
                self.case
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __guard = $crate::CaseGuard::new(__case);
                $(let $pat = ($strat).sample(&mut __rng);)+
                { $body }
                __guard.disarm();
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::Strategy<Value = $ret> {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            $crate::FnStrategy::new(move |__rng: &mut $crate::TestRng| {
                $(let $pat = ($strat).sample(__rng);)+
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        #[allow(unused_imports)]
        use $crate::Strategy as _;
        $crate::Union(vec![$(($arm).boxed()),+])
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
        Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_sample_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let v = prop::collection::vec(0u32..10, 2..5).sample(&mut rng);
            assert!(v.len() >= 2 && v.len() < 5);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn regex_subset_samples_match_class() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "[a-z]{1,4}".sample(&mut rng);
            assert!((1..=4).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let p = "\\PC{0,20}".sample(&mut rng);
            assert!(p.chars().count() <= 20);
            assert!(p.chars().all(|c| !c.is_control()), "{p:?}");
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::from_seed(3);
        let strat = prop_oneof![(0i64..4).prop_map(|v| v * 2), Just(100i64),];
        let mut saw_just = false;
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v == 100 || (v % 2 == 0 && v < 8));
            saw_just |= v == 100;
        }
        assert!(saw_just);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_runs(xs in prop::collection::vec(any::<usize>(), 0..6), b in any::<bool>()) {
            prop_assert!(b || xs.len() < 6);
            prop_assert_eq!(xs.len().min(5), xs.len());
        }
    }
}
