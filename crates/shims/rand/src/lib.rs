//! Workspace-local stand-in for the subset of `rand` this repository
//! uses: a seedable [`rngs::StdRng`] plus the [`RngExt`] sampling methods
//! (`random::<f64>()`, `random_range(lo..hi)` / `(lo..=hi)`).
//!
//! The generator is SplitMix64 — tiny, fast, and statistically solid for
//! corpus generation and tests. Determinism contract: the same seed
//! always produces the same stream (the corpus generators rely on this).

/// Seed a generator from a `u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface. Object-unsafe generic methods are fine here: call
/// sites only ever use `R: RngExt + ?Sized` as a generic bound.
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` over its natural domain
    /// (`f64`/`f32` in `[0, 1)`, integers over the full range).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in the given range. Panics on an empty
    /// range, matching `rand`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Types [`RngExt::random`] can produce.
pub trait Random: Sized {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for usize {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for bool {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngExt + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty)*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngExt + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_float_covers_both_halves() {
        let mut rng = StdRng::seed_from_u64(1);
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..1000 {
            if rng.random::<f64>() < 0.5 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 300 && hi > 300, "lo={lo} hi={hi}");
    }
}
