//! The relational encoding of an XML document (after the paper's
//! reference \[13\]).
//!
//! Three tables capture everything the tree algebra needs:
//!
//! * `node(id, parent, depth, size, tag)` — one row per element;
//!   `parent` is NULL for the root; `size` is the subtree size, so the
//!   pre-order ancestor test `a.id <= b.id < a.id + a.size` is a range
//!   predicate;
//! * `keyword(term, node)` — the inverted postings,
//!   `σ_{keyword=k}(nodes(D))` becomes `σ_{term=k}(keyword)`;
//! * `anc(node, ancestor, adepth)` — the ancestor-or-self closure, which
//!   turns path and LCA computations into joins (no recursive pointer
//!   chasing at query time). For a document of N nodes and height h the
//!   closure holds at most N·(h+1) rows.

use crate::database::Database;
use crate::relation::Relation;
use crate::schema::{ColType, Schema};
use crate::value::Value;
use xfrag_doc::{text::keywords, Document};

/// Schema of the `node` table.
pub fn node_schema() -> Schema {
    Schema::new(vec![
        ("id", ColType::Int),
        ("parent", ColType::Int),
        ("depth", ColType::Int),
        ("size", ColType::Int),
        ("tag", ColType::Text),
    ])
}

/// Schema of the `keyword` table.
pub fn keyword_schema() -> Schema {
    Schema::new(vec![("term", ColType::Text), ("node", ColType::Int)])
}

/// Schema of the `anc` closure table.
pub fn anc_schema() -> Schema {
    Schema::new(vec![
        ("node", ColType::Int),
        ("ancestor", ColType::Int),
        ("adepth", ColType::Int),
    ])
}

/// Encode a document into a fresh [`Database`] with tables `node`,
/// `keyword` and `anc`.
pub fn encode_document(doc: &Document) -> Database {
    let mut node = Relation::empty(node_schema());
    let mut keyword = Relation::empty(keyword_schema());
    let mut anc = Relation::empty(anc_schema());

    for n in doc.node_ids() {
        node.push(vec![
            Value::from(n.0),
            doc.parent(n)
                .map(|p| Value::from(p.0))
                .unwrap_or(Value::Null),
            Value::from(doc.depth(n)),
            Value::from(doc.subtree_size(n)),
            Value::from(doc.tag(n)),
        ]);
        for term in keywords(doc, n) {
            keyword.push(vec![Value::from(term), Value::from(n.0)]);
        }
        // Ancestor-or-self closure.
        anc.push(vec![
            Value::from(n.0),
            Value::from(n.0),
            Value::from(doc.depth(n)),
        ]);
        for a in doc.ancestors(n) {
            anc.push(vec![
                Value::from(n.0),
                Value::from(a.0),
                Value::from(doc.depth(a)),
            ]);
        }
    }

    let mut db = Database::new();
    db.put("node", node);
    db.put("keyword", keyword);
    db.put("anc", anc);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use xfrag_doc::DocumentBuilder;

    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.begin("a");
        b.leaf("b", "hello world");
        b.end();
        b.leaf("c", "world");
        b.end();
        b.finish().unwrap()
    }

    #[test]
    fn node_table_rows() {
        let db = encode_document(&doc());
        let node = db.table("node");
        assert_eq!(node.len(), 4);
        // Root row: parent NULL, depth 0, size 4.
        let root = node.select(&Predicate::IsNull("parent".into()));
        assert_eq!(root.len(), 1);
        assert_eq!(root.rows()[0][2], Value::Int(0));
        assert_eq!(root.rows()[0][3], Value::Int(4));
    }

    #[test]
    fn keyword_table_postings() {
        let db = encode_document(&doc());
        let kw = db.table("keyword");
        let world = kw.select(&Predicate::Eq("term".into(), Value::from("world")));
        let nodes: Vec<i64> = world.rows().iter().map(|r| r[1].as_int()).collect();
        assert_eq!(nodes, vec![2, 3]);
    }

    #[test]
    fn closure_table_has_self_and_ancestors() {
        let db = encode_document(&doc());
        let anc = db.table("anc");
        // b (id 2): self, a (1), r (0) → 3 rows.
        let b_rows = anc.select(&Predicate::Eq("node".into(), Value::Int(2)));
        assert_eq!(b_rows.len(), 3);
        let ancestors: Vec<i64> = b_rows.rows().iter().map(|r| r[1].as_int()).collect();
        assert!(ancestors.contains(&0) && ancestors.contains(&1) && ancestors.contains(&2));
        // Closure size: Σ (depth + 1) = 1 + 2 + 3 + 2 = 8.
        assert_eq!(anc.len(), 8);
    }
}
