//! End-to-end relational query evaluation, mirroring
//! `xfrag_core::evaluate` over the table encoding.
//!
//! This is the differential-testing surface: for any query whose filter is
//! expressible in the relational encoding (`size`/`height`/`width` bounds
//! and conjunctions thereof — the paper's §3.3 anti-monotonic family), the
//! relational pipeline must produce the same fragment set as the native
//! engine.

use crate::algebra::{
    filter_max_height, filter_max_size, filter_max_width, pairwise_join, FragRel,
};
use crate::database::Database;
use xfrag_core::{FilterExpr, Fragment, FragmentSet, Query};
use xfrag_doc::Document;

/// Errors from the relational evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelEvalError {
    /// The query has no usable terms.
    NoTerms,
    /// The filter uses a predicate the relational encoding does not
    /// express (only size/height/width bounds and their conjunctions are
    /// supported).
    UnsupportedFilter(String),
}

impl std::fmt::Display for RelEvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelEvalError::NoTerms => write!(f, "query has no terms"),
            RelEvalError::UnsupportedFilter(s) => {
                write!(
                    f,
                    "filter {s} is not expressible in the relational encoding"
                )
            }
        }
    }
}

impl std::error::Error for RelEvalError {}

/// Apply a supported filter expression to a fragment relation.
fn apply_filter(db: &Database, filter: &FilterExpr, f: FragRel) -> Result<FragRel, RelEvalError> {
    match filter {
        FilterExpr::True => Ok(f),
        FilterExpr::MaxSize(b) => Ok(filter_max_size(&f, *b)),
        FilterExpr::MaxHeight(h) => Ok(filter_max_height(db, &f, *h)),
        FilterExpr::MaxWidth(w) => Ok(filter_max_width(&f, *w)),
        FilterExpr::And(fs) => {
            let mut cur = f;
            for p in fs {
                cur = apply_filter(db, p, cur)?;
            }
            Ok(cur)
        }
        other => Err(RelEvalError::UnsupportedFilter(other.to_string())),
    }
}

/// Evaluate a query over the relational encoding; `doc` is needed only to
/// convert the answer back into [`Fragment`]s (which carry no document
/// reference but are validated against one).
pub fn evaluate_relational(
    db: &Database,
    doc: &Document,
    query: &Query,
) -> Result<FragmentSet, RelEvalError> {
    if query.terms.is_empty() {
        return Err(RelEvalError::NoTerms);
    }
    let operands: Vec<FragRel> = query
        .terms
        .iter()
        .map(|t| FragRel::keyword_select(db, t))
        .collect();
    if operands.iter().any(FragRel::is_empty) {
        return Ok(FragmentSet::new());
    }

    // Pre-flight: reject unsupported filters before any heavy work.
    apply_filter(db, &query.filter, FragRel::empty())?;

    // F1⁺ ⋈ F2⁺ ⋈ … — the Theorem 2 evaluation, with the filter applied
    // inside every fixed-point round and after every join (sound for the
    // supported anti-monotonic family — Theorem 3 — and required to keep
    // frequent-term fixed points from exploding).
    let mut acc: Option<FragRel> = None;
    for op in operands {
        let fp = crate::algebra::fixed_point_with(db, &op, |fr| {
            apply_filter(db, &query.filter, fr).expect("filter support pre-checked")
        });
        acc = Some(match acc {
            None => fp,
            Some(prev) => {
                let j = pairwise_join(db, &prev, &fp);
                apply_filter(db, &query.filter, j)?
            }
        });
    }
    let answer = acc.expect("at least one operand");

    let mut out = FragmentSet::new();
    for (_, nodes) in answer.fragments() {
        let frag = Fragment::from_nodes(doc, nodes.into_iter().map(xfrag_doc::NodeId))
            .expect("relational answer fragments are connected");
        out.insert(frag);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use xfrag_core::{evaluate, Strategy};
    use xfrag_doc::{DocumentBuilder, InvertedIndex};

    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("article");
        b.begin("sec");
        b.text("alpha");
        b.leaf("p", "alpha beta");
        b.leaf("p", "beta");
        b.end();
        b.begin("sec");
        b.leaf("p", "alpha");
        b.leaf("p", "gamma");
        b.end();
        b.end();
        b.finish().unwrap()
    }

    #[test]
    fn matches_native_engine() {
        let d = doc();
        let db = encode_document(&d);
        let idx = InvertedIndex::build(&d);
        for filter in [
            FilterExpr::True,
            FilterExpr::MaxSize(3),
            FilterExpr::MaxHeight(1),
            FilterExpr::MaxWidth(2),
            FilterExpr::and([FilterExpr::MaxSize(4), FilterExpr::MaxHeight(2)]),
        ] {
            let q = Query::new(["alpha", "beta"], filter.clone());
            let native = evaluate(&d, &idx, &q, Strategy::FixedPointNaive)
                .unwrap()
                .fragments;
            let relational = evaluate_relational(&db, &d, &q).unwrap();
            assert_eq!(relational, native, "filter {filter}");
        }
    }

    #[test]
    fn three_terms_match() {
        let d = doc();
        let db = encode_document(&d);
        let idx = InvertedIndex::build(&d);
        let q = Query::new(["alpha", "beta", "gamma"], FilterExpr::True);
        let native = evaluate(&d, &idx, &q, Strategy::FixedPointNaive)
            .unwrap()
            .fragments;
        let relational = evaluate_relational(&db, &d, &q).unwrap();
        assert_eq!(relational, native);
    }

    #[test]
    fn missing_term_gives_empty() {
        let d = doc();
        let db = encode_document(&d);
        let q = Query::new(["alpha", "zzz"], FilterExpr::True);
        assert!(evaluate_relational(&db, &d, &q).unwrap().is_empty());
    }

    #[test]
    fn unsupported_filter_reported() {
        let d = doc();
        let db = encode_document(&d);
        let q = Query::new(["alpha"], FilterExpr::MinSize(2));
        assert!(matches!(
            evaluate_relational(&db, &d, &q),
            Err(RelEvalError::UnsupportedFilter(_))
        ));
    }

    #[test]
    fn no_terms_is_error() {
        let d = doc();
        let db = encode_document(&d);
        let q = Query::new(Vec::<&str>::new(), FilterExpr::True);
        assert_eq!(
            evaluate_relational(&db, &d, &q).unwrap_err(),
            RelEvalError::NoTerms
        );
    }
}
