//! The relational operators: selection, projection, joins, set ops,
//! grouped aggregation.
//!
//! Relations are immutable row stores; every operator returns a fresh
//! relation. Equi-joins are hash joins (build on the smaller side);
//! `distinct` hashes whole rows. This is deliberately a straightforward
//! engine — the point of the crate is the *encoding* of the tree algebra,
//! and a simple engine keeps the cost attribution honest when the bench
//! harness compares the relational and native implementations.

use crate::predicate::Predicate;
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An immutable relation: a schema plus rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

/// Aggregate functions for [`Relation::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// COUNT(*) within the group.
    Count,
    /// MIN(column).
    Min,
    /// MAX(column).
    Max,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Build from rows, checking arity (type checking is the caller's
    /// concern — this engine is schema-on-write for arity only).
    pub fn new(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        for r in &rows {
            assert_eq!(r.len(), schema.arity(), "row arity mismatch");
        }
        Relation { schema, rows }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Append a row (used by table loaders).
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        self.rows.push(row);
    }

    /// `σ_p` — keep rows satisfying the predicate.
    pub fn select(&self, p: &Predicate) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: self
                .rows
                .iter()
                .filter(|r| p.eval(&self.schema, r))
                .cloned()
                .collect(),
        }
    }

    /// `π_cols` — project (and reorder) columns by name.
    pub fn project(&self, cols: &[&str]) -> Relation {
        let idxs: Vec<usize> = cols.iter().map(|c| self.schema.col_required(c)).collect();
        Relation {
            schema: self.schema.project(cols),
            rows: self
                .rows
                .iter()
                .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                .collect(),
        }
    }

    /// Rename a column.
    pub fn rename(&self, from: &str, to: &str) -> Relation {
        let mut schema = self.schema.clone();
        let idx = schema.col_required(from);
        let cols: Vec<(String, crate::schema::ColType)> = schema
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    if i == idx {
                        to.to_string()
                    } else {
                        c.name.clone()
                    },
                    c.ty,
                )
            })
            .collect();
        schema = Schema::new(cols.iter().map(|(n, t)| (n.as_str(), *t)).collect());
        Relation {
            schema,
            rows: self.rows.clone(),
        }
    }

    /// Hash equi-join on `self.left_col = other.right_col`. Columns of
    /// `other` that clash with `self` are prefixed with `r_`.
    pub fn equi_join(&self, left_col: &str, other: &Relation, right_col: &str) -> Relation {
        let li = self.schema.col_required(left_col);
        let ri = other.schema.col_required(right_col);
        let out_schema = self.schema.join(&other.schema, "r_");
        // Build on the smaller side.
        let mut rows = Vec::new();
        if self.len() <= other.len() {
            let mut table: HashMap<&Value, Vec<&Vec<Value>>> = HashMap::new();
            for r in &self.rows {
                if !r[li].is_null() {
                    table.entry(&r[li]).or_default().push(r);
                }
            }
            for r2 in &other.rows {
                if r2[ri].is_null() {
                    continue;
                }
                if let Some(matches) = table.get(&r2[ri]) {
                    for r1 in matches {
                        let mut row = (*r1).clone();
                        row.extend(r2.iter().cloned());
                        rows.push(row);
                    }
                }
            }
        } else {
            let mut table: HashMap<&Value, Vec<&Vec<Value>>> = HashMap::new();
            for r in &other.rows {
                if !r[ri].is_null() {
                    table.entry(&r[ri]).or_default().push(r);
                }
            }
            for r1 in &self.rows {
                if r1[li].is_null() {
                    continue;
                }
                if let Some(matches) = table.get(&r1[li]) {
                    for r2 in matches {
                        let mut row = r1.clone();
                        row.extend(r2.iter().cloned());
                        rows.push(row);
                    }
                }
            }
        }
        Relation {
            schema: out_schema,
            rows,
        }
    }

    /// Bag union (schemas must match).
    pub fn union_all(&self, other: &Relation) -> Relation {
        assert_eq!(self.schema, other.schema, "union schema mismatch");
        let mut rows = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Duplicate elimination.
    pub fn distinct(&self) -> Relation {
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<Vec<Value>> = self
            .rows
            .iter()
            .filter(|r| seen.insert((*r).clone()))
            .cloned()
            .collect();
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Group by `group_cols` and compute one aggregate. The output schema
    /// is `group_cols ++ [agg_name]`.
    pub fn aggregate(
        &self,
        group_cols: &[&str],
        agg: Agg,
        agg_col: Option<&str>,
        agg_name: &str,
    ) -> Relation {
        let gidx: Vec<usize> = group_cols
            .iter()
            .map(|c| self.schema.col_required(c))
            .collect();
        let aidx = agg_col.map(|c| self.schema.col_required(c));
        let mut groups: HashMap<Vec<Value>, Value> = HashMap::new();
        let mut order: Vec<Vec<Value>> = Vec::new();
        for r in &self.rows {
            let key: Vec<Value> = gidx.iter().map(|&i| r[i].clone()).collect();
            let is_new = !groups.contains_key(&key);
            let slot = groups.entry(key.clone()).or_insert_with(|| match agg {
                Agg::Count => Value::Int(0),
                Agg::Min | Agg::Max => Value::Null,
            });
            match agg {
                Agg::Count => *slot = Value::Int(slot.as_int() + 1),
                Agg::Min => {
                    let v = &r[aidx.expect("Min needs a column")];
                    if slot.is_null() || (!v.is_null() && v < slot) {
                        *slot = v.clone();
                    }
                }
                Agg::Max => {
                    let v = &r[aidx.expect("Max needs a column")];
                    if slot.is_null() || (!v.is_null() && v > slot) {
                        *slot = v.clone();
                    }
                }
            }
            if is_new {
                order.push(key);
            }
        }
        let mut cols: Vec<(&str, crate::schema::ColType)> = group_cols
            .iter()
            .map(|c| {
                let col = &self.schema.columns()[self.schema.col_required(c)];
                (*c, col.ty)
            })
            .collect();
        let agg_ty = match agg {
            Agg::Count => crate::schema::ColType::Int,
            Agg::Min | Agg::Max => aidx
                .map(|i| self.schema.columns()[i].ty)
                .unwrap_or(crate::schema::ColType::Int),
        };
        cols.push((agg_name, agg_ty));
        let schema = Schema::new(cols);
        let rows = order
            .into_iter()
            .map(|key| {
                let v = groups[&key].clone();
                let mut row = key;
                row.push(v);
                row
            })
            .collect();
        Relation { schema, rows }
    }

    /// Sort rows by the given columns (ascending, NULLs first).
    pub fn sort_by(&self, cols: &[&str]) -> Relation {
        let idxs: Vec<usize> = cols.iter().map(|c| self.schema.col_required(c)).collect();
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for &i in &idxs {
                match a[i].cmp(&b[i]) {
                    std::cmp::Ordering::Equal => continue,
                    o => return o,
                }
            }
            std::cmp::Ordering::Equal
        });
        Relation {
            schema: self.schema.clone(),
            rows,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for r in &self.rows {
            for (i, v) in r.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;

    fn people() -> Relation {
        Relation::new(
            Schema::new(vec![("id", ColType::Int), ("name", ColType::Text)]),
            vec![
                vec![1.into(), "ann".into()],
                vec![2.into(), "bob".into()],
                vec![3.into(), "cho".into()],
            ],
        )
    }

    fn edges() -> Relation {
        Relation::new(
            Schema::new(vec![("src", ColType::Int), ("dst", ColType::Int)]),
            vec![
                vec![1.into(), 2.into()],
                vec![2.into(), 3.into()],
                vec![1.into(), 3.into()],
            ],
        )
    }

    #[test]
    fn select_and_project() {
        let p = people();
        let r = p.select(&Predicate::Ge("id".into(), Value::Int(2)));
        assert_eq!(r.len(), 2);
        let names = r.project(&["name"]);
        assert_eq!(names.rows()[0], vec![Value::from("bob")]);
        assert_eq!(names.schema().arity(), 1);
    }

    #[test]
    fn equi_join_matches_pairs() {
        let j = people().equi_join("id", &edges(), "src");
        assert_eq!(j.len(), 3);
        assert!(j.schema().col("name").is_some());
        assert!(j.schema().col("dst").is_some());
        // ann appears twice (two outgoing edges).
        let anns = j.select(&Predicate::Eq("name".into(), Value::from("ann")));
        assert_eq!(anns.len(), 2);
    }

    #[test]
    fn join_prefixes_clashing_columns() {
        let a = people();
        let j = a.equi_join("id", &a, "id");
        assert_eq!(j.len(), 3);
        assert!(j.schema().col("r_id").is_some());
        assert!(j.schema().col("r_name").is_some());
    }

    #[test]
    fn join_skips_nulls() {
        let a = Relation::new(
            Schema::new(vec![("x", ColType::Int)]),
            vec![vec![Value::Null], vec![Value::Int(1)]],
        );
        let j = a.equi_join("x", &a, "x");
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn union_and_distinct() {
        let p = people();
        let u = p.union_all(&p);
        assert_eq!(u.len(), 6);
        assert_eq!(u.distinct().len(), 3);
    }

    #[test]
    fn aggregate_count_min_max() {
        let e = edges();
        let counts = e.aggregate(&["src"], Agg::Count, None, "n");
        let m: HashMap<i64, i64> = counts
            .rows()
            .iter()
            .map(|r| (r[0].as_int(), r[1].as_int()))
            .collect();
        assert_eq!(m[&1], 2);
        assert_eq!(m[&2], 1);

        let mins = e.aggregate(&["src"], Agg::Min, Some("dst"), "min_dst");
        let m: HashMap<i64, i64> = mins
            .rows()
            .iter()
            .map(|r| (r[0].as_int(), r[1].as_int()))
            .collect();
        assert_eq!(m[&1], 2);

        let maxs = e.aggregate(&[], Agg::Max, Some("dst"), "max_dst");
        assert_eq!(maxs.len(), 1);
        assert_eq!(maxs.rows()[0][0].as_int(), 3);
    }

    #[test]
    fn sort_is_stable_by_columns() {
        let e = edges().sort_by(&["dst", "src"]);
        let firsts: Vec<i64> = e.rows().iter().map(|r| r[1].as_int()).collect();
        assert_eq!(firsts, vec![2, 3, 3]);
    }

    #[test]
    fn rename_column() {
        let p = people().rename("name", "label");
        assert!(p.schema().col("label").is_some());
        assert!(p.schema().col("name").is_none());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut p = people();
        p.push(vec![Value::Int(9)]);
    }
}
