//! Relational query plans: composable operator trees over a [`Database`],
//! with a rule-based optimizer and EXPLAIN rendering.
//!
//! The host-orchestrated functions in [`crate::algebra`] issue operator
//! calls imperatively; this module is the declarative counterpart — the
//! shape an external SQL engine would receive. Plans support:
//!
//! * `Scan` (with optional residual predicate), `Select`, `Project`,
//!   `EquiJoin`, `Distinct`, `Aggregate`, `Sort`;
//! * an optimizer that (a) pushes selections below projections and joins
//!   and (b) converts `Select(Eq)` directly over a scan into an
//!   index-backed point lookup;
//! * cost counters (rows scanned / produced per operator) for the P5
//!   experiment's honesty about where relational time goes.

use crate::database::Database;
use crate::predicate::Predicate;
use crate::relation::{Agg, Relation};
use crate::value::Value;
use std::fmt::Write as _;

/// A relational operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum RelPlan {
    /// Full table scan, with an optional pushed-down filter and an
    /// optional index probe `(column, value)` chosen by the optimizer.
    Scan {
        /// Table name.
        table: String,
        /// Residual predicate applied during the scan.
        filter: Option<Predicate>,
        /// Index point-probe installed by [`optimize`].
        probe: Option<(String, Value)>,
    },
    /// `σ_pred(input)`.
    Select {
        /// The predicate.
        pred: Predicate,
        /// Operand.
        input: Box<RelPlan>,
    },
    /// `π_cols(input)`.
    Project {
        /// Column names to keep, in order.
        cols: Vec<String>,
        /// Operand.
        input: Box<RelPlan>,
    },
    /// Hash equi-join.
    EquiJoin {
        /// Left operand.
        left: Box<RelPlan>,
        /// Left join column.
        left_col: String,
        /// Right operand.
        right: Box<RelPlan>,
        /// Right join column.
        right_col: String,
    },
    /// Duplicate elimination.
    Distinct {
        /// Operand.
        input: Box<RelPlan>,
    },
    /// Group-by aggregate.
    Aggregate {
        /// Grouping columns.
        group: Vec<String>,
        /// Aggregate function.
        agg: Agg,
        /// Aggregated column (None for COUNT).
        col: Option<String>,
        /// Output column name for the aggregate.
        name: String,
        /// Operand.
        input: Box<RelPlan>,
    },
    /// Sort by columns ascending.
    Sort {
        /// Sort columns.
        cols: Vec<String>,
        /// Operand.
        input: Box<RelPlan>,
    },
}

/// Execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Rows produced by all operators.
    pub rows_produced: u64,
    /// Index probes served.
    pub index_probes: u64,
}

impl RelPlan {
    /// Convenience: a bare table scan.
    pub fn scan(table: impl Into<String>) -> RelPlan {
        RelPlan::Scan {
            table: table.into(),
            filter: None,
            probe: None,
        }
    }

    /// Execute against a database.
    pub fn execute(&self, db: &Database, stats: &mut RelStats) -> Relation {
        let out = match self {
            RelPlan::Scan {
                table,
                filter,
                probe,
            } => {
                let rel = db.table(table);
                let base = match probe {
                    Some((col, v)) => {
                        stats.index_probes += 1;
                        let idx = db.index(table, col);
                        let rows: Vec<Vec<Value>> =
                            idx.get(v).iter().map(|&i| rel.rows()[i].clone()).collect();
                        stats.rows_scanned += rows.len() as u64;
                        Relation::new(rel.schema().clone(), rows)
                    }
                    None => {
                        stats.rows_scanned += rel.len() as u64;
                        rel.clone()
                    }
                };
                match filter {
                    Some(p) => base.select(p),
                    None => base,
                }
            }
            RelPlan::Select { pred, input } => input.execute(db, stats).select(pred),
            RelPlan::Project { cols, input } => {
                let c: Vec<&str> = cols.iter().map(String::as_str).collect();
                input.execute(db, stats).project(&c)
            }
            RelPlan::EquiJoin {
                left,
                left_col,
                right,
                right_col,
            } => {
                let l = left.execute(db, stats);
                let r = right.execute(db, stats);
                l.equi_join(left_col, &r, right_col)
            }
            RelPlan::Distinct { input } => input.execute(db, stats).distinct(),
            RelPlan::Aggregate {
                group,
                agg,
                col,
                name,
                input,
            } => {
                let g: Vec<&str> = group.iter().map(String::as_str).collect();
                input
                    .execute(db, stats)
                    .aggregate(&g, *agg, col.as_deref(), name)
            }
            RelPlan::Sort { cols, input } => {
                let c: Vec<&str> = cols.iter().map(String::as_str).collect();
                input.execute(db, stats).sort_by(&c)
            }
        };
        stats.rows_produced += out.len() as u64;
        out
    }

    /// Render as an indented operator tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("  ");
        }
        match self {
            RelPlan::Scan {
                table,
                filter,
                probe,
            } => {
                write!(out, "Scan {table}").unwrap();
                if let Some((c, v)) = probe {
                    write!(out, " [index {c} = {v}]").unwrap();
                }
                if let Some(p) = filter {
                    write!(out, " [filter {p:?}]").unwrap();
                }
                out.push('\n');
            }
            RelPlan::Select { pred, input } => {
                writeln!(out, "Select {pred:?}").unwrap();
                input.render_into(out, level + 1);
            }
            RelPlan::Project { cols, input } => {
                writeln!(out, "Project {cols:?}").unwrap();
                input.render_into(out, level + 1);
            }
            RelPlan::EquiJoin {
                left,
                left_col,
                right,
                right_col,
            } => {
                writeln!(out, "EquiJoin {left_col} = {right_col}").unwrap();
                left.render_into(out, level + 1);
                right.render_into(out, level + 1);
            }
            RelPlan::Distinct { input } => {
                writeln!(out, "Distinct").unwrap();
                input.render_into(out, level + 1);
            }
            RelPlan::Aggregate {
                group,
                agg,
                col,
                name,
                input,
            } => {
                writeln!(
                    out,
                    "Aggregate {agg:?}({col:?}) as {name} group by {group:?}"
                )
                .unwrap();
                input.render_into(out, level + 1);
            }
            RelPlan::Sort { cols, input } => {
                writeln!(out, "Sort {cols:?}").unwrap();
                input.render_into(out, level + 1);
            }
        }
    }
}

/// Push `Select` operators down to the scans they cover, and convert
/// equality selections on base columns into index probes.
pub fn optimize(plan: RelPlan) -> RelPlan {
    push_select(plan, Vec::new())
}

fn push_select(plan: RelPlan, mut pending: Vec<Predicate>) -> RelPlan {
    match plan {
        RelPlan::Select { pred, input } => {
            pending.push(pred);
            push_select(*input, pending)
        }
        RelPlan::Scan {
            table,
            filter,
            probe,
        } => {
            // Split one Eq predicate into an index probe; conjoin the rest.
            let mut probe = probe;
            let mut residual: Vec<Predicate> = filter.into_iter().collect();
            for p in pending {
                match (&probe, &p) {
                    (None, Predicate::Eq(col, v)) => probe = Some((col.clone(), v.clone())),
                    _ => residual.push(p),
                }
            }
            let filter = match residual.len() {
                0 => None,
                1 => Some(residual.pop().unwrap()),
                _ => Some(Predicate::And(residual)),
            };
            RelPlan::Scan {
                table,
                filter,
                probe,
            }
        }
        // Selections do not commute through projections that drop their
        // columns, aggregates, or joins in general without schema
        // analysis; re-materialize them here and recurse clean.
        other => {
            let inner = match other {
                RelPlan::Project { cols, input } => RelPlan::Project {
                    cols,
                    input: Box::new(push_select(*input, Vec::new())),
                },
                RelPlan::EquiJoin {
                    left,
                    left_col,
                    right,
                    right_col,
                } => RelPlan::EquiJoin {
                    left: Box::new(push_select(*left, Vec::new())),
                    left_col,
                    right: Box::new(push_select(*right, Vec::new())),
                    right_col,
                },
                RelPlan::Distinct { input } => RelPlan::Distinct {
                    input: Box::new(push_select(*input, Vec::new())),
                },
                RelPlan::Aggregate {
                    group,
                    agg,
                    col,
                    name,
                    input,
                } => RelPlan::Aggregate {
                    group,
                    agg,
                    col,
                    name,
                    input: Box::new(push_select(*input, Vec::new())),
                },
                RelPlan::Sort { cols, input } => RelPlan::Sort {
                    cols,
                    input: Box::new(push_select(*input, Vec::new())),
                },
                scan_or_select => scan_or_select,
            };
            let mut out = inner;
            for p in pending {
                out = RelPlan::Select {
                    pred: p,
                    input: Box::new(out),
                };
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use xfrag_doc::parse_str;

    fn db() -> Database {
        encode_document(&parse_str("<a><b>hello world</b><c>world</c><d>quiet</d></a>").unwrap())
    }

    #[test]
    fn scan_select_project() {
        let db = db();
        let plan = RelPlan::Project {
            cols: vec!["node".into()],
            input: Box::new(RelPlan::Select {
                pred: Predicate::Eq("term".into(), Value::from("world")),
                input: Box::new(RelPlan::scan("keyword")),
            }),
        };
        let mut st = RelStats::default();
        let out = plan.execute(&db, &mut st);
        let nodes: Vec<i64> = out.rows().iter().map(|r| r[0].as_int()).collect();
        assert_eq!(nodes, vec![1, 2]);
        assert_eq!(st.rows_scanned, db.table("keyword").len() as u64);
        assert_eq!(st.index_probes, 0);
    }

    #[test]
    fn optimizer_installs_index_probe() {
        let db = db();
        let plan = RelPlan::Select {
            pred: Predicate::Eq("term".into(), Value::from("world")),
            input: Box::new(RelPlan::scan("keyword")),
        };
        let opt = optimize(plan.clone());
        assert!(matches!(
            &opt,
            RelPlan::Scan { probe: Some((c, _)), .. } if c == "term"
        ));
        // Same result, far fewer rows touched.
        let mut st_full = RelStats::default();
        let mut st_opt = RelStats::default();
        let a = plan.execute(&db, &mut st_full);
        let b = opt.execute(&db, &mut st_opt);
        assert_eq!(a.sort_by(&["node"]).rows(), b.sort_by(&["node"]).rows());
        assert!(st_opt.rows_scanned < st_full.rows_scanned);
        assert_eq!(st_opt.index_probes, 1);
    }

    #[test]
    fn stacked_selects_collapse_into_scan() {
        let db = db();
        let plan = RelPlan::Select {
            pred: Predicate::Le("node".into(), Value::Int(2)),
            input: Box::new(RelPlan::Select {
                pred: Predicate::Eq("term".into(), Value::from("world")),
                input: Box::new(RelPlan::scan("keyword")),
            }),
        };
        let opt = optimize(plan.clone());
        // One probe + residual filter, no Select nodes left.
        match &opt {
            RelPlan::Scan { probe, filter, .. } => {
                assert!(probe.is_some());
                assert!(filter.is_some());
            }
            other => panic!("expected fused scan, got {other:?}"),
        }
        let mut st1 = RelStats::default();
        let mut st2 = RelStats::default();
        assert_eq!(
            plan.execute(&db, &mut st1).sort_by(&["node"]).rows(),
            opt.execute(&db, &mut st2).sort_by(&["node"]).rows()
        );
    }

    #[test]
    fn join_plan_end_to_end() {
        let db = db();
        // Postings for "world" joined with the node table: tags of the
        // nodes containing the term.
        let plan = RelPlan::Project {
            cols: vec!["tag".into()],
            input: Box::new(RelPlan::EquiJoin {
                left: Box::new(optimize(RelPlan::Select {
                    pred: Predicate::Eq("term".into(), Value::from("world")),
                    input: Box::new(RelPlan::scan("keyword")),
                })),
                left_col: "node".into(),
                right: Box::new(RelPlan::scan("node")),
                right_col: "id".into(),
            }),
        };
        let mut st = RelStats::default();
        let out = plan.execute(&db, &mut st);
        let mut tags: Vec<&str> = out.rows().iter().map(|r| r[0].as_text()).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec!["b", "c"]);
    }

    #[test]
    fn aggregate_and_sort_plan() {
        let db = db();
        let plan = RelPlan::Sort {
            cols: vec!["n".into()],
            input: Box::new(RelPlan::Aggregate {
                group: vec!["term".into()],
                agg: Agg::Count,
                col: None,
                name: "n".into(),
                input: Box::new(RelPlan::scan("keyword")),
            }),
        };
        let mut st = RelStats::default();
        let out = plan.execute(&db, &mut st);
        // "world" appears twice — it must sort last with the max count.
        let last = out.rows().last().unwrap();
        assert_eq!(last[0].as_text(), "world");
        assert_eq!(last[1].as_int(), 2);
    }

    #[test]
    fn explain_renders_operators() {
        let plan = optimize(RelPlan::Distinct {
            input: Box::new(RelPlan::Select {
                pred: Predicate::Eq("term".into(), Value::from("x")),
                input: Box::new(RelPlan::scan("keyword")),
            }),
        });
        let r = plan.render();
        assert!(r.contains("Distinct"));
        assert!(r.contains("index term = x"), "{r}");
    }
}
