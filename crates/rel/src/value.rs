//! Scalar values stored in relations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed scalar. Nulls are represented explicitly so the `parent` of
/// the document root can be stored faithfully.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL. Ordered before every non-null (only for deterministic
    /// sorting — predicates treat comparisons with NULL as false, as SQL
    /// does).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// Extract an integer; panics on type confusion, which is a schema
    /// bug, not a data error.
    #[track_caller]
    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(i) => *i,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// Extract a string slice.
    #[track_caller]
    pub fn as_text(&self) -> &str {
        match self {
            Value::Text(s) => s,
            other => panic!("expected Text, found {other:?}"),
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// SQL-style comparison: NULL compares as unknown (None).
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
    }

    #[test]
    fn accessors_and_nulls() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Text("a".into()).as_text(), "a");
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Int(2)),
            Some(std::cmp::Ordering::Less)
        );
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn as_int_panics_on_text() {
        Value::Text("x".into()).as_int();
    }
}
