//! Row predicates for relational selection.

use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A boolean expression over one row. Column references are by name and
/// resolved against the relation's schema at evaluation time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Predicate {
    /// `column = literal`.
    Eq(String, Value),
    /// `column <> literal`.
    Ne(String, Value),
    /// `column <= literal`.
    Le(String, Value),
    /// `column >= literal`.
    Ge(String, Value),
    /// `column < literal`.
    Lt(String, Value),
    /// `left_column = right_column`.
    ColEq(String, String),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation (SQL three-valued logic collapsed: unknown → false, so
    /// `Not` is *not* the complement in the presence of NULLs — same as a
    /// WHERE clause).
    Not(Box<Predicate>),
    /// `column IS NULL`.
    IsNull(String),
}

impl Predicate {
    /// Evaluate against a row. Comparisons involving NULL yield false.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> bool {
        use std::cmp::Ordering::*;
        match self {
            Predicate::Eq(c, v) => row[schema.col_required(c)].sql_cmp(v) == Some(Equal),
            Predicate::Ne(c, v) => matches!(
                row[schema.col_required(c)].sql_cmp(v),
                Some(Less) | Some(Greater)
            ),
            Predicate::Le(c, v) => {
                matches!(
                    row[schema.col_required(c)].sql_cmp(v),
                    Some(Less) | Some(Equal)
                )
            }
            Predicate::Ge(c, v) => matches!(
                row[schema.col_required(c)].sql_cmp(v),
                Some(Greater) | Some(Equal)
            ),
            Predicate::Lt(c, v) => row[schema.col_required(c)].sql_cmp(v) == Some(Less),
            Predicate::ColEq(a, b) => {
                row[schema.col_required(a)].sql_cmp(&row[schema.col_required(b)]) == Some(Equal)
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(schema, row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(schema, row)),
            Predicate::Not(p) => !p.eval(schema, row),
            Predicate::IsNull(c) => row[schema.col_required(c)].is_null(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColType;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColType::Int),
            ("parent", ColType::Int),
            ("tag", ColType::Text),
        ])
    }

    fn row(id: i64, parent: Value, tag: &str) -> Vec<Value> {
        vec![Value::Int(id), parent, Value::from(tag)]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row(5, Value::Int(2), "par");
        assert!(Predicate::Eq("id".into(), Value::Int(5)).eval(&s, &r));
        assert!(Predicate::Ne("id".into(), Value::Int(4)).eval(&s, &r));
        assert!(Predicate::Le("id".into(), Value::Int(5)).eval(&s, &r));
        assert!(Predicate::Ge("id".into(), Value::Int(5)).eval(&s, &r));
        assert!(Predicate::Lt("id".into(), Value::Int(6)).eval(&s, &r));
        assert!(Predicate::Eq("tag".into(), Value::from("par")).eval(&s, &r));
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let r = row(0, Value::Null, "root");
        assert!(!Predicate::Eq("parent".into(), Value::Int(0)).eval(&s, &r));
        assert!(!Predicate::Ne("parent".into(), Value::Int(0)).eval(&s, &r));
        assert!(!Predicate::Le("parent".into(), Value::Int(0)).eval(&s, &r));
        assert!(Predicate::IsNull("parent".into()).eval(&s, &r));
        assert!(!Predicate::IsNull("id".into()).eval(&s, &r));
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let r = row(5, Value::Int(2), "par");
        let p = Predicate::And(vec![
            Predicate::Eq("tag".into(), Value::from("par")),
            Predicate::Or(vec![
                Predicate::Eq("id".into(), Value::Int(9)),
                Predicate::Ge("id".into(), Value::Int(5)),
            ]),
        ]);
        assert!(p.eval(&s, &r));
        assert!(!Predicate::Not(Box::new(p)).eval(&s, &r));
    }

    #[test]
    fn column_to_column() {
        let s = Schema::new(vec![("a", ColType::Int), ("b", ColType::Int)]);
        assert!(Predicate::ColEq("a".into(), "b".into()).eval(&s, &[Value::Int(3), Value::Int(3)]));
        assert!(!Predicate::ColEq("a".into(), "b".into()).eval(&s, &[Value::Int(3), Value::Null]));
    }
}
