//! A named collection of relations plus its index cache.

use crate::index::{BTreeIndex, IndexCache};
use crate::relation::Relation;
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory database: tables by name, with lazily-built indexes.
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Relation>,
    indexes: IndexCache,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table; invalidates cached indexes.
    pub fn put(&mut self, name: impl Into<String>, rel: Relation) {
        self.tables.insert(name.into(), rel);
        self.indexes.invalidate();
    }

    /// Fetch a table.
    #[track_caller]
    pub fn table(&self, name: &str) -> &Relation {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("no table {name:?}"))
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    /// Index for `table.col`, built on first use.
    pub fn index(&self, table: &str, col: &str) -> Arc<BTreeIndex> {
        self.indexes.get_or_build(table, col, self.table(table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Schema};
    use crate::value::Value;

    #[test]
    fn put_get_and_index() {
        let mut db = Database::new();
        db.put(
            "t",
            Relation::new(
                Schema::new(vec![("id", ColType::Int)]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ),
        );
        assert!(db.has_table("t"));
        assert_eq!(db.table("t").len(), 2);
        assert_eq!(db.table_names(), vec!["t"]);
        let idx = db.index("t", "id");
        assert_eq!(idx.get(&Value::Int(2)), &[1]);
    }

    #[test]
    fn replace_invalidates_indexes() {
        let mut db = Database::new();
        let schema = Schema::new(vec![("id", ColType::Int)]);
        db.put(
            "t",
            Relation::new(schema.clone(), vec![vec![Value::Int(1)]]),
        );
        let _ = db.index("t", "id");
        db.put("t", Relation::new(schema, vec![vec![Value::Int(9)]]));
        let idx = db.index("t", "id");
        assert_eq!(idx.get(&Value::Int(9)), &[0]);
        assert_eq!(idx.get(&Value::Int(1)), &[] as &[usize]);
    }

    #[test]
    #[should_panic(expected = "no table")]
    fn missing_table_panics() {
        Database::new().table("ghost");
    }
}
