#![warn(missing_docs)]

//! # xfrag-rel — the relational implementation
//!
//! The paper closes §7 claiming "the model can be easily implemented on
//! top of an existing relational database" (its reference \[13\] sketches
//! the framework). This crate substantiates the claim end-to-end:
//!
//! * a small but real in-memory relational engine — typed [`Value`]s and
//!   [`Schema`]s, [`Relation`]s with selection / projection / equi-join /
//!   union / distinct / grouped aggregation, hash and B-tree column
//!   indexes with a lazy cache ([`relation`], [`index`]);
//! * the document encoding of [`encode`] — a `node` table
//!   `(id, parent, depth, size, tag)`, a `keyword` postings table
//!   `(term, node)`, and the ancestor-or-self closure `anc
//!   (node, ancestor, adepth)` that makes paths and LCAs joins rather
//!   than pointer chasing;
//! * the tree algebra over those tables ([`algebra`]): fragments as a
//!   `(fid, node)` relation, fragment join via closure-table joins,
//!   pairwise join, fixed points and size/height/width selections as
//!   grouped aggregates;
//! * [`eval::evaluate_relational`] — the full query pipeline, returning
//!   ordinary [`xfrag_core::FragmentSet`]s so the differential tests can
//!   compare it against the native engine answer for answer.

pub mod algebra;
pub mod database;
pub mod edge;
pub mod encode;
pub mod eval;
pub mod index;
pub mod plan;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod sql;
pub mod value;

pub use database::Database;
pub use encode::encode_document;
pub use eval::evaluate_relational;
pub use plan::{optimize as optimize_rel_plan, RelPlan, RelStats};
pub use predicate::Predicate;
pub use relation::Relation;
pub use schema::{ColType, Column, Schema};
pub use sql::compile as compile_sql;
pub use value::Value;
