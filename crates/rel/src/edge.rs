//! Edge-based path/LCA evaluation — the ablation partner of the closure
//! table.
//!
//! [`crate::encode`] materializes the ancestor-or-self closure `anc`
//! (O(N·h) rows) so paths and LCAs are joins. The classic alternative
//! stores only parent *edges* (already present in the `node` table) and
//! walks them with indexed point lookups — O(h) probes per path, no
//! closure storage. This module implements that variant so the
//! `relational` ablation bench can price the trade:
//!
//! * closure: more space, one join per path computation;
//! * edges: minimal space, `O(depth)` index probes per path.
//!
//! Both must agree exactly — differential-tested here and in the
//! property suite.

use crate::database::Database;
use crate::value::Value;

/// Fetch `(parent, depth)` of a node via the `node` table's `id` index.
fn node_row(db: &Database, id: u32) -> (Option<u32>, i64) {
    let idx = db.index("node", "id");
    let rows = idx.get(&Value::from(id));
    let row = &db.table("node").rows()[rows[0]];
    let parent = match &row[1] {
        Value::Null => None,
        v => Some(v.as_int() as u32),
    };
    (parent, row[2].as_int())
}

/// LCA by depth-aligned parent walking over the edge encoding.
pub fn lca_edges(db: &Database, a: u32, b: u32) -> u32 {
    let (mut x, mut y) = (a, b);
    let (_, mut dx) = node_row(db, x);
    let (_, mut dy) = node_row(db, y);
    while dx > dy {
        x = node_row(db, x).0.expect("non-root has parent");
        dx -= 1;
    }
    while dy > dx {
        y = node_row(db, y).0.expect("non-root has parent");
        dy -= 1;
    }
    while x != y {
        x = node_row(db, x).0.expect("non-root has parent");
        y = node_row(db, y).0.expect("non-root has parent");
    }
    x
}

/// Path between `a` and `b` (inclusive, sorted) over the edge encoding.
pub fn path_edges(db: &Database, a: u32, b: u32) -> Vec<u32> {
    let l = lca_edges(db, a, b);
    let mut out = Vec::new();
    for side in [a, b] {
        let mut x = side;
        while x != l {
            out.push(x);
            x = node_row(db, x).0.expect("non-root has parent");
        }
    }
    out.push(l);
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra;
    use crate::encode::encode_document;
    use xfrag_doc::parse_str;

    #[test]
    fn edge_agrees_with_closure() {
        let d = parse_str("<r><a><b/><c><d/></c></a><e><f/></e></r>").unwrap();
        let db = encode_document(&d);
        let n = d.len() as u32;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(
                    lca_edges(&db, a, b),
                    algebra::lca(&db, a, b),
                    "lca({a},{b})"
                );
                assert_eq!(
                    path_edges(&db, a, b),
                    algebra::path_nodes(&db, a, b),
                    "path({a},{b})"
                );
            }
        }
    }

    #[test]
    fn self_path() {
        let d = parse_str("<r><a/></r>").unwrap();
        let db = encode_document(&d);
        assert_eq!(lca_edges(&db, 1, 1), 1);
        assert_eq!(path_edges(&db, 1, 1), vec![1]);
        assert_eq!(lca_edges(&db, 0, 1), 0);
    }
}
