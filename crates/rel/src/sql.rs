//! A small SQL frontend for the relational engine.
//!
//! The paper's deployment story is "on top of an existing relational
//! database" — which means the operations ultimately arrive as SQL. This
//! module closes that loop with a deliberately small, fully-tested subset
//! compiled to [`RelPlan`]s:
//!
//! ```text
//! SELECT <col, ...> | *           projection
//! FROM   <table>                  one base table
//! [WHERE <cond> [AND <cond>]*]    conds: col = lit | col <> lit |
//!                                        col < lit | col <= lit |
//!                                        col > lit | col >= lit |
//!                                        col IS NULL
//! [ORDER BY <col, ...>]           ascending
//! [DISTINCT]                      via SELECT DISTINCT
//! ```
//!
//! Literals: integers and single-quoted strings. Keywords are
//! case-insensitive; identifiers are case-sensitive. The compiled plan
//! goes through [`crate::plan::optimize`], so equality predicates become
//! index probes.

use crate::plan::{optimize, RelPlan};
use crate::predicate::Predicate;
use crate::value::Value;

/// Errors from SQL parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Expected a keyword/token that was not there.
    Expected(&'static str, String),
    /// The statement ended early.
    UnexpectedEnd(&'static str),
    /// A malformed literal.
    BadLiteral(String),
    /// Trailing tokens after a complete statement.
    Trailing(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Expected(what, got) => write!(f, "expected {what}, found {got:?}"),
            SqlError::UnexpectedEnd(what) => write!(f, "unexpected end of statement ({what})"),
            SqlError::BadLiteral(l) => write!(f, "malformed literal {l:?}"),
            SqlError::Trailing(t) => write!(f, "unexpected trailing tokens {t:?}"),
        }
    }
}

impl std::error::Error for SqlError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Star,
    Comma,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(input: &str) -> Result<Vec<Tok>, SqlError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '*' => {
                chars.next();
                toks.push(Tok::Star);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '=' => {
                chars.next();
                toks.push(Tok::Eq);
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        toks.push(Tok::Le);
                    }
                    Some('>') => {
                        chars.next();
                        toks.push(Tok::Ne);
                    }
                    _ => toks.push(Tok::Lt),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    toks.push(Tok::Ge);
                } else {
                    toks.push(Tok::Gt);
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(SqlError::BadLiteral(format!("'{s}"))),
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = s.parse::<i64>().map_err(|_| SqlError::BadLiteral(s))?;
                toks.push(Tok::Int(v));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => return Err(SqlError::Expected("token", other.to_string())),
        }
    }
    Ok(toks)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }
    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }
    fn keyword(&mut self, kw: &'static str) -> Result<(), SqlError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            Some(other) => Err(SqlError::Expected(kw, format!("{other:?}"))),
            None => Err(SqlError::UnexpectedEnd(kw)),
        }
    }
    fn try_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }
    fn ident(&mut self, what: &'static str) -> Result<String, SqlError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(other) => Err(SqlError::Expected(what, format!("{other:?}"))),
            None => Err(SqlError::UnexpectedEnd(what)),
        }
    }
    fn literal(&mut self) -> Result<Value, SqlError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Str(s)) => Ok(Value::Text(s)),
            Some(other) => Err(SqlError::Expected("literal", format!("{other:?}"))),
            None => Err(SqlError::UnexpectedEnd("literal")),
        }
    }
}

/// Parse a statement and compile it into an optimized [`RelPlan`].
pub fn compile(sql: &str) -> Result<RelPlan, SqlError> {
    let mut p = P {
        toks: lex(sql)?,
        pos: 0,
    };
    p.keyword("SELECT")?;
    let distinct = p.try_keyword("DISTINCT");

    // Projection list.
    let mut cols: Vec<String> = Vec::new();
    let star = if p.peek() == Some(&Tok::Star) {
        p.next();
        true
    } else {
        loop {
            cols.push(p.ident("column name")?);
            if p.peek() == Some(&Tok::Comma) {
                p.next();
            } else {
                break;
            }
        }
        false
    };

    p.keyword("FROM")?;
    let table = p.ident("table name")?;

    // WHERE clause.
    let mut preds: Vec<Predicate> = Vec::new();
    if p.try_keyword("WHERE") {
        loop {
            let col = p.ident("column name")?;
            let pred = if p.try_keyword("IS") {
                p.keyword("NULL")?;
                Predicate::IsNull(col)
            } else {
                match p.next() {
                    Some(Tok::Eq) => Predicate::Eq(col, p.literal()?),
                    Some(Tok::Ne) => Predicate::Ne(col, p.literal()?),
                    Some(Tok::Lt) => Predicate::Lt(col, p.literal()?),
                    Some(Tok::Le) => Predicate::Le(col, p.literal()?),
                    Some(Tok::Gt) => {
                        // col > v  ≡  ¬(col <= v) with non-null col; engine
                        // predicates treat NULL as false either way.
                        Predicate::Not(Box::new(Predicate::Le(col, p.literal()?)))
                    }
                    Some(Tok::Ge) => Predicate::Ge(col, p.literal()?),
                    Some(other) => {
                        return Err(SqlError::Expected(
                            "comparison operator",
                            format!("{other:?}"),
                        ))
                    }
                    None => return Err(SqlError::UnexpectedEnd("comparison")),
                }
            };
            preds.push(pred);
            if !p.try_keyword("AND") {
                break;
            }
        }
    }

    // ORDER BY.
    let mut order: Vec<String> = Vec::new();
    if p.try_keyword("ORDER") {
        p.keyword("BY")?;
        loop {
            order.push(p.ident("column name")?);
            if p.peek() == Some(&Tok::Comma) {
                p.next();
            } else {
                break;
            }
        }
    }

    if let Some(t) = p.peek() {
        return Err(SqlError::Trailing(format!("{t:?}")));
    }

    // Assemble: Scan → Select* → Project → Distinct → Sort.
    let mut plan = RelPlan::scan(table);
    for pred in preds {
        plan = RelPlan::Select {
            pred,
            input: Box::new(plan),
        };
    }
    if !star {
        plan = RelPlan::Project {
            cols,
            input: Box::new(plan),
        };
    }
    if distinct {
        plan = RelPlan::Distinct {
            input: Box::new(plan),
        };
    }
    if !order.is_empty() {
        plan = RelPlan::Sort {
            cols: order,
            input: Box::new(plan),
        };
    }
    Ok(optimize(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::encode::encode_document;
    use crate::plan::RelStats;
    use xfrag_doc::parse_str;

    fn db() -> Database {
        encode_document(&parse_str("<a><b>hello world</b><c>world</c></a>").unwrap())
    }

    fn run(db: &Database, sql: &str) -> crate::relation::Relation {
        compile(sql).unwrap().execute(db, &mut RelStats::default())
    }

    #[test]
    fn select_star() {
        let db = db();
        let out = run(&db, "SELECT * FROM node");
        assert_eq!(out.len(), 3);
        assert_eq!(out.schema().arity(), 5);
    }

    #[test]
    fn projection_where_order() {
        let db = db();
        let out = run(
            &db,
            "SELECT node FROM keyword WHERE term = 'world' ORDER BY node",
        );
        let nodes: Vec<i64> = out.rows().iter().map(|r| r[0].as_int()).collect();
        assert_eq!(nodes, vec![1, 2]);
    }

    #[test]
    fn where_uses_index_probe() {
        let plan = compile("SELECT node FROM keyword WHERE term = 'world'").unwrap();
        assert!(
            plan.render().contains("index term = world"),
            "{}",
            plan.render()
        );
    }

    #[test]
    fn comparisons_and_conjunction() {
        let db = db();
        let out = run(&db, "SELECT id FROM node WHERE depth >= 1 AND id <= 1");
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0].as_int(), 1);
        let out = run(&db, "SELECT id FROM node WHERE id > 0 ORDER BY id");
        assert_eq!(out.len(), 2);
        let out = run(&db, "SELECT id FROM node WHERE id <> 1");
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn is_null() {
        let db = db();
        let out = run(&db, "SELECT id FROM node WHERE parent IS NULL");
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows()[0][0].as_int(), 0);
    }

    #[test]
    fn distinct() {
        let db = db();
        let all = run(&db, "SELECT node FROM anc");
        let uniq = run(&db, "SELECT DISTINCT node FROM anc");
        assert!(uniq.len() < all.len());
        assert_eq!(uniq.len(), 3);
    }

    #[test]
    fn case_insensitive_keywords() {
        let db = db();
        let out = run(&db, "select id from node where depth = 0");
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn errors() {
        assert!(matches!(compile(""), Err(SqlError::UnexpectedEnd(_))));
        assert!(matches!(
            compile("SELEC * FROM t"),
            Err(SqlError::Expected(..))
        ));
        assert!(matches!(
            compile("SELECT FROM t"),
            Err(SqlError::Expected(..))
        ));
        assert!(matches!(
            compile("SELECT * FROM t WHERE x ="),
            Err(SqlError::UnexpectedEnd(_))
        ));
        assert!(matches!(
            compile("SELECT * FROM t WHERE x = 'unterminated"),
            Err(SqlError::BadLiteral(_))
        ));
        assert!(matches!(
            compile("SELECT * FROM t extra"),
            Err(SqlError::Trailing(_))
        ));
        assert!(matches!(
            compile("SELECT * FROM t WHERE x ! 1"),
            Err(SqlError::Expected(..))
        ));
    }
}
