//! Relation schemas: named, typed columns.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Column data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// 64-bit integer (nullable).
    Int,
    /// UTF-8 text (nullable).
    Text,
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name, unique within a schema.
    pub name: String,
    /// Data type.
    pub ty: ColType,
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema; panics on duplicate column names (a programming
    /// error in table definitions, caught in tests).
    pub fn new(columns: Vec<(&str, ColType)>) -> Self {
        let columns: Vec<Column> = columns
            .into_iter()
            .map(|(name, ty)| Column {
                name: name.to_string(),
                ty,
            })
            .collect();
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|o| o.name == c.name),
                "duplicate column {}",
                c.name
            );
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of a column, panicking with a useful message if absent.
    #[track_caller]
    pub fn col_required(&self, name: &str) -> usize {
        self.col(name)
            .unwrap_or_else(|| panic!("no column {name:?} in schema {self}"))
    }

    /// A new schema with the given columns (projection).
    pub fn project(&self, names: &[&str]) -> Schema {
        Schema {
            columns: names
                .iter()
                .map(|n| self.columns[self.col_required(n)].clone())
                .collect(),
        }
    }

    /// Concatenate two schemas, prefixing clashing names from the right
    /// side with `prefix`.
    pub fn join(&self, other: &Schema, prefix: &str) -> Schema {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            let name = if self.col(&c.name).is_some() {
                format!("{prefix}{}", c.name)
            } else {
                c.name.clone()
            };
            columns.push(Column { name, ty: c.ty });
        }
        Schema { columns }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:?}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_projection() {
        let s = Schema::new(vec![("id", ColType::Int), ("tag", ColType::Text)]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.col("tag"), Some(1));
        assert_eq!(s.col("nope"), None);
        let p = s.project(&["tag"]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.col("tag"), Some(0));
    }

    #[test]
    fn join_prefixes_clashes() {
        let a = Schema::new(vec![("id", ColType::Int), ("x", ColType::Int)]);
        let b = Schema::new(vec![("id", ColType::Int), ("y", ColType::Int)]);
        let j = a.join(&b, "r_");
        assert_eq!(j.arity(), 4);
        assert_eq!(j.col("r_id"), Some(2));
        assert_eq!(j.col("y"), Some(3));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::new(vec![("id", ColType::Int), ("id", ColType::Int)]);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn missing_column_panics_with_context() {
        let s = Schema::new(vec![("id", ColType::Int)]);
        s.col_required("ghost");
    }
}
