//! The tree algebra over relations: fragments as `(fid, node)` rows.
//!
//! A fragment set is a relation `frag(fid, node)`; the fragment's root is
//! `MIN(node)` within its `fid` group (pre-order ids — see `xfrag-doc`).
//! Every operation of the paper's algebra becomes relational:
//!
//! * keyword selection — `σ_{term=k}(keyword)`, each posting a singleton
//!   fragment;
//! * fragment join — the two operands' rows unioned with the *path*
//!   between their roots, computed on the `anc` closure table: the LCA is
//!   the deepest common ancestor (a self-join on `ancestor` + MAX), and
//!   the path is every closure ancestor of either root at depth ≥ the
//!   LCA's;
//! * size / height / width filters — grouped aggregates over `frag`
//!   joined with `node`;
//! * duplicate elimination — fragments are canonicalized by their sorted
//!   node lists (`fid` is a surrogate; two fids with equal node sets are
//!   one fragment).
//!
//! Orchestration (loops over fids, fixed-point iteration) lives in host
//! code, exactly as an external driver program would drive a SQL engine —
//! which is the deployment the paper's \[13\] framework describes.

use crate::database::Database;
use crate::predicate::Predicate;
use crate::relation::{Agg, Relation};
use crate::schema::{ColType, Schema};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Schema of a fragment-set relation.
pub fn frag_schema() -> Schema {
    Schema::new(vec![("fid", ColType::Int), ("node", ColType::Int)])
}

/// A fragment-set relation plus the surrogate-id counter.
#[derive(Debug, Clone)]
pub struct FragRel {
    /// `(fid, node)` rows.
    pub rel: Relation,
    next_fid: i64,
}

impl FragRel {
    /// The empty fragment set.
    pub fn empty() -> Self {
        FragRel {
            rel: Relation::empty(frag_schema()),
            next_fid: 0,
        }
    }

    /// `σ_{keyword=term}(nodes(D))`: one singleton fragment per posting.
    pub fn keyword_select(db: &Database, term: &str) -> Self {
        let postings = db
            .table("keyword")
            .select(&Predicate::Eq("term".into(), Value::from(term)))
            .project(&["node"]);
        let mut rel = Relation::empty(frag_schema());
        let mut fid = 0i64;
        for row in postings.rows() {
            rel.push(vec![Value::Int(fid), row[0].clone()]);
            fid += 1;
        }
        FragRel { rel, next_fid: fid }
    }

    /// Number of fragments (distinct fids).
    pub fn len(&self) -> usize {
        let mut fids = HashSet::new();
        for r in self.rel.rows() {
            fids.insert(r[0].as_int());
        }
        fids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Materialize `fid → sorted node ids`.
    pub fn fragments(&self) -> BTreeMap<i64, Vec<u32>> {
        let mut map: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for r in self.rel.rows() {
            map.entry(r[0].as_int())
                .or_default()
                .push(r[1].as_int() as u32);
        }
        for v in map.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        map
    }

    /// Canonicalize: collapse fids with identical node sets, renumbering
    /// from zero in first-appearance order.
    pub fn dedup(&self) -> FragRel {
        let frags = self.fragments();
        let mut seen: HashSet<Vec<u32>> = HashSet::new();
        let mut rel = Relation::empty(frag_schema());
        let mut fid = 0i64;
        for (_, nodes) in frags {
            if seen.insert(nodes.clone()) {
                for n in &nodes {
                    rel.push(vec![Value::Int(fid), Value::from(*n)]);
                }
                fid += 1;
            }
        }
        FragRel { rel, next_fid: fid }
    }

    /// Set-equality on the canonical node sets.
    pub fn set_eq(&self, other: &FragRel) -> bool {
        let a: BTreeSet<Vec<u32>> = self.fragments().into_values().collect();
        let b: BTreeSet<Vec<u32>> = other.fragments().into_values().collect();
        a == b
    }
}

/// Fetch the closure rows of one node via the `anc(node)` index — the
/// access path an RDBMS would choose for `σ_{node=a}(anc)`.
fn closure_of(db: &Database, node: u32) -> Relation {
    let anc = db.table("anc");
    let idx = db.index("anc", "node");
    let rows: Vec<Vec<Value>> = idx
        .get(&Value::from(node))
        .iter()
        .map(|&i| anc.rows()[i].clone())
        .collect();
    Relation::new(anc.schema().clone(), rows)
}

/// LCA of two nodes via the closure table: join `anc(node=a)` with
/// `anc(node=b)` on `ancestor`, take the deepest. Both sides come from
/// index probes, not table scans.
pub fn lca(db: &Database, a: u32, b: u32) -> u32 {
    let left = closure_of(db, a);
    let right = closure_of(db, b);
    let common = left.equi_join("ancestor", &right, "ancestor");
    // Deepest common ancestor = MAX(adepth); then pick its ancestor id.
    let best = common.aggregate(&[], Agg::Max, Some("adepth"), "d");
    let dmax = best.rows()[0][0].clone();
    let winner = common.select(&Predicate::Eq("adepth".into(), dmax));
    winner.rows()[0][common.schema().col_required("ancestor")].as_int() as u32
}

/// The node ids on the path between `a` and `b` (inclusive), via the
/// closure table.
pub fn path_nodes(db: &Database, a: u32, b: u32) -> Vec<u32> {
    let l = lca(db, a, b);
    let ldepth = {
        let row = db.index("node", "id").get(&Value::from(l))[0];
        db.table("node").rows()[row][2].as_int()
    };
    let mut out = BTreeSet::new();
    for side in [a, b] {
        let rows = closure_of(db, side).select(&Predicate::Ge("adepth".into(), Value::Int(ldepth)));
        for r in rows.rows() {
            out.insert(r[1].as_int() as u32);
        }
    }
    out.into_iter().collect()
}

/// `F1 ⋈ F2` — pairwise fragment join of two fragment relations.
///
/// For every `(fid_a, fid_b)` pair, the output fragment is
/// `nodes(fid_a) ∪ nodes(fid_b) ∪ path(root_a, root_b)`; the result is
/// deduplicated by canonical node set.
pub fn pairwise_join(db: &Database, f1: &FragRel, f2: &FragRel) -> FragRel {
    let a = f1.fragments();
    let b = f2.fragments();
    // Roots via MIN(node) per fid — the relational form; the host loop
    // then assembles output rows.
    let roots = |fr: &FragRel| -> HashMap<i64, u32> {
        fr.rel
            .aggregate(&["fid"], Agg::Min, Some("node"), "root")
            .rows()
            .iter()
            .map(|r| (r[0].as_int(), r[1].as_int() as u32))
            .collect()
    };
    let ra = roots(f1);
    let rb = roots(f2);

    let mut rel = Relation::empty(frag_schema());
    let mut fid = 0i64;
    for (fa, na) in &a {
        for (fb, nb) in &b {
            let mut nodes: BTreeSet<u32> = na.iter().copied().collect();
            nodes.extend(nb.iter().copied());
            for p in path_nodes(db, ra[fa], rb[fb]) {
                nodes.insert(p);
            }
            for n in &nodes {
                rel.push(vec![Value::Int(fid), Value::from(*n)]);
            }
            fid += 1;
        }
    }
    (FragRel { rel, next_fid: fid }).dedup()
}

/// Fixed point `F⁺` by iteration until the canonical set stabilizes.
pub fn fixed_point(db: &Database, f: &FragRel) -> FragRel {
    fixed_point_with(db, f, |fr| fr)
}

/// Fixed point with a per-round filter applied to the newly joined
/// fragments — the relational counterpart of the §3.3 expansion
/// `σ_Pa(σ_Pa(F) ⋈ σ_Pa(F) ⋈ …)`. The filter must be anti-monotonic for
/// the result to equal `σ_Pa(F⁺)` (Theorem 3); with the identity filter
/// this is exactly `F⁺`.
pub fn fixed_point_with(
    db: &Database,
    f: &FragRel,
    mut round_filter: impl FnMut(FragRel) -> FragRel,
) -> FragRel {
    if f.is_empty() {
        return FragRel::empty();
    }
    let base = round_filter(f.dedup());
    if base.is_empty() {
        return FragRel::empty();
    }
    let mut h = base.clone();
    loop {
        let joined = round_filter(pairwise_join(db, &h, &base));
        let next = union(&h, &joined);
        if next.len() == h.len() {
            return h;
        }
        h = next;
    }
}

/// Union of two fragment relations (canonical dedup).
pub fn union(a: &FragRel, b: &FragRel) -> FragRel {
    let mut rel = a.rel.clone();
    let offset = a.next_fid;
    for r in b.rel.rows() {
        rel.push(vec![Value::Int(r[0].as_int() + offset), r[1].clone()]);
    }
    (FragRel {
        rel,
        next_fid: offset + b.next_fid,
    })
    .dedup()
}

/// `σ_{size ≤ β}` — COUNT per fid, keep small groups.
pub fn filter_max_size(f: &FragRel, beta: u32) -> FragRel {
    let counts = f.rel.aggregate(&["fid"], Agg::Count, None, "n");
    let keep: HashSet<i64> = counts
        .select(&Predicate::Le("n".into(), Value::Int(beta as i64)))
        .rows()
        .iter()
        .map(|r| r[0].as_int())
        .collect();
    semi_join(f, &keep)
}

/// `σ_{height ≤ h}` — (MAX(depth) − depth(root)) per fid.
pub fn filter_max_height(db: &Database, f: &FragRel, h: u32) -> FragRel {
    let with_depth = f.rel.equi_join("node", db.table("node"), "id");
    let maxd = with_depth.aggregate(&["fid"], Agg::Max, Some("depth"), "maxd");
    let root = f.rel.aggregate(&["fid"], Agg::Min, Some("node"), "root");
    let root_depth = root.equi_join("root", db.table("node"), "id");
    let joined = maxd.equi_join("fid", &root_depth, "fid");
    let mut keep = HashSet::new();
    let s = joined.schema();
    let (ci_fid, ci_maxd, ci_depth) = (
        s.col_required("fid"),
        s.col_required("maxd"),
        s.col_required("depth"),
    );
    for r in joined.rows() {
        if r[ci_maxd].as_int() - r[ci_depth].as_int() <= h as i64 {
            keep.insert(r[ci_fid].as_int());
        }
    }
    semi_join(f, &keep)
}

/// `σ_{width ≤ w}` — (MAX(node) − MIN(node)) per fid.
pub fn filter_max_width(f: &FragRel, w: u32) -> FragRel {
    let lo = f.rel.aggregate(&["fid"], Agg::Min, Some("node"), "lo");
    let hi = f.rel.aggregate(&["fid"], Agg::Max, Some("node"), "hi");
    let j = lo.equi_join("fid", &hi, "fid");
    let s = j.schema();
    let (ci_fid, ci_lo, ci_hi) = (
        s.col_required("fid"),
        s.col_required("lo"),
        s.col_required("hi"),
    );
    let mut keep = HashSet::new();
    for r in j.rows() {
        if r[ci_hi].as_int() - r[ci_lo].as_int() <= w as i64 {
            keep.insert(r[ci_fid].as_int());
        }
    }
    semi_join(f, &keep)
}

/// Keep only rows whose fid is in `keep`.
fn semi_join(f: &FragRel, keep: &HashSet<i64>) -> FragRel {
    let mut rel = Relation::empty(frag_schema());
    for r in f.rel.rows() {
        if keep.contains(&r[0].as_int()) {
            rel.push(r.clone());
        }
    }
    (FragRel {
        rel,
        next_fid: f.next_fid,
    })
    .dedup()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode_document;
    use xfrag_doc::{Document, DocumentBuilder};

    /// r(0) -> a(1){x} -> b(2){x y}; r -> c(3){y}
    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.begin("a");
        b.text("x");
        b.leaf("b", "x y");
        b.end();
        b.leaf("c", "y");
        b.end();
        b.finish().unwrap()
    }

    #[test]
    fn keyword_select_builds_singletons() {
        let db = encode_document(&doc());
        let fx = FragRel::keyword_select(&db, "x");
        assert_eq!(fx.len(), 2);
        let frags: Vec<Vec<u32>> = fx.fragments().into_values().collect();
        assert_eq!(frags, vec![vec![1], vec![2]]);
    }

    #[test]
    fn lca_and_path_via_closure() {
        let db = encode_document(&doc());
        assert_eq!(lca(&db, 2, 3), 0);
        assert_eq!(lca(&db, 1, 2), 1);
        assert_eq!(lca(&db, 2, 2), 2);
        assert_eq!(path_nodes(&db, 2, 3), vec![0, 1, 2, 3]);
        assert_eq!(path_nodes(&db, 1, 2), vec![1, 2]);
    }

    #[test]
    fn pairwise_join_produces_minimal_fragments() {
        let db = encode_document(&doc());
        let fx = FragRel::keyword_select(&db, "x"); // {1}, {2}
        let fy = FragRel::keyword_select(&db, "y"); // {2}, {3}
        let j = pairwise_join(&db, &fx, &fy);
        let got: BTreeSet<Vec<u32>> = j.fragments().into_values().collect();
        let expect: BTreeSet<Vec<u32>> = [
            vec![1, 2],       // {1}⋈{2}
            vec![0, 1, 3],    // {1}⋈{3}
            vec![2],          // {2}⋈{2}
            vec![0, 1, 2, 3], // {2}⋈{3}
        ]
        .into_iter()
        .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn dedup_collapses_equal_sets() {
        let db = encode_document(&doc());
        let fx = FragRel::keyword_select(&db, "x");
        let u = union(&fx, &fx);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn fixed_point_closes() {
        let db = encode_document(&doc());
        let fy = FragRel::keyword_select(&db, "y"); // {2}, {3}
        let fp = fixed_point(&db, &fy);
        // {2}, {3}, {2}⋈{3} = {0,1,2,3}
        assert_eq!(fp.len(), 3);
        let again = union(&fp, &pairwise_join(&db, &fp, &fy));
        assert!(again.set_eq(&fp));
    }

    #[test]
    fn size_filter() {
        let db = encode_document(&doc());
        let fx = FragRel::keyword_select(&db, "x");
        let fy = FragRel::keyword_select(&db, "y");
        let j = pairwise_join(&db, &fx, &fy);
        let small = filter_max_size(&j, 2);
        let got: BTreeSet<Vec<u32>> = small.fragments().into_values().collect();
        assert_eq!(got, [vec![1, 2], vec![2]].into_iter().collect());
    }

    #[test]
    fn height_filter() {
        let db = encode_document(&doc());
        let fx = FragRel::keyword_select(&db, "x");
        let fy = FragRel::keyword_select(&db, "y");
        let j = pairwise_join(&db, &fx, &fy);
        let shallow = filter_max_height(&db, &j, 1);
        let got: BTreeSet<Vec<u32>> = shallow.fragments().into_values().collect();
        // heights: {1,2}→1, {0,1,3}→1, {2}→0, {0,1,2,3}→2
        assert_eq!(
            got,
            [vec![1, 2], vec![0, 1, 3], vec![2]].into_iter().collect()
        );
    }

    #[test]
    fn width_filter() {
        let db = encode_document(&doc());
        let fx = FragRel::keyword_select(&db, "x");
        let fy = FragRel::keyword_select(&db, "y");
        let j = pairwise_join(&db, &fx, &fy);
        let narrow = filter_max_width(&j, 1);
        let got: BTreeSet<Vec<u32>> = narrow.fragments().into_values().collect();
        assert_eq!(got, [vec![1, 2], vec![2]].into_iter().collect());
    }

    #[test]
    fn empty_set_behaviour() {
        let db = encode_document(&doc());
        let empty = FragRel::empty();
        assert!(empty.is_empty());
        assert!(fixed_point(&db, &empty).is_empty());
        let fx = FragRel::keyword_select(&db, "x");
        assert!(pairwise_join(&db, &empty, &fx).is_empty());
        assert_eq!(FragRel::keyword_select(&db, "absent").len(), 0);
    }
}
