//! Column indexes over relations, with a lazy per-table cache.
//!
//! The tree-algebra encoding performs many point lookups on the `node`
//! and `anc` tables (`id = ?`, `node = ?`). A [`BTreeIndex`] maps a
//! column value to the row numbers carrying it; [`IndexCache`] builds
//! indexes on first use behind an `RwLock`, the usual read-mostly
//! pattern for shared catalog state.

use crate::relation::Relation;
use crate::value::Value;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// A sorted index from column value to row offsets.
#[derive(Debug, Clone, Default)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<usize>>,
}

impl BTreeIndex {
    /// Build over one column of a relation. NULLs are not indexed
    /// (matching equi-join semantics).
    pub fn build(rel: &Relation, col: &str) -> Self {
        let ci = rel.schema().col_required(col);
        let mut map: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (i, row) in rel.rows().iter().enumerate() {
            if !row[ci].is_null() {
                map.entry(row[ci].clone()).or_default().push(i);
            }
        }
        BTreeIndex { map }
    }

    /// Row offsets with exactly this value.
    pub fn get(&self, v: &Value) -> &[usize] {
        self.map.get(v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row offsets within an inclusive value range.
    pub fn range(&self, lo: &Value, hi: &Value) -> impl Iterator<Item = usize> + '_ {
        self.map
            .range(lo.clone()..=hi.clone())
            .flat_map(|(_, rows)| rows.iter().copied())
    }

    /// Number of distinct indexed values.
    pub fn distinct_values(&self) -> usize {
        self.map.len()
    }
}

/// Lazily-built per-(table, column) index cache.
#[derive(Debug, Default)]
pub struct IndexCache {
    cache: RwLock<HashMap<(String, String), Arc<BTreeIndex>>>,
}

impl IndexCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch (building on miss) the index for `table.col`. The caller
    /// supplies the relation because the cache does not own table storage.
    pub fn get_or_build(&self, table: &str, col: &str, rel: &Relation) -> Arc<BTreeIndex> {
        let key = (table.to_string(), col.to_string());
        // invariant: no code path panics while holding this lock, so it
        // can never be poisoned; unwrap documents that rather than hiding
        // a real failure mode.
        if let Some(idx) = self.cache.read().unwrap().get(&key) {
            return Arc::clone(idx);
        }
        let built = Arc::new(BTreeIndex::build(rel, col));
        let mut w = self.cache.write().unwrap();
        Arc::clone(w.entry(key).or_insert(built))
    }

    /// Drop all cached indexes (call after replacing a table).
    pub fn invalidate(&self) {
        // invariant: see get_or_build — the lock cannot be poisoned.
        self.cache.write().unwrap().clear();
    }

    /// Number of cached indexes.
    pub fn len(&self) -> usize {
        // invariant: see get_or_build — the lock cannot be poisoned.
        self.cache.read().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        // invariant: see get_or_build — the lock cannot be poisoned.
        self.cache.read().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Schema};

    fn rel() -> Relation {
        Relation::new(
            Schema::new(vec![("id", ColType::Int), ("v", ColType::Int)]),
            vec![
                vec![1.into(), 10.into()],
                vec![2.into(), 10.into()],
                vec![3.into(), Value::Null],
                vec![4.into(), 20.into()],
            ],
        )
    }

    #[test]
    fn point_lookup() {
        let idx = BTreeIndex::build(&rel(), "v");
        assert_eq!(idx.get(&Value::Int(10)), &[0, 1]);
        assert_eq!(idx.get(&Value::Int(20)), &[3]);
        assert_eq!(idx.get(&Value::Int(99)), &[] as &[usize]);
        assert_eq!(idx.distinct_values(), 2);
    }

    #[test]
    fn nulls_not_indexed() {
        let idx = BTreeIndex::build(&rel(), "v");
        assert_eq!(idx.get(&Value::Null), &[] as &[usize]);
    }

    #[test]
    fn range_scan() {
        let idx = BTreeIndex::build(&rel(), "v");
        let hits: Vec<usize> = idx.range(&Value::Int(10), &Value::Int(20)).collect();
        assert_eq!(hits, vec![0, 1, 3]);
    }

    #[test]
    fn cache_builds_once() {
        let cache = IndexCache::new();
        let r = rel();
        let a = cache.get_or_build("t", "v", &r);
        let b = cache.get_or_build("t", "v", &r);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        cache.invalidate();
        assert!(cache.is_empty());
    }
}
