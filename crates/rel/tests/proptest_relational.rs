//! Property tests for the relational engine: classic relational-algebra
//! identities over random relations, and the tree-algebra encoding
//! against `xfrag-doc`'s native tree operations.

use proptest::prelude::*;
use xfrag_rel::relation::Agg;
use xfrag_rel::{ColType, Predicate, Relation, Schema, Value};

fn schema() -> Schema {
    Schema::new(vec![("k", ColType::Int), ("v", ColType::Int)])
}

fn rel_from(rows: &[(i64, Option<i64>)]) -> Relation {
    Relation::new(
        schema(),
        rows.iter()
            .map(|&(k, v)| vec![Value::Int(k), v.map(Value::Int).unwrap_or(Value::Null)])
            .collect(),
    )
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, Option<i64>)>> {
    prop::collection::vec((0i64..8, prop::option::of(0i64..8)), 0..12)
}

fn arb_pred() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (0i64..8).prop_map(|v| Predicate::Eq("k".into(), Value::Int(v))),
        (0i64..8).prop_map(|v| Predicate::Le("v".into(), Value::Int(v))),
        (0i64..8).prop_map(|v| Predicate::Ge("k".into(), Value::Int(v))),
        Just(Predicate::IsNull("v".into())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// σ_p(σ_q(R)) = σ_q(σ_p(R)) = σ_{p∧q}(R).
    #[test]
    fn selection_commutes_and_conjoins(rows in arb_rows(), p in arb_pred(), q in arb_pred()) {
        let r = rel_from(&rows);
        let a = r.select(&p).select(&q);
        let b = r.select(&q).select(&p);
        let c = r.select(&Predicate::And(vec![p, q]));
        prop_assert_eq!(a.rows(), b.rows());
        prop_assert_eq!(b.rows(), c.rows());
    }

    /// Projection is idempotent and preserves row count.
    #[test]
    fn projection_idempotent(rows in arb_rows()) {
        let r = rel_from(&rows);
        let p1 = r.project(&["v"]);
        let p2 = p1.project(&["v"]);
        prop_assert_eq!(p1.rows(), p2.rows());
        prop_assert_eq!(p1.len(), r.len());
    }

    /// distinct is idempotent and never increases cardinality; union_all
    /// adds cardinalities.
    #[test]
    fn distinct_and_union_laws(rows in arb_rows()) {
        let r = rel_from(&rows);
        let d = r.distinct();
        prop_assert!(d.len() <= r.len());
        let dd = d.distinct();
        prop_assert_eq!(dd.rows(), d.rows());
        let u = r.union_all(&r);
        prop_assert_eq!(u.len(), 2 * r.len());
        prop_assert_eq!(u.distinct().len(), d.len());
    }

    /// Hash equi-join equals the nested-loop definition (NULLs never
    /// match), regardless of which side builds.
    #[test]
    fn join_matches_nested_loop(a in arb_rows(), b in arb_rows()) {
        let ra = rel_from(&a);
        let rb = rel_from(&b);
        let joined = ra.equi_join("v", &rb, "k");
        let mut expected = 0usize;
        for x in &a {
            if let Some(v) = x.1 {
                expected += b.iter().filter(|y| y.0 == v).count();
            }
        }
        prop_assert_eq!(joined.len(), expected);
        // Every output row satisfies the join predicate.
        let s = joined.schema();
        let (ci_v, ci_k2) = (s.col_required("v"), s.col_required("r_k"));
        for row in joined.rows() {
            prop_assert_eq!(&row[ci_v], &row[ci_k2]);
        }
    }

    /// COUNT per group sums to the relation size; MIN/MAX bound group
    /// members.
    #[test]
    fn aggregate_laws(rows in arb_rows()) {
        let r = rel_from(&rows);
        let counts = r.aggregate(&["k"], Agg::Count, None, "n");
        let total: i64 = counts.rows().iter().map(|row| row[1].as_int()).sum();
        prop_assert_eq!(total as usize, r.len());
        let mins = r.aggregate(&["k"], Agg::Min, Some("v"), "lo");
        let maxs = r.aggregate(&["k"], Agg::Max, Some("v"), "hi");
        for (lo_row, hi_row) in mins.rows().iter().zip(maxs.rows()) {
            if !lo_row[1].is_null() && !hi_row[1].is_null() {
                prop_assert!(lo_row[1] <= hi_row[1]);
            }
        }
    }

    /// Index lookups agree with selection.
    #[test]
    fn index_agrees_with_scan(rows in arb_rows(), probe in 0i64..8) {
        let r = rel_from(&rows);
        let idx = xfrag_rel::index::BTreeIndex::build(&r, "k");
        let via_idx: Vec<&Vec<Value>> =
            idx.get(&Value::Int(probe)).iter().map(|&i| &r.rows()[i]).collect();
        let via_scan = r.select(&Predicate::Eq("k".into(), Value::Int(probe)));
        prop_assert_eq!(via_idx.len(), via_scan.len());
        for (a, b) in via_idx.iter().zip(via_scan.rows()) {
            prop_assert_eq!(*a, b);
        }
    }
}

mod tree_encoding {
    use super::*;
    use xfrag_doc::{Document, DocumentBuilder, NodeId};
    use xfrag_rel::algebra;
    use xfrag_rel::encode_document;

    fn build_tree(choices: &[usize]) -> Document {
        let n = choices.len() + 1;
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, &c) in choices.iter().enumerate() {
            children[c % (i + 1)].push(i + 1);
        }
        fn emit(b: &mut DocumentBuilder, children: &[Vec<usize>], v: usize) {
            b.begin(format!("t{v}"));
            for &c in &children[v] {
                emit(b, children, c);
            }
            b.end();
        }
        let mut b = DocumentBuilder::new();
        emit(&mut b, &children, 0);
        b.finish().unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Closure-table LCA and path agree with the native tree.
        #[test]
        fn lca_and_path_agree(
            choices in prop::collection::vec(any::<usize>(), 0..14),
            a in any::<usize>(),
            b in any::<usize>(),
        ) {
            let doc = build_tree(&choices);
            let db = encode_document(&doc);
            let n = doc.len() as u32;
            let (x, y) = ((a as u32) % n, (b as u32) % n);
            prop_assert_eq!(
                algebra::lca(&db, x, y),
                doc.lca(NodeId(x), NodeId(y)).0
            );
            let mut native: Vec<u32> =
                doc.path(NodeId(x), NodeId(y)).iter().map(|p| p.0).collect();
            native.sort_unstable();
            prop_assert_eq!(algebra::path_nodes(&db, x, y), native);
        }
    }
}
