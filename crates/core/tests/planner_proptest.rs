//! Property tests for the §5 estimator and the v2 stats segment
//! (ISSUE 10).
//!
//! The estimator's documented error envelope, checked here:
//!
//! * with `sample >= |F|` the strided RF estimate is *exact* — it equals
//!   [`reduction_factor`] to the bit, because stride 1 visits every
//!   candidate against every pair;
//! * with any smaller sample it is *one-sided*: a sampled elimination is
//!   a real elimination (the witness pair exists in the full set), so a
//!   positive estimate implies a positive true RF, and the estimate
//!   always stays in `[0, 1]`;
//! * join-cardinality estimates are monotone in posting size, so a
//!   bigger operand can never look cheaper;
//! * at runtime the envelope is enforced, not assumed: an un-replanned
//!   auto evaluation's actual join/fragment counts sit under the guard
//!   caps (`8× estimate + slack`), and anything past that re-plans.
//!
//! The segment half: random documents round-trip through the v2 `.xidx`
//! encoding with statistics that reproduce the live profile bit-for-bit;
//! a downgraded v1 segment (stats stripped by byte surgery, the way an
//! old indexer would have written it) still plans identically via the
//! live fallback; a corrupted segment never decodes; and a segment whose
//! stats block fails its sanity checks (restamped checksum, absurd
//! counters) degrades to "no stats" — never to wrong answers.

use proptest::prelude::*;
use xfrag_core::cost::estimate_rf;
use xfrag_core::{
    evaluate_planned_cached_traced, plan_query, reduction_factor, CostModel, EvalStats, ExecPolicy,
    FilterExpr, FixpointMode, FragmentSet, Query, StrategyChoice, Tracer,
};
use xfrag_doc::{
    encode_segment, Document, DocumentBuilder, InvertedIndex, PostingsSource, SegmentIndex,
};

/// The term pool random documents draw from.
const TERMS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Query shapes for the planning properties: every pool subset size,
/// including the full conjunction.
const QUERY_SHAPES: [&[&str]; 4] = [
    &["alpha"],
    &["alpha", "beta"],
    &["beta", "gamma"],
    &["alpha", "beta", "gamma", "delta"],
];

/// Structure from a parent-choice vector (the `proptest_doc` idiom);
/// content from per-node term-subset selectors: bit `i` of a selector
/// puts `TERMS[i]` into that node's text. Node 0 always holds the full
/// pool so no generated document is term-free.
fn build_doc(choices: &[usize], sels: &[u8]) -> Document {
    let n = choices.len() + 1;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, &c) in choices.iter().enumerate() {
        children[c % (i + 1)].push(i + 1);
    }
    fn emit(b: &mut DocumentBuilder, children: &[Vec<usize>], v: usize, sels: &[u8]) {
        b.begin(format!("e{v}"));
        let sel = if v == 0 {
            0b1111
        } else {
            sels.get(v % sels.len().max(1)).copied().unwrap_or(0)
        };
        let words: Vec<&str> = TERMS
            .iter()
            .enumerate()
            .filter(|(i, _)| sel & (1 << i) != 0)
            .map(|(_, t)| *t)
            .collect();
        if !words.is_empty() {
            b.text(words.join(" "));
        }
        for &c in &children[v] {
            emit(b, children, c, sels);
        }
        b.end();
    }
    let mut b = DocumentBuilder::new();
    emit(&mut b, &children, 0, sels);
    b.finish().expect("generated tree is valid")
}

/// FNV-1a, re-implemented locally: the tests must be able to restamp a
/// surgically edited segment without access to the crate-private hasher.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Byte length of the v2 stats section: the 16-bucket depth histogram
/// plus 20 bytes of planner stats per term.
fn stats_section_len(terms: usize) -> usize {
    16 * 4 + terms * 20
}

/// Downgrade encoded v2 segment bytes to the v1 layout: strip the stats
/// section, patch the version word, restamp the checksum — exactly the
/// bytes an old indexer would have written.
fn downgrade_to_v1(bytes: &[u8], terms: usize) -> Vec<u8> {
    let body_end = bytes.len() - 8 - stats_section_len(terms);
    let mut v1 = bytes[..body_end].to_vec();
    v1[4..6].copy_from_slice(&1u16.to_le_bytes());
    let sum = fnv1a(&v1);
    v1.extend_from_slice(&sum.to_le_bytes());
    v1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Envelope, exact end: `sample >= |F|` reproduces the true RF.
    #[test]
    fn full_sample_estimate_is_exact(
        choices in prop::collection::vec(any::<usize>(), 0..22),
        sels in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let doc = build_doc(&choices, &sels);
        let index = InvertedIndex::build(&doc);
        for term in TERMS {
            let f = FragmentSet::of_nodes(index.postings(term).iter().copied());
            let mut s = EvalStats::new();
            let est = estimate_rf(&doc, &f, f.len().max(1), &mut s);
            let exact = reduction_factor(&doc, &f, &mut s);
            prop_assert!(
                (est - exact).abs() < 1e-12,
                "term {term}: full-sample estimate {est} != exact {exact}"
            );
        }
    }

    /// Envelope, sampled end: one-sided and bounded. A positive sampled
    /// RF implies a positive true RF, and the estimate stays in [0, 1].
    #[test]
    fn sampled_estimate_is_one_sided(
        choices in prop::collection::vec(any::<usize>(), 0..22),
        sels in prop::collection::vec(any::<u8>(), 1..8),
        sample in 1usize..8,
    ) {
        let doc = build_doc(&choices, &sels);
        let index = InvertedIndex::build(&doc);
        for term in TERMS {
            let f = FragmentSet::of_nodes(index.postings(term).iter().copied());
            let mut s = EvalStats::new();
            let est = estimate_rf(&doc, &f, sample, &mut s);
            prop_assert!((0.0..=1.0).contains(&est), "term {term}: RF {est} out of range");
            if est > 0.0 {
                let exact = reduction_factor(&doc, &f, &mut s);
                prop_assert!(
                    exact > 0.0,
                    "term {term}: sampled RF {est} but true RF is zero"
                );
            }
        }
    }

    /// Join-cardinality estimates are monotone in posting size: growing
    /// an operand never makes any strategy's estimate cheaper.
    #[test]
    fn cost_estimates_are_monotone_in_posting_size(
        n in 1u64..160,
        delta in 1u64..40,
        rf_pct in 0u32..=100,
        span in 0u64..16,
    ) {
        let model = CostModel::default();
        let rf = f64::from(rf_pct) / 100.0;
        for mode in [FixpointMode::Naive, FixpointMode::Reduced] {
            let small = model.planner_fixpoint_estimate(n, rf, span, mode);
            let big = model.planner_fixpoint_estimate(n + delta, rf, span, mode);
            prop_assert!(
                big.joins >= small.joins && big.fragments >= small.fragments,
                "{mode:?}: estimate shrank from n={n} ({small:?}) to n={} ({big:?})",
                n + delta
            );
        }
    }

    /// The runtime envelope: an auto evaluation that did not re-plan
    /// stayed within its guard caps; divergence beyond 8× + slack is
    /// impossible to miss because the guard is the execution budget.
    /// Documents stay small here: a replanned case re-runs the full
    /// conservative closure, which is exponential on dense term runs.
    #[test]
    fn unreplanned_actuals_stay_within_the_guard(
        choices in prop::collection::vec(any::<usize>(), 0..10),
        sels in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let doc = build_doc(&choices, &sels);
        let index = InvertedIndex::build(&doc);
        for terms in QUERY_SHAPES {
            let q = Query::new(terms.iter().copied(), FilterExpr::True);
            let (r, decision) = evaluate_planned_cached_traced(
                &doc, &index, &q, StrategyChoice::Auto, &ExecPolicy::unlimited(),
                &Tracer::disabled(), None, &CostModel::default(),
            ).expect("unlimited auto evaluation completes");
            if let (false, Some(guard)) = (decision.replanned, &decision.guard) {
                prop_assert!(
                    r.stats.joins <= guard.max_joins.unwrap_or(u64::MAX),
                    "joins {} exceeded guard {guard:?} without a re-plan",
                    r.stats.joins
                );
                prop_assert!(
                    r.stats.fragments_emitted <= guard.max_fragments.unwrap_or(u64::MAX),
                    "fragments {} exceeded guard {guard:?} without a re-plan",
                    r.stats.fragments_emitted
                );
            }
        }
    }

    /// v2 round-trip: segment statistics reproduce the live profile —
    /// same picks, same estimates, RF equal to the bit — on arbitrary
    /// documents, not just the fixtures.
    #[test]
    fn segment_stats_plan_like_live_profiles(
        choices in prop::collection::vec(any::<usize>(), 0..22),
        sels in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let doc = build_doc(&choices, &sels);
        let index = InvertedIndex::build(&doc);
        let seg = SegmentIndex::from_bytes(&encode_segment(&doc)).expect("v2 roundtrip");
        prop_assert!(seg.stats().is_some(), "v2 segment lost its stats block");
        let model = CostModel::default();
        for terms in QUERY_SHAPES {
            let q = Query::new(terms.iter().copied(), FilterExpr::True);
            let mut s = EvalStats::new();
            let mem = plan_query(&doc, &index, &q, &model, &mut s);
            let segd = plan_query(&doc, &seg, &q, &model, &mut s);
            prop_assert_eq!(mem.picked, segd.picked, "picks diverged on {:?}", terms);
            prop_assert_eq!(mem.estimates, segd.estimates, "estimates diverged on {:?}", terms);
            prop_assert!(segd.from_segment_stats());
            for (m, g) in mem.operands.iter().zip(&segd.operands) {
                prop_assert!(
                    (m.rf - g.rf).abs() < 1e-12,
                    "term {}: live RF {} vs segment RF {}", m.term, m.rf, g.rf
                );
                prop_assert_eq!(m.n, g.n);
                prop_assert_eq!(m.depth_span, g.depth_span);
            }
        }
    }

    /// v1 fallback: stripping the stats section (old-format bytes) keeps
    /// the segment decodable with `stats() == None`, and the planner's
    /// live fallback reproduces the in-memory decision *exactly*.
    #[test]
    fn v1_segment_falls_back_to_live_planning(
        choices in prop::collection::vec(any::<usize>(), 0..22),
        sels in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let doc = build_doc(&choices, &sels);
        let index = InvertedIndex::build(&doc);
        let v2 = encode_segment(&doc);
        let terms = SegmentIndex::from_bytes(&v2).expect("v2 roundtrip").term_count();
        let v1 = SegmentIndex::from_bytes(&downgrade_to_v1(&v2, terms))
            .expect("v1 layout decodes");
        prop_assert!(v1.stats().is_none(), "v1 segment cannot carry stats");
        let model = CostModel::default();
        for terms in QUERY_SHAPES {
            let q = Query::new(terms.iter().copied(), FilterExpr::True);
            let mut s = EvalStats::new();
            let mem = plan_query(&doc, &index, &q, &model, &mut s);
            let via_v1 = plan_query(&doc, &v1, &q, &model, &mut s);
            prop_assert_eq!(mem, via_v1, "v1 fallback diverged on {:?}", terms);
        }
    }

    /// Corruption: flipping any single byte is caught by the trailing
    /// checksum — the decoder errors, it never serves garbage.
    #[test]
    fn corrupted_segment_never_decodes(
        choices in prop::collection::vec(any::<usize>(), 0..22),
        sels in prop::collection::vec(any::<u8>(), 1..8),
        at in any::<usize>(),
    ) {
        let doc = build_doc(&choices, &sels);
        let mut bytes = encode_segment(&doc);
        let i = at % bytes.len();
        bytes[i] ^= 0x5a;
        prop_assert!(
            SegmentIndex::from_bytes(&bytes).is_err(),
            "flipped byte {i} of {} went unnoticed", bytes.len()
        );
    }
}

/// A stats block that passes the checksum but fails its sanity checks
/// (a restamped segment claiming more RF candidates than the sampler
/// ever draws) must degrade to `stats() == None` — the planner falls
/// back to live profiling and keeps answering correctly.
#[test]
fn insane_stats_block_degrades_to_live_planning() {
    let doc = build_doc(&[0, 0, 1, 1, 2], &[0b0011, 0b0101, 0b1111]);
    let index = InvertedIndex::build(&doc);
    let mut bytes = encode_segment(&doc);
    let terms = SegmentIndex::from_bytes(&bytes)
        .expect("v2 roundtrip")
        .term_count();

    // Term 0's `rf_candidates` lives 2 bytes into its 20-byte record,
    // after the 16-bucket depth histogram. 0xFFFF is far beyond the
    // sampler's RF_SAMPLE cap, so the sanity pass must reject the block.
    let stats_start = bytes.len() - 8 - stats_section_len(terms);
    let cand_at = stats_start + 16 * 4 + 2;
    bytes[cand_at..cand_at + 2].copy_from_slice(&0xFFFFu16.to_le_bytes());
    let body_end = bytes.len() - 8;
    let sum = fnv1a(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&sum.to_le_bytes());

    let seg = SegmentIndex::from_bytes(&bytes).expect("restamped segment decodes");
    assert!(seg.stats().is_none(), "insane stats block was accepted");

    let model = CostModel::default();
    for terms in QUERY_SHAPES {
        let q = Query::new(terms.iter().copied(), FilterExpr::True);
        let mut s = EvalStats::new();
        let mem = plan_query(&doc, &index, &q, &model, &mut s);
        let via_seg = plan_query(&doc, &seg, &q, &model, &mut s);
        assert_eq!(mem, via_seg, "fallback planning diverged on {terms:?}");
    }
}
