//! The planner-conformance differential suite (ISSUE 10).
//!
//! `--strategy auto` is the default, so its one non-negotiable property
//! is that it never *changes* an answer: for every (document, query,
//! filter, policy) cell, the auto path must be byte-identical — the full
//! `QueryResult` `Debug` rendering, fragments *and* `EvalStats` — to
//! forcing the strategy the planner picked, and every forced strategy
//! must agree on the answer set whenever none of them degraded. The
//! matrix below crosses generated corpora × queries × filters × budget
//! policies × {cold, warm} and checks exactly that.
//!
//! The second half exercises the adaptive re-plan: a corpus built to
//! make the planner's estimate badly optimistic (a flat sibling run
//! whose closure is the full powerset), where the divergence guard must
//! trip, emit a `plan:replan` span, fall back to the conservative
//! strategy under the caller's original policy, and still return the
//! byte-identical answer a forced conservative run produces.

use xfrag_core::{
    evaluate_planned_cached_traced, plan_query, Budget, CacheRef, CostModel, Degradation,
    DegradeMode, EvalStats, ExecPolicy, FilterExpr, GenerationTag, Query, QueryCache, QueryResult,
    RecordingSink, Span, Strategy, StrategyChoice, Tracer,
};
use xfrag_doc::{parse_str, Document, DocumentBuilder, InvertedIndex};

/// The generated corpora: shapes chosen to push the picker toward
/// different strategies (tiny operands → brute force, chains → high RF,
/// flat runs → low RF) so the matrix exercises every pick, not just one.
fn corpora() -> Vec<(&'static str, Document)> {
    vec![
        (
            "paper-shaped",
            parse_str(
                "<sec><sub>alpha topics<par>beta alpha in practice</par>\
                 <par>beta gamma</par></sub></sec>",
            )
            .unwrap(),
        ),
        (
            "flat-wide",
            parse_str(
                "<r><p>alpha</p><p>beta</p><p>alpha gamma</p><p>beta</p>\
                 <p>gamma</p><p>alpha</p></r>",
            )
            .unwrap(),
        ),
        (
            "deep-chain",
            parse_str("<a>alpha<b>beta<c>alpha<d>gamma<e>beta alpha</e></d></c></b></a>").unwrap(),
        ),
        (
            "skewed",
            parse_str(
                "<r><hub><x>alpha</x><x>alpha</x><x>alpha</x><x>alpha</x></hub>\
                 <y>beta</y><z><w>beta gamma</w></z><q>gamma alpha</q></r>",
            )
            .unwrap(),
        ),
    ]
}

fn queries() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("one-term", vec!["alpha"]),
        ("two-term", vec!["alpha", "beta"]),
        ("three-term", vec!["alpha", "beta", "gamma"]),
        // Conjunctive semantics: a missing term short-circuits every
        // strategy to the empty answer — the planner's no-guard path.
        ("missing-term", vec!["alpha", "zzz-missing"]),
    ]
}

fn filters() -> Vec<(&'static str, FilterExpr)> {
    vec![
        ("true", FilterExpr::True),
        ("max-size", FilterExpr::MaxSize(3)),
        ("max-height", FilterExpr::MaxHeight(2)),
        (
            "and-anti",
            FilterExpr::And(vec![FilterExpr::MaxSize(4), FilterExpr::MaxDiameter(3)]),
        ),
    ]
}

/// The budget policies: unlimited (guards arm), a generous cap nothing
/// here can breach, the degradation ladder under a tight cap, and a
/// tight cap with the ladder off (hard errors).
fn policies() -> Vec<(&'static str, ExecPolicy)> {
    vec![
        ("unlimited", ExecPolicy::unlimited()),
        (
            "generous",
            ExecPolicy::with_budget(
                Budget::unlimited()
                    .with_max_joins(50_000_000)
                    .with_max_fragments(1_000_000),
            ),
        ),
        (
            "tight-ladder",
            ExecPolicy::with_budget(Budget::unlimited().with_max_joins(40))
                .with_degrade(DegradeMode::Ladder),
        ),
        (
            "tight-off",
            ExecPolicy::with_budget(Budget::unlimited().with_max_joins(40))
                .with_degrade(DegradeMode::Off),
        ),
    ]
}

/// One arm of a cell: evaluate the same request twice through a fresh
/// private cache — a cold pass and a warm replay — so cached and cold
/// behavior are both covered without arms contaminating each other.
fn run_arm(
    doc: &Document,
    index: &InvertedIndex,
    query: &Query,
    choice: StrategyChoice,
    policy: &ExecPolicy,
) -> [Result<(QueryResult, Strategy), String>; 2] {
    let cache = QueryCache::with_capacity_mb(8);
    let gen = GenerationTag::fresh();
    let model = CostModel::default();
    [0, 1].map(|_| {
        let cref = CacheRef {
            cache: &cache,
            gen,
            doc: 0,
        };
        evaluate_planned_cached_traced(
            doc,
            index,
            query,
            choice,
            policy,
            &Tracer::disabled(),
            Some(cref),
            &model,
        )
        .map(|(r, d)| (r, d.effective))
        .map_err(|e| format!("{e:?}"))
    })
}

/// The tentpole invariant, cell by cell: auto is indistinguishable from
/// forcing what it picked, and the four forced strategies agree whenever
/// they all completed undegraded.
#[test]
fn auto_matches_forced_across_the_full_matrix() {
    for (dname, doc) in corpora() {
        let index = InvertedIndex::build(&doc);
        for (qname, terms) in queries() {
            for (fname, filter) in filters() {
                let query = Query::new(terms.iter().copied(), filter.clone());
                for (pname, policy) in policies() {
                    let cell = format!("{dname}/{qname}/{fname}/{pname}");
                    let auto = run_arm(&doc, &index, &query, StrategyChoice::Auto, &policy);
                    let forced: Vec<_> = Strategy::ALL
                        .iter()
                        .map(|&s| run_arm(&doc, &index, &query, StrategyChoice::Forced(s), &policy))
                        .collect();
                    let forced_for = |s: Strategy| {
                        let i = Strategy::ALL.iter().position(|&x| x == s).unwrap();
                        &forced[i]
                    };

                    // Auto ≡ forced(effective), cold pass: full result
                    // identity, stats included. A re-planned run must be
                    // indistinguishable from forcing the fallback.
                    match &auto[0] {
                        Ok((r, effective)) => {
                            let (fr, _) = forced_for(*effective)[0]
                                .as_ref()
                                .unwrap_or_else(|e| panic!("{cell}: forced arm errored: {e}"));
                            assert_eq!(
                                format!("{r:?}"),
                                format!("{fr:?}"),
                                "{cell}: auto diverged from forced {}",
                                effective.name()
                            );
                        }
                        Err(e) => {
                            // Auto can only fail the way the picked
                            // strategy fails (guards never arm under a
                            // limited policy, so there is no fallback).
                            let mut scratch = EvalStats::new();
                            let picked = plan_query(
                                &doc,
                                &index,
                                &query,
                                &CostModel::default(),
                                &mut scratch,
                            )
                            .picked;
                            let fe = forced_for(picked)[0]
                                .as_ref()
                                .err()
                                .unwrap_or_else(|| panic!("{cell}: auto errored, forced did not"));
                            assert_eq!(e, fe, "{cell}: auto error diverged");
                        }
                    }

                    // Auto ≡ forced(effective), warm pass: the answer
                    // payload must replay identically through the cache.
                    if let (Ok((r, effective)), _) = (&auto[1], ()) {
                        if let Ok((fr, _)) = &forced_for(*effective)[1] {
                            assert_eq!(
                                r.fragments, fr.fragments,
                                "{cell}: warm auto fragments diverged"
                            );
                            assert_eq!(
                                r.degradation, fr.degradation,
                                "{cell}: warm auto degradation diverged"
                            );
                        }
                    }

                    // Within every arm, warm must replay the cold answer.
                    for (arm, name) in std::iter::once((&auto, "auto"))
                        .chain(Strategy::ALL.iter().map(|&s| (forced_for(s), s.name())))
                    {
                        if let [Ok((cold, _)), Ok((warm, _))] = arm {
                            assert_eq!(
                                cold.fragments, warm.fragments,
                                "{cell}/{name}: warm pass changed the answer"
                            );
                        }
                    }

                    // Cross-strategy agreement: all four forced arms
                    // that completed undegraded share one answer set.
                    let clean: Vec<(&str, &QueryResult)> = Strategy::ALL
                        .iter()
                        .filter_map(|&s| match &forced_for(s)[0] {
                            Ok((r, _)) if r.degradation == Degradation::none() => {
                                Some((s.name(), r))
                            }
                            _ => None,
                        })
                        .collect();
                    // Set equality, not rendering: strategies emit the
                    // same answers in different closure orders.
                    for pair in clean.windows(2) {
                        assert_eq!(
                            pair[0].1.fragments, pair[1].1.fragments,
                            "{cell}: {} and {} disagree",
                            pair[0].0, pair[1].0
                        );
                    }
                }
            }
        }
    }
}

/// The planner is a pure function of (document, query): the same cell
/// planned twice yields the same decision, estimates and rationale.
#[test]
fn plans_are_deterministic_across_the_matrix() {
    for (dname, doc) in corpora() {
        let index = InvertedIndex::build(&doc);
        for (_, terms) in queries() {
            for (_, filter) in filters() {
                let query = Query::new(terms.iter().copied(), filter.clone());
                let model = CostModel::default();
                let mut s1 = EvalStats::new();
                let mut s2 = EvalStats::new();
                let d1 = plan_query(&doc, &index, &query, &model, &mut s1);
                let d2 = plan_query(&doc, &index, &query, &model, &mut s2);
                assert_eq!(d1, d2, "{dname}/{terms:?}: plan not deterministic");
            }
        }
    }
}

/// A flat run of `n` identical-term siblings: every subset of the
/// postings joins into a distinct fragment, so the true closure is the
/// full powerset (2^n − 1 fragments) while the sampled RF is 0 and the
/// planner's fixpoint estimate stays linear — the canonical case where
/// estimates diverge from actuals.
fn flat_blowup_doc(n: usize) -> Document {
    let mut b = DocumentBuilder::new();
    b.begin("r");
    for _ in 0..n {
        b.leaf("p", "hot");
    }
    b.end();
    b.finish().unwrap()
}

fn span_stages(spans: &[Span], out: &mut Vec<String>) {
    for s in spans {
        out.push(s.stage.clone());
        span_stages(&s.children, out);
    }
}

/// The mid-query re-plan, end to end: the guard trips on the skewed
/// corpus, the `plan:replan` span fires, the fallback completes under
/// the caller's original (unlimited) policy, and the reply is
/// byte-identical to having forced the conservative strategy.
#[test]
fn guard_trip_replans_and_matches_forced_conservative() {
    let doc = flat_blowup_doc(10);
    let index = InvertedIndex::build(&doc);
    let query = Query::new(["hot"], FilterExpr::True);
    let model = CostModel::default();

    // The plan must be optimistic here: a guard exists and its caps sit
    // far below the 2^10 − 1 = 1023-fragment closure's real cost.
    let mut scratch = EvalStats::new();
    let planned = plan_query(&doc, &index, &query, &model, &mut scratch);
    let guard = planned.guard.expect("finite estimate arms a guard");
    assert!(
        guard.max_joins.unwrap() < 10_000,
        "estimate unexpectedly pessimistic: {guard:?}"
    );

    let sink = RecordingSink::new();
    let tracer = Tracer::new(&sink);
    let (auto_r, decision) = evaluate_planned_cached_traced(
        &doc,
        &index,
        &query,
        StrategyChoice::Auto,
        &ExecPolicy::unlimited(),
        &tracer,
        None,
        &model,
    )
    .expect("re-planned evaluation completes");

    assert!(
        decision.replanned,
        "guard should have tripped: {decision:?}"
    );
    assert_eq!(decision.effective, Strategy::PushDown);
    assert_eq!(auto_r.fragments.len(), 1023, "full powerset closure");
    assert_eq!(auto_r.degradation, Degradation::none());

    let mut stages = Vec::new();
    span_stages(&sink.take(), &mut stages);
    assert!(
        stages.iter().any(|s| s.starts_with("plan:choose")),
        "missing plan:choose span: {stages:?}"
    );
    assert!(
        stages.iter().any(|s| s.starts_with("plan:replan:")),
        "missing plan:replan span: {stages:?}"
    );

    // Byte-identity with the forced conservative run, stats included.
    let (forced_r, _) = evaluate_planned_cached_traced(
        &doc,
        &index,
        &query,
        StrategyChoice::Forced(Strategy::PushDown),
        &ExecPolicy::unlimited(),
        &Tracer::disabled(),
        None,
        &model,
    )
    .expect("forced conservative evaluation completes");
    assert_eq!(
        format!("{auto_r:?}"),
        format!("{forced_r:?}"),
        "re-planned reply differs from forced push-down"
    );
}

/// Guards are divergence detectors, not resource policy: under a real
/// budget the ladder owns breaches, so the same skewed corpus must not
/// re-plan — it degrades or completes exactly like a forced run.
#[test]
fn guard_never_arms_under_a_limited_policy() {
    let doc = flat_blowup_doc(10);
    let index = InvertedIndex::build(&doc);
    let query = Query::new(["hot"], FilterExpr::True);
    let model = CostModel::default();
    let policy = ExecPolicy::with_budget(Budget::unlimited().with_max_joins(10_000_000));

    let (auto_r, decision) = evaluate_planned_cached_traced(
        &doc,
        &index,
        &query,
        StrategyChoice::Auto,
        &policy,
        &Tracer::disabled(),
        None,
        &model,
    )
    .expect("budgeted evaluation completes");
    assert!(!decision.replanned, "limited policy must not arm the guard");
    assert_eq!(decision.picked, decision.effective);

    let (forced_r, _) = evaluate_planned_cached_traced(
        &doc,
        &index,
        &query,
        StrategyChoice::Forced(decision.picked),
        &policy,
        &Tracer::disabled(),
        None,
        &model,
    )
    .expect("forced evaluation completes");
    assert_eq!(format!("{auto_r:?}"), format!("{forced_r:?}"));
}
