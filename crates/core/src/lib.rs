#![warn(missing_docs)]

//! # xfrag-core — the fragment algebra
//!
//! The primary contribution of Pradhan, *"An Algebraic Query Model for
//! Effective and Efficient Retrieval of XML Fragments"* (VLDB 2006):
//! a database-style algebra over document fragments, with
//!
//! * [`Fragment`] / [`FragmentSet`] — Definition 2 and the set operands;
//! * [`join`] — fragment join, pairwise fragment join, powerset fragment
//!   join (Definitions 4–6);
//! * [`fixpoint`] — fixed points, fragment set reduce, Theorems 1 & 2;
//! * [`filter`] — selection predicates, anti-monotonic classification
//!   (Definitions 3 & 11, Theorem 3's precondition);
//! * [`query`] — keyword queries and the §4 evaluation strategies;
//! * [`plan`] — a logical plan representation with the paper's algebraic
//!   rewrites as optimizer rules, plus `EXPLAIN`-style rendering of query
//!   evaluation trees (Figure 5);
//! * [`cost`] — the §5 cost-model sketch made concrete: join-count
//!   estimation and reduction-factor-driven strategy choice;
//! * [`overlap`] — grouping of overlapping answers (§5 discussion);
//! * [`parallel`] — optional multi-threaded pairwise joins for large sets;
//! * [`budget`] — resource budgets, cooperative cancellation, retry
//!   budgets, and the graceful-degradation ladder
//!   ([`evaluate_budgeted`]);
//! * [`breaker`] — circuit breakers (closed → open → half-open) that
//!   the replicated server arms per replica;
//! * [`cache`] — generation-keyed, sharded LRU memoization of postings,
//!   fixed points and full results for repeated query traffic;
//! * [`trace`] — span-based stage tracing under every `*_traced` entry
//!   point, powering `--profile` and `explain --analyze`;
//! * [`fault`] — deterministic, seeded fault injection at named sites,
//!   so panic/delay/cancel/read-error handling is testable on demand.
//!
//! ## Example
//!
//! The paper's running query, end to end:
//!
//! ```
//! use xfrag_core::{evaluate, FilterExpr, Query, Strategy};
//! use xfrag_doc::{parse_str, InvertedIndex};
//!
//! let doc = parse_str(
//!     "<sec><sub>optimization topics\
//!        <par>XQuery optimization in practice</par>\
//!        <par>XQuery rewriting</par></sub></sec>",
//! ).unwrap();
//! let index = InvertedIndex::build(&doc);
//! let query = Query::new(["xquery", "optimization"], FilterExpr::MaxSize(3));
//!
//! // All four strategies return the same answer set.
//! let push = evaluate(&doc, &index, &query, Strategy::PushDown).unwrap();
//! let brute = evaluate(&doc, &index, &query, Strategy::BruteForce).unwrap();
//! assert_eq!(push.fragments, brute.fragments);
//! // ⟨sub, par, par⟩ — the self-contained fragment — is among them.
//! assert!(push.fragments.iter().any(|f| f.size() == 3));
//! ```

pub mod breaker;
pub mod budget;
pub mod cache;
pub mod collection;
pub mod cost;
pub mod fault;
pub mod filter;
pub mod fixpoint;
pub mod fragment;
pub mod join;
pub mod nav;
pub mod overlap;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod query;
pub mod rank;
pub mod set;
pub mod snippet;
pub mod stats;
pub mod trace;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Permit};
pub use budget::{
    Breach, Budget, CancelToken, Degradation, DegradeMode, ExecPolicy, Governor, RetryBudget, Rung,
};
pub use cache::{
    flight_key, CacheRef, CacheStats, CachedResult, CarryOver, Flight, FlightFollower, FlightLease,
    FlightOutcome, GenerationTag, PolicyFp, QueryCache, ResultKey, ShardCounters, Singleflight,
    SingleflightStats, TierCounters,
};
pub use collection::{
    evaluate_collection, evaluate_collection_budgeted, evaluate_collection_budgeted_cached_traced,
    evaluate_collection_budgeted_cached_traced_routed, evaluate_collection_budgeted_traced,
    evaluate_collection_parallel, evaluate_collection_planned_cached_traced_routed,
    top_k_collection, BudgetedCollectionResult, CollectionResult, DocAnswers,
};
pub use cost::{CostEstimate, CostModel};
pub use fault::{FaultAction, FaultInjector, FaultPlan};
pub use filter::{select, FilterExpr};
pub use fixpoint::{
    fixed_point, fixed_point_governed, fixed_point_memo_traced, fixed_point_naive,
    fixed_point_naive_governed, fixed_point_naive_traced, fixed_point_reduced,
    fixed_point_reduced_governed, fixed_point_reduced_traced, fixed_point_traced,
    powerset_via_fixpoint, reduce, reduce_governed, reduce_traced, reduction_factor, FixpointMode,
};
pub use fragment::{Fragment, FragmentError};
pub use join::{
    fragment_join, fragment_join_all, fragment_join_many, pairwise_join, pairwise_join_governed,
    pairwise_join_traced, powerset_join, powerset_join_candidates, powerset_join_governed,
    powerset_join_traced, PowersetTooLarge, POWERSET_LIMIT,
};
pub use nav::Nav;
pub use plan::{execute_governed, execute_traced, LogicalPlan, Optimizer, OptimizerRule};
pub use planner::{
    evaluate_decided_cached_traced, evaluate_planned_cached_traced, plan_query, OperandProfile,
    PickCounters, PickSnapshot, PlanCache, PlanDecision, StrategyChoice,
};
pub use query::{
    evaluate, evaluate_budgeted, evaluate_budgeted_cached_traced, evaluate_budgeted_traced,
    evaluate_scoped, evaluate_traced, Query, QueryError, QueryResult, ScopedQueryError, Strategy,
};
pub use set::FragmentSet;
pub use stats::EvalStats;
pub use trace::{
    format_duration, render_spans, spans_to_json, LatencyHistogram, NoopSink, RecordingSink, Span,
    TraceSink, Tracer,
};
