//! Answer presentation: text snippets with keyword highlighting.
//!
//! The paper leaves "answer presentation techniques" to future work (§7);
//! any real retrieval system needs them. A snippet renders a fragment's
//! textual content — node by node, in document order — with query-term
//! occurrences marked and long stretches of non-matching text elided.

use crate::fragment::Fragment;
use xfrag_doc::text::tokenize;
use xfrag_doc::Document;

/// Snippet rendering options.
#[derive(Debug, Clone)]
pub struct SnippetConfig {
    /// Marker inserted before a highlighted term.
    pub open: String,
    /// Marker inserted after a highlighted term.
    pub close: String,
    /// Maximum words kept around each highlight; longer gaps become `…`.
    pub context_words: usize,
    /// Hard cap on the rendered snippet length in characters.
    pub max_chars: usize,
}

impl Default for SnippetConfig {
    fn default() -> Self {
        SnippetConfig {
            open: "[".into(),
            close: "]".into(),
            context_words: 4,
            max_chars: 240,
        }
    }
}

/// Render a highlighted snippet of `fragment` for the given (normalized)
/// query terms.
pub fn snippet(
    doc: &Document,
    fragment: &Fragment,
    terms: &[String],
    cfg: &SnippetConfig,
) -> String {
    // Collect the fragment's words in document order, flagging matches.
    let mut words: Vec<(String, bool)> = Vec::new();
    for n in fragment.iter() {
        for raw in doc.text(n).split_whitespace() {
            let is_hit = tokenize(raw).any(|t| terms.contains(&t));
            words.push((raw.to_string(), is_hit));
        }
    }
    if words.is_empty() {
        return String::new();
    }

    // Keep words within `context_words` of any hit; elide the rest.
    let keep: Vec<bool> = {
        let mut keep = vec![false; words.len()];
        for (i, (_, hit)) in words.iter().enumerate() {
            if *hit {
                let lo = i.saturating_sub(cfg.context_words);
                let hi = (i + cfg.context_words + 1).min(words.len());
                for k in keep.iter_mut().take(hi).skip(lo) {
                    *k = true;
                }
            }
        }
        // No hits at all (e.g. structural-only fragment): keep a prefix.
        if !keep.iter().any(|&k| k) {
            for k in keep.iter_mut().take(2 * cfg.context_words) {
                *k = true;
            }
        }
        keep
    };

    let mut out = String::new();
    let mut elided = false;
    for (i, (w, hit)) in words.iter().enumerate() {
        if !keep[i] {
            if !elided {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push('…');
                elided = true;
            }
            continue;
        }
        elided = false;
        if !out.is_empty() {
            out.push(' ');
        }
        if *hit {
            out.push_str(&cfg.open);
            out.push_str(w);
            out.push_str(&cfg.close);
        } else {
            out.push_str(w);
        }
        if out.len() >= cfg.max_chars {
            // Truncate at the nearest char boundary at or below the cap —
            // `String::truncate` panics mid-code-point on multi-byte text.
            let mut cut = cfg.max_chars.min(out.len());
            while !out.is_char_boundary(cut) {
                cut -= 1;
            }
            out.truncate(cut);
            out.push('…');
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfrag_doc::{parse_str, NodeId};

    fn setup() -> (xfrag_doc::Document, Fragment, Vec<String>) {
        let d = parse_str(
            "<sec><par>one two three four five six seven XQuery eight nine ten \
             eleven twelve optimization thirteen fourteen</par></sec>",
        )
        .unwrap();
        let f = Fragment::from_nodes(&d, [NodeId(0), NodeId(1)]).unwrap();
        let terms = vec!["xquery".to_string(), "optimization".to_string()];
        (d, f, terms)
    }

    #[test]
    fn highlights_and_elides() {
        let (d, f, terms) = setup();
        let s = snippet(&d, &f, &terms, &SnippetConfig::default());
        assert!(s.contains("[XQuery]"), "{s}");
        assert!(s.contains("[optimization]"), "{s}");
        // The far prefix is elided.
        assert!(s.starts_with('…'), "{s}");
        assert!(!s.contains("one two three"), "{s}");
    }

    #[test]
    fn tight_context() {
        let (d, f, terms) = setup();
        let cfg = SnippetConfig {
            context_words: 1,
            ..SnippetConfig::default()
        };
        let s = snippet(&d, &f, &terms, &cfg);
        assert!(s.contains("seven [XQuery] eight"), "{s}");
        assert!(s.contains("…"), "{s}");
    }

    #[test]
    fn custom_markers() {
        let (d, f, terms) = setup();
        let cfg = SnippetConfig {
            open: "<b>".into(),
            close: "</b>".into(),
            ..SnippetConfig::default()
        };
        let s = snippet(&d, &f, &terms, &cfg);
        assert!(s.contains("<b>XQuery</b>"), "{s}");
    }

    #[test]
    fn punctuation_does_not_block_matches() {
        let d = parse_str("<p>about XQuery, optimization!</p>").unwrap();
        let f = Fragment::node(NodeId(0));
        let terms = vec!["xquery".to_string(), "optimization".to_string()];
        let s = snippet(&d, &f, &terms, &SnippetConfig::default());
        assert!(s.contains("[XQuery,]"), "{s}");
        assert!(s.contains("[optimization!]"), "{s}");
    }

    #[test]
    fn no_hits_keeps_prefix() {
        let d = parse_str("<p>just ordinary words with no matches here</p>").unwrap();
        let f = Fragment::node(NodeId(0));
        let s = snippet(&d, &f, &["absent".to_string()], &SnippetConfig::default());
        assert!(s.starts_with("just ordinary"), "{s}");
        assert!(!s.contains('['));
    }

    #[test]
    fn empty_fragment_text() {
        let d = parse_str("<p><q/></p>").unwrap();
        let f = Fragment::from_nodes(&d, [NodeId(0), NodeId(1)]).unwrap();
        assert_eq!(
            snippet(&d, &f, &["x".to_string()], &SnippetConfig::default()),
            ""
        );
    }

    #[test]
    fn max_chars_caps_output() {
        let (d, f, terms) = setup();
        let cfg = SnippetConfig {
            max_chars: 20,
            ..SnippetConfig::default()
        };
        let s = snippet(&d, &f, &terms, &cfg);
        assert!(s.len() <= 24, "{s}"); // cap + ellipsis bytes
    }

    #[test]
    fn max_chars_respects_utf8_boundaries() {
        // Multi-byte words (2- and 3-byte chars) with a matching term, so
        // the cap lands mid-code-point for some `max_chars` value.
        let d = parse_str("<p>naïve café résumé XQuery Füße schön</p>").unwrap();
        let f = Fragment::node(NodeId(0));
        let terms = vec!["xquery".to_string()];
        for max_chars in 1..40 {
            let cfg = SnippetConfig {
                max_chars,
                ..SnippetConfig::default()
            };
            // Must not panic, must stay valid UTF-8, and must still cap.
            let s = snippet(&d, &f, &terms, &cfg);
            assert!(
                s.len() <= max_chars + '…'.len_utf8(),
                "max_chars={max_chars}: {s}"
            );
            assert!(s.chars().count() > 0 || max_chars == 0);
        }
    }
}
