//! A concrete instantiation of the §5 cost-model sketch.
//!
//! The paper defers cost models to future work but describes the decision
//! it must support: *estimate the reduction factor `RF = (a − b)/a` of an
//! operand set and compare it against a calibrated threshold `v` to decide
//! whether `⊖` (fragment set reduce) pays for itself* when computing a
//! fixed point. This module provides:
//!
//! * [`estimate_rf`] — an O(s²·a) sampled estimate of RF (exact when the
//!   sample covers the set);
//! * [`CostModel`] — join-count cost formulas for both fixed-point
//!   computations plus the RF-threshold decision rule;
//! * [`CostModel::choose_mode`] — the optimizer entry point.
//!
//! The default threshold was calibrated with the `reduction` benchmark in
//! `crates/bench` (see EXPERIMENTS.md, experiment P3).

use crate::fixpoint::FixpointMode;
use crate::join::fragment_join;
use crate::plan::LogicalPlan;
use crate::set::FragmentSet;
use crate::stats::EvalStats;
use serde::{Deserialize, Serialize};
use xfrag_doc::{Document, PostingsSource};

/// Estimate the reduction factor of `f` by testing up to `sample`
/// candidate fragments against joins of up to `sample` pairs.
///
/// Sampling is deterministic (evenly-strided) so plans are reproducible;
/// when `sample >= |f|` the estimate is exact and equals
/// [`crate::reduction_factor`].
pub fn estimate_rf(doc: &Document, f: &FragmentSet, sample: usize, stats: &mut EvalStats) -> f64 {
    let frags = f.as_slice();
    let n = frags.len();
    if n <= 2 || sample == 0 {
        return 0.0;
    }
    let stride = n.div_ceil(sample).max(1);
    let candidates: Vec<usize> = (0..n).step_by(stride).collect();
    let pair_pool: Vec<usize> = (0..n).step_by(stride).collect();
    let mut eliminated = 0usize;
    'cand: for &ci in &candidates {
        for (ii, &i) in pair_pool.iter().enumerate() {
            if i == ci {
                continue;
            }
            for &j in &pair_pool[ii + 1..] {
                if j == ci {
                    continue;
                }
                stats.reduce_checks += 1;
                let joined = fragment_join(doc, &frags[i], &frags[j], stats);
                if frags[ci].is_subfragment_of(&joined) {
                    eliminated += 1;
                    continue 'cand;
                }
            }
        }
    }
    eliminated as f64 / candidates.len() as f64
}

/// Join-count cost estimates and the reduce-or-not decision rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// `v` — apply `⊖` only when the estimated RF is at least this value.
    pub rf_threshold: f64,
    /// Sample size for [`estimate_rf`].
    pub rf_sample: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // Calibrated by the P3 reduction-factor sweep: below ~0.25 the
            // O(k³) reduce pass costs more joins than the skipped
            // stabilization checks save.
            rf_threshold: 0.25,
            rf_sample: 32,
        }
    }
}

impl CostModel {
    /// Estimated joins for the *naive* fixed point of a set with `n`
    /// fragments converging in `iters` rounds: each round joins the
    /// accumulated set (≥ n, growing) against the base set, and pays one
    /// stabilization comparison.
    ///
    /// We model the accumulated set as reaching its final cardinality `m`
    /// immediately (an upper bound): `iters · m · n` joins.
    pub fn naive_fixpoint_joins(&self, n: u64, m: u64, iters: u64) -> u64 {
        iters.saturating_mul(m).saturating_mul(n)
    }

    /// Estimated joins for the reduce-then-iterate fixed point: the `⊖`
    /// pass itself costs ~`n·C(n−1,2) ≈ n³/2` joins in the worst case, then
    /// `(k−1) · m · n` iteration joins.
    pub fn reduced_fixpoint_joins(&self, n: u64, m: u64, k: u64) -> u64 {
        let reduce_cost = n
            .saturating_mul(n.saturating_sub(1))
            .saturating_mul(n.saturating_sub(2))
            / 2;
        reduce_cost.saturating_add(k.saturating_sub(1).saturating_mul(m).saturating_mul(n))
    }

    /// Planner-grade estimate for one operand's fixed point, in joins and
    /// output fragments.
    ///
    /// Unlike [`CostModel::estimate_plan`] — whose `2^k − 1` closure caps
    /// are deliberate worst-case bounds for `explain --analyze` — the
    /// planner needs estimates tight enough that "actuals diverged" is
    /// detectable. This models convergence from the postings' depth
    /// spread (`iters ≈ span + 2`: fragments can only grow along
    /// root-paths between postings) and the closure as growing linearly
    /// per round (`m ≈ base · iters`), where the base is `n` for the
    /// naive fixed point and the post-`⊖` cardinality
    /// `k = (1 − RF) · n` for the reduced one.
    pub fn planner_fixpoint_estimate(
        &self,
        n: u64,
        rf: f64,
        depth_span: u64,
        mode: FixpointMode,
    ) -> CostEstimate {
        if n == 0 {
            return CostEstimate {
                joins: 0,
                fragments: 0,
            };
        }
        let iters = depth_span.saturating_add(2);
        match mode {
            FixpointMode::Naive => {
                let m = n.saturating_mul(iters);
                CostEstimate {
                    joins: self.naive_fixpoint_joins(n, m, iters),
                    fragments: m,
                }
            }
            FixpointMode::Reduced => {
                let k = n.saturating_sub((rf * n as f64).round() as u64).max(1);
                let m = k.saturating_mul(iters);
                CostEstimate {
                    joins: self.reduced_fixpoint_joins(n, m, k),
                    fragments: m,
                }
            }
        }
    }

    /// Decide the fixed-point mode for one operand set: estimate RF by
    /// sampling and use [`FixpointMode::Reduced`] only above the threshold
    /// (§5's decision rule verbatim).
    pub fn choose_mode(
        &self,
        doc: &Document,
        f: &FragmentSet,
        stats: &mut EvalStats,
    ) -> FixpointMode {
        let rf = estimate_rf(doc, f, self.rf_sample, stats);
        if rf >= self.rf_threshold {
            FixpointMode::Reduced
        } else {
            FixpointMode::Naive
        }
    }

    /// Estimate the cost of executing `plan` bottom-up, using index
    /// cardinalities at the leaves and the §5 join-count formulas at
    /// fixed points.
    ///
    /// These are deliberately crude *upper-bound* estimates (selections
    /// are assumed to pass everything through, joined cardinalities
    /// multiply, closures are capped at `2^k − 1`): the point of
    /// `explain --analyze` is to print them **next to** the measured
    /// counters, making the model's error visible rather than hiding it.
    pub fn estimate_plan<I: PostingsSource + ?Sized>(
        &self,
        plan: &LogicalPlan,
        doc: &Document,
        index: &I,
    ) -> CostEstimate {
        // Closure cardinality cap: Theorem 2 bounds |F⁺| by the number of
        // non-empty subsets of F.
        fn pow2cap(k: u64) -> u64 {
            if k >= 63 {
                u64::MAX
            } else {
                (1u64 << k).saturating_sub(1)
            }
        }
        match plan {
            LogicalPlan::KeywordSelect { term } => CostEstimate {
                // Directory-only df: never materializes a lazy posting
                // list just to cost the plan.
                joins: 0,
                fragments: index.df(term) as u64,
            },
            // Upper bound: assume the selection passes everything through.
            LogicalPlan::Select { input, .. } => self.estimate_plan(input, doc, index),
            LogicalPlan::PairwiseJoin { left, right } => {
                let l = self.estimate_plan(left, doc, index);
                let r = self.estimate_plan(right, doc, index);
                let pairs = l.fragments.saturating_mul(r.fragments);
                CostEstimate {
                    joins: l.joins.saturating_add(r.joins).saturating_add(pairs),
                    fragments: pairs,
                }
            }
            LogicalPlan::PowersetJoin { left, right } => {
                let l = self.estimate_plan(left, doc, index);
                let r = self.estimate_plan(right, doc, index);
                let candidates = pow2cap(l.fragments).saturating_mul(pow2cap(r.fragments));
                CostEstimate {
                    joins: l.joins.saturating_add(r.joins).saturating_add(candidates),
                    fragments: candidates,
                }
            }
            LogicalPlan::FixedPoint { input, mode, .. } => {
                let inner = self.estimate_plan(input, doc, index);
                let n = inner.fragments;
                // Recover the operand set when the input is a (possibly
                // selected) keyword leaf, so RF can be sampled; otherwise
                // assume nothing reduces.
                let rf = match leaf_term(input) {
                    Some(term) => {
                        let f = FragmentSet::of_nodes(index.postings(term).iter().copied());
                        let mut st = EvalStats::new();
                        estimate_rf(doc, &f, self.rf_sample, &mut st)
                    }
                    None => 0.0,
                };
                let k = n.saturating_sub((rf * n as f64).round() as u64).max(1);
                let m = pow2cap(k);
                let joins = match mode {
                    FixpointMode::Naive => self.naive_fixpoint_joins(n, m, k.saturating_add(1)),
                    FixpointMode::Reduced => self.reduced_fixpoint_joins(n, m, k),
                };
                CostEstimate {
                    joins: inner.joins.saturating_add(joins),
                    fragments: m,
                }
            }
            LogicalPlan::Union { left, right } => {
                let l = self.estimate_plan(left, doc, index);
                let r = self.estimate_plan(right, doc, index);
                CostEstimate {
                    joins: l.joins.saturating_add(r.joins),
                    fragments: l.fragments.saturating_add(r.fragments),
                }
            }
        }
    }
}

/// The keyword term at the bottom of a (possibly selected) leaf chain.
fn leaf_term(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::KeywordSelect { term } => Some(term),
        LogicalPlan::Select { input, .. } => leaf_term(input),
        _ => None,
    }
}

/// A plan-stage cost estimate: the two quantities the paper's efficiency
/// arguments count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Estimated join kernels executed.
    pub joins: u64,
    /// Estimated output cardinality (fragments).
    pub fragments: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixpoint::reduction_factor;
    use crate::fragment::Fragment;
    use xfrag_doc::{DocumentBuilder, InvertedIndex, NodeId};

    /// Chain r -> c1 -> c2 -> ... -> c9 (ids 0..9) plus a sibling leaf.
    fn chain_doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        {
            b.begin("c1");
            b.begin("c2");
            b.begin("c3");
            b.begin("c4");
            b.leaf("c5", "");
            b.end();
            b.end();
            b.end();
            b.end();
            b.leaf("s", "");
        }
        b.end();
        b.finish().unwrap()
    }

    #[test]
    fn exact_sample_matches_reduction_factor() {
        let d = chain_doc();
        let mut st = EvalStats::new();
        // Chain nodes: every interior node is on the path of its
        // neighbours → heavy reduction.
        let f = FragmentSet::from_iter((1..=5).map(|i| Fragment::node(NodeId(i))));
        let exact = reduction_factor(&d, &f, &mut st);
        let est = estimate_rf(&d, &f, 100, &mut st);
        assert!((exact - est).abs() < 1e-9, "exact {exact} vs est {est}");
        assert!(exact > 0.5);
    }

    #[test]
    fn small_sets_have_zero_rf() {
        let d = chain_doc();
        let mut st = EvalStats::new();
        let f = FragmentSet::from_iter([Fragment::node(NodeId(1)), Fragment::node(NodeId(6))]);
        assert_eq!(estimate_rf(&d, &f, 10, &mut st), 0.0);
        assert_eq!(estimate_rf(&d, &FragmentSet::new(), 10, &mut st), 0.0);
    }

    #[test]
    fn choose_mode_follows_threshold() {
        let d = chain_doc();
        let mut st = EvalStats::new();
        let reducible = FragmentSet::from_iter((1..=5).map(|i| Fragment::node(NodeId(i))));
        let cm = CostModel::default();
        assert_eq!(
            cm.choose_mode(&d, &reducible, &mut st),
            FixpointMode::Reduced
        );
        // Two disjoint leaves: nothing to reduce.
        let irreducible =
            FragmentSet::from_iter([Fragment::node(NodeId(5)), Fragment::node(NodeId(6))]);
        assert_eq!(
            cm.choose_mode(&d, &irreducible, &mut st),
            FixpointMode::Naive
        );
        // A model with an impossible threshold never reduces.
        let strict = CostModel {
            rf_threshold: 1.1,
            ..CostModel::default()
        };
        assert_eq!(
            strict.choose_mode(&d, &reducible, &mut st),
            FixpointMode::Naive
        );
    }

    #[test]
    fn estimate_plan_shapes() {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.leaf("p", "x y");
        b.leaf("p", "x");
        b.end();
        let d = b.finish().unwrap();
        let idx = InvertedIndex::build(&d);
        let cm = CostModel::default();
        let leaf = |t: &str| LogicalPlan::KeywordSelect {
            term: t.to_string(),
        };

        // Leaves: cardinality straight from the index, no joins.
        let est = cm.estimate_plan(&leaf("x"), &d, &idx);
        assert_eq!(
            est,
            CostEstimate {
                joins: 0,
                fragments: 2
            }
        );

        // Pairwise join: |L|·|R| pairs.
        let join = LogicalPlan::PairwiseJoin {
            left: Box::new(leaf("x")),
            right: Box::new(leaf("y")),
        };
        assert_eq!(
            cm.estimate_plan(&join, &d, &idx),
            CostEstimate {
                joins: 2,
                fragments: 2
            }
        );

        // Union: sums of both branches; a wrapping selection is a
        // pass-through upper bound.
        let union = LogicalPlan::Select {
            filter: crate::filter::FilterExpr::MaxSize(1),
            input: Box::new(LogicalPlan::Union {
                left: Box::new(leaf("x")),
                right: Box::new(leaf("y")),
            }),
        };
        assert_eq!(
            cm.estimate_plan(&union, &d, &idx),
            CostEstimate {
                joins: 0,
                fragments: 3
            }
        );

        // Fixed point over a 2-fragment leaf: RF samples to 0 (sets of
        // ≤ 2 never reduce), so k = n = 2, closure cap m = 2^2 − 1 = 3.
        let fp = LogicalPlan::FixedPoint {
            input: Box::new(leaf("x")),
            mode: FixpointMode::Naive,
            inner_filter: None,
        };
        let est = cm.estimate_plan(&fp, &d, &idx);
        assert_eq!(est.fragments, 3);
        assert_eq!(est.joins, cm.naive_fixpoint_joins(2, 3, 3));
    }

    #[test]
    fn cost_formulas_monotone() {
        let cm = CostModel::default();
        assert!(cm.naive_fixpoint_joins(10, 50, 5) > cm.naive_fixpoint_joins(10, 50, 2));
        assert!(cm.reduced_fixpoint_joins(10, 50, 2) < cm.reduced_fixpoint_joins(10, 50, 5));
        // Saturating, not panicking, on absurd sizes.
        assert_eq!(cm.naive_fixpoint_joins(u64::MAX, 2, 2), u64::MAX);
    }
}
