//! Logical query plans, the paper's rewrites as optimizer rules, and
//! Figure 5-style `EXPLAIN` rendering.
//!
//! §3 is written the way a database optimizer thinks: a query is an
//! algebraic expression tree, and optimization is rewriting it into an
//! equivalent tree that is cheaper to evaluate "irrespective of how they
//! are implemented". This module makes that concrete:
//!
//! * [`LogicalPlan`] — the expression tree (`σ`, `⋈`, `⋈*`, `⁺` over
//!   keyword-selection leaves);
//! * [`PowersetToFixpoint`] — Theorem 2: `F1 ⋈* F2 → F1⁺ ⋈ F2⁺`;
//! * [`PushDownSelection`] — Theorem 3: anti-monotonic selections commute
//!   below pairwise joins and into fixed-point iterations;
//! * [`ChooseFixpointMode`] — the §5 decision rule, delegating to
//!   [`crate::cost::CostModel`];
//! * [`execute`] — the physical interpreter, shared by every path;
//! * [`LogicalPlan::render`] — the indented evaluation-tree printer
//!   (compare Figure 5 (a) and (b)).

use crate::budget::{Breach, Governor};
use crate::cost::CostModel;
use crate::filter::{select, FilterExpr};
use crate::fixpoint::{fixed_point, fixed_point_traced, FixpointMode};
use crate::join::{
    pairwise_join, pairwise_join_governed, pairwise_join_traced, powerset_join,
    powerset_join_traced,
};
use crate::nav::Nav;
use crate::query::{Query, QueryError};
use crate::set::FragmentSet;
use crate::stats::EvalStats;
use crate::trace::Tracer;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use xfrag_doc::{Document, PostingsSource};

/// An algebraic expression over fragment sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogicalPlan {
    /// `σ_{keyword=term}(nodes(D))` — the leaf of every query tree.
    KeywordSelect {
        /// Normalized query term.
        term: String,
    },
    /// `σ_filter(input)`.
    Select {
        /// The predicate.
        filter: FilterExpr,
        /// The operand expression.
        input: Box<LogicalPlan>,
    },
    /// `left ⋈ right` — pairwise fragment join.
    PairwiseJoin {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// `left ⋈* right` — powerset fragment join (pre-optimization form).
    PowersetJoin {
        /// Left operand.
        left: Box<LogicalPlan>,
        /// Right operand.
        right: Box<LogicalPlan>,
    },
    /// `input⁺` — fixed point, optionally filtering after every iteration
    /// with an anti-monotonic predicate (the §3.3 expansion).
    FixedPoint {
        /// The operand expression.
        input: Box<LogicalPlan>,
        /// Naive or Theorem-1-reduced iteration.
        mode: FixpointMode,
        /// Anti-monotonic filter applied inside every iteration.
        inner_filter: Option<FilterExpr>,
    },
    /// `left ∪ right` — set union. Introduced by the distributive-law
    /// rewrite `F1 ⋈ (F2 ∪ F3) = (F1 ⋈ F2) ∪ (F1 ⋈ F3)` (a Definition 5
    /// law the paper lists among its optimization-enabling properties);
    /// union branches are independent and can be evaluated in parallel.
    Union {
        /// Left branch.
        left: Box<LogicalPlan>,
        /// Right branch.
        right: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// The canonical un-optimized plan for a query (§2.3):
    /// `σ_P(F1 ⋈* F2 ⋈* … ⋈* Fm)`.
    pub fn for_query(query: &Query) -> Result<LogicalPlan, QueryError> {
        let mut terms = query.terms.iter();
        let first = terms.next().ok_or(QueryError::NoTerms)?;
        let mut plan = LogicalPlan::KeywordSelect {
            term: first.clone(),
        };
        let mut saw_join = false;
        for t in terms {
            saw_join = true;
            plan = LogicalPlan::PowersetJoin {
                left: Box::new(plan),
                right: Box::new(LogicalPlan::KeywordSelect { term: t.clone() }),
            };
        }
        if !saw_join {
            // Single-term queries still close the operand under join:
            // F1⁺ is the m = 1 degenerate form of the powerset join.
            plan = LogicalPlan::FixedPoint {
                input: Box::new(plan),
                mode: FixpointMode::Naive,
                inner_filter: None,
            };
        }
        Ok(LogicalPlan::Select {
            filter: query.filter.clone(),
            input: Box::new(plan),
        })
    }

    /// A plan for a query with *synonym groups*: each group is a
    /// disjunction of terms (`σ_{k=t1} ∪ σ_{k=t2} ∪ …` — keyword
    /// selections over the same node universe union exactly), and groups
    /// combine conjunctively through powerset joins as usual. With one
    /// term per group this reduces to [`LogicalPlan::for_query`]'s shape.
    pub fn for_query_groups(
        groups: &[Vec<String>],
        filter: FilterExpr,
    ) -> Result<LogicalPlan, QueryError> {
        fn group_plan(group: &[String]) -> Result<LogicalPlan, QueryError> {
            let mut it = group.iter();
            let first = it.next().ok_or(QueryError::NoTerms)?;
            let mut plan = LogicalPlan::KeywordSelect {
                term: first.clone(),
            };
            for t in it {
                plan = LogicalPlan::Union {
                    left: Box::new(plan),
                    right: Box::new(LogicalPlan::KeywordSelect { term: t.clone() }),
                };
            }
            Ok(plan)
        }
        let mut it = groups.iter();
        let first = it.next().ok_or(QueryError::NoTerms)?;
        let mut plan = group_plan(first)?;
        let mut saw_join = false;
        for g in it {
            saw_join = true;
            plan = LogicalPlan::PowersetJoin {
                left: Box::new(plan),
                right: Box::new(group_plan(g)?),
            };
        }
        if !saw_join {
            plan = LogicalPlan::FixedPoint {
                input: Box::new(plan),
                mode: FixpointMode::Naive,
                inner_filter: None,
            };
        }
        Ok(LogicalPlan::Select {
            filter,
            input: Box::new(plan),
        })
    }

    /// Short one-line label for this operator (no children) — used as the
    /// trace span stage for plan execution and in `explain --analyze`
    /// stage tables.
    pub fn label(&self) -> String {
        match self {
            LogicalPlan::KeywordSelect { term } => format!("keyword:{term}"),
            LogicalPlan::Select { filter, .. } => format!("σ[{filter}]"),
            LogicalPlan::PairwiseJoin { .. } => "⋈ pairwise".to_string(),
            LogicalPlan::PowersetJoin { .. } => "⋈* powerset".to_string(),
            LogicalPlan::FixedPoint { mode, .. } => format!("fixpoint[{mode:?}]"),
            LogicalPlan::Union { .. } => "∪ union".to_string(),
        }
    }

    /// Render the evaluation tree, one operator per line, children
    /// indented — the visual of Figure 5.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, level: usize) {
        for _ in 0..level {
            out.push_str("  ");
        }
        // invariant (every writeln! below): fmt::Write for String never
        // returns Err.
        match self {
            LogicalPlan::KeywordSelect { term } => {
                writeln!(out, "σ[keyword={term}](nodes(D))").unwrap();
            }
            LogicalPlan::Select { filter, input } => {
                writeln!(out, "σ[{filter}]").unwrap();
                input.render_into(out, level + 1);
            }
            LogicalPlan::PairwiseJoin { left, right } => {
                writeln!(out, "⋈ (pairwise)").unwrap();
                left.render_into(out, level + 1);
                right.render_into(out, level + 1);
            }
            LogicalPlan::PowersetJoin { left, right } => {
                writeln!(out, "⋈* (powerset)").unwrap();
                left.render_into(out, level + 1);
                right.render_into(out, level + 1);
            }
            LogicalPlan::FixedPoint {
                input,
                mode,
                inner_filter,
            } => {
                match inner_filter {
                    Some(p) => writeln!(out, "fixpoint[{mode:?}, inner σ[{p}]]").unwrap(),
                    None => writeln!(out, "fixpoint[{mode:?}]").unwrap(),
                }
                input.render_into(out, level + 1);
            }
            LogicalPlan::Union { left, right } => {
                writeln!(out, "∪ (union)").unwrap();
                left.render_into(out, level + 1);
                right.render_into(out, level + 1);
            }
        }
    }
}

/// A plan-to-plan rewrite preserving the result set.
pub trait OptimizerRule {
    /// Stable rule name for explain output.
    fn name(&self) -> &'static str;
    /// Rewrite the plan. Must preserve semantics.
    fn apply(&self, plan: LogicalPlan) -> LogicalPlan;
}

/// Theorem 2: replace every `⋈*` with `⁺`-then-`⋈`.
#[derive(Debug, Default)]
pub struct PowersetToFixpoint;

impl PowersetToFixpoint {
    fn rewrite(plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::PowersetJoin { left, right } => {
                let l = Self::rewrite(*left);
                let r = Self::rewrite(*right);
                LogicalPlan::PairwiseJoin {
                    left: Box::new(Self::close(l)),
                    right: Box::new(Self::close(r)),
                }
            }
            LogicalPlan::Select { filter, input } => LogicalPlan::Select {
                filter,
                input: Box::new(Self::rewrite(*input)),
            },
            LogicalPlan::PairwiseJoin { left, right } => LogicalPlan::PairwiseJoin {
                left: Box::new(Self::rewrite(*left)),
                right: Box::new(Self::rewrite(*right)),
            },
            LogicalPlan::FixedPoint {
                input,
                mode,
                inner_filter,
            } => LogicalPlan::FixedPoint {
                input: Box::new(Self::rewrite(*input)),
                mode,
                inner_filter,
            },
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                left: Box::new(Self::rewrite(*left)),
                right: Box::new(Self::rewrite(*right)),
            },
            leaf @ LogicalPlan::KeywordSelect { .. } => leaf,
        }
    }

    /// Wrap `plan` in a fixed point — unless it is already closed under
    /// `⋈`. A pairwise join of fixed points is closed (joins of joins of
    /// base elements are joins of base elements), so re-closing it would
    /// only waste an iteration.
    fn close(plan: LogicalPlan) -> LogicalPlan {
        if Self::is_join_closed(&plan) {
            return plan;
        }
        LogicalPlan::FixedPoint {
            input: Box::new(plan),
            mode: FixpointMode::Naive,
            inner_filter: None,
        }
    }

    fn is_join_closed(plan: &LogicalPlan) -> bool {
        match plan {
            LogicalPlan::FixedPoint { .. } => true,
            LogicalPlan::PairwiseJoin { left, right } => {
                Self::is_join_closed(left) && Self::is_join_closed(right)
            }
            _ => false,
        }
    }
}

impl OptimizerRule for PowersetToFixpoint {
    fn name(&self) -> &'static str {
        "powerset-to-fixpoint (Theorem 2)"
    }
    fn apply(&self, plan: LogicalPlan) -> LogicalPlan {
        Self::rewrite(plan)
    }
}

/// The Definition 5 distributive law as a rewrite:
/// `A ⋈ (B ∪ C) → (A ⋈ B) ∪ (A ⋈ C)` (and symmetrically on the left).
/// Union branches are independent — a parallel executor can run them on
/// separate workers — and selections distribute into them exactly.
#[derive(Debug, Default)]
pub struct DistributeJoinOverUnion;

impl DistributeJoinOverUnion {
    fn rewrite(plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::PairwiseJoin { left, right } => {
                let l = Self::rewrite(*left);
                let r = Self::rewrite(*right);
                match (l, r) {
                    (l, LogicalPlan::Union { left: b, right: c }) => LogicalPlan::Union {
                        left: Box::new(Self::rewrite(LogicalPlan::PairwiseJoin {
                            left: Box::new(l.clone()),
                            right: b,
                        })),
                        right: Box::new(Self::rewrite(LogicalPlan::PairwiseJoin {
                            left: Box::new(l),
                            right: c,
                        })),
                    },
                    (LogicalPlan::Union { left: a, right: b }, r) => LogicalPlan::Union {
                        left: Box::new(Self::rewrite(LogicalPlan::PairwiseJoin {
                            left: a,
                            right: Box::new(r.clone()),
                        })),
                        right: Box::new(Self::rewrite(LogicalPlan::PairwiseJoin {
                            left: b,
                            right: Box::new(r),
                        })),
                    },
                    (l, r) => LogicalPlan::PairwiseJoin {
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                }
            }
            LogicalPlan::Select { filter, input } => LogicalPlan::Select {
                filter,
                input: Box::new(Self::rewrite(*input)),
            },
            LogicalPlan::PowersetJoin { left, right } => LogicalPlan::PowersetJoin {
                left: Box::new(Self::rewrite(*left)),
                right: Box::new(Self::rewrite(*right)),
            },
            LogicalPlan::FixedPoint {
                input,
                mode,
                inner_filter,
            } => LogicalPlan::FixedPoint {
                input: Box::new(Self::rewrite(*input)),
                mode,
                inner_filter,
            },
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                left: Box::new(Self::rewrite(*left)),
                right: Box::new(Self::rewrite(*right)),
            },
            leaf @ LogicalPlan::KeywordSelect { .. } => leaf,
        }
    }
}

impl OptimizerRule for DistributeJoinOverUnion {
    fn name(&self) -> &'static str {
        "distribute-join-over-union (Definition 5 law)"
    }
    fn apply(&self, plan: LogicalPlan) -> LogicalPlan {
        Self::rewrite(plan)
    }
}

/// Theorem 3: push anti-monotonic selections below joins and inside
/// fixed points.
#[derive(Debug, Default)]
pub struct PushDownSelection;

impl PushDownSelection {
    /// `anti` is the conjunction of anti-monotonic predicates inherited
    /// from enclosing selections.
    fn rewrite(plan: LogicalPlan, anti: &FilterExpr) -> LogicalPlan {
        match plan {
            LogicalPlan::Select { filter, input } => {
                let (a, _rest) = filter.split_anti_monotonic();
                let combined = FilterExpr::and([anti.clone(), a]);
                LogicalPlan::Select {
                    filter,
                    input: Box::new(Self::rewrite(*input, &combined)),
                }
            }
            LogicalPlan::PairwiseJoin { left, right } => {
                let joined = LogicalPlan::PairwiseJoin {
                    left: Box::new(Self::rewrite(*left, anti)),
                    right: Box::new(Self::rewrite(*right, anti)),
                };
                Self::guard(joined, anti)
            }
            LogicalPlan::PowersetJoin { left, right } => {
                // Theorems 2 + 3 compose: the anti-monotonic filter passes
                // through the powerset join to both operands.
                let joined = LogicalPlan::PowersetJoin {
                    left: Box::new(Self::rewrite(*left, anti)),
                    right: Box::new(Self::rewrite(*right, anti)),
                };
                Self::guard(joined, anti)
            }
            LogicalPlan::FixedPoint {
                input,
                mode,
                inner_filter,
            } => {
                let inner = match (inner_filter, anti.is_true()) {
                    (None, true) => None,
                    (None, false) => Some(anti.clone()),
                    (Some(p), true) => Some(p),
                    (Some(p), false) => Some(FilterExpr::and([p, anti.clone()])),
                };
                LogicalPlan::FixedPoint {
                    input: Box::new(Self::rewrite(*input, anti)),
                    mode,
                    inner_filter: inner,
                }
            }
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                // σ distributes over ∪ exactly (no anti-monotonicity
                // needed): push into both branches, no guard required.
                left: Box::new(Self::rewrite(*left, anti)),
                right: Box::new(Self::rewrite(*right, anti)),
            },
            leaf @ LogicalPlan::KeywordSelect { .. } => Self::guard(leaf, anti),
        }
    }

    /// Wrap in `σ[anti]` unless that would be a no-op.
    fn guard(plan: LogicalPlan, anti: &FilterExpr) -> LogicalPlan {
        if anti.is_true() {
            return plan;
        }
        if let LogicalPlan::Select { filter, .. } = &plan {
            if filter == anti {
                return plan;
            }
        }
        LogicalPlan::Select {
            filter: anti.clone(),
            input: Box::new(plan),
        }
    }
}

impl OptimizerRule for PushDownSelection {
    fn name(&self) -> &'static str {
        "push-down-selection (Theorem 3)"
    }
    fn apply(&self, plan: LogicalPlan) -> LogicalPlan {
        Self::rewrite(plan, &FilterExpr::True)
    }
}

/// §5's decision rule: pick [`FixpointMode::Reduced`] for fixed points
/// whose operand's *estimated* reduction factor clears the cost-model
/// threshold. This rule needs data statistics, so it holds the document
/// and index.
pub struct ChooseFixpointMode<'a, I: PostingsSource + ?Sized> {
    /// The cost model carrying the threshold `v` and sample size.
    pub model: CostModel,
    /// Document being queried.
    pub doc: &'a Document,
    /// Its keyword index (to materialize leaf cardinalities).
    pub index: &'a I,
}

impl<I: PostingsSource + ?Sized> ChooseFixpointMode<'_, I> {
    fn rewrite(&self, plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::FixedPoint {
                input,
                mode: _,
                inner_filter,
            } => {
                // Only keyword-select leaves (possibly under selections)
                // have cheaply-estimable operand sets.
                let mode = match Self::leaf_term(&input) {
                    Some(term) => {
                        let mut st = EvalStats::new();
                        let f = FragmentSet::of_nodes(self.index.postings(term).iter().copied());
                        self.model.choose_mode(self.doc, &f, &mut st)
                    }
                    None => FixpointMode::Naive,
                };
                LogicalPlan::FixedPoint {
                    input: Box::new(self.rewrite(*input)),
                    mode,
                    inner_filter,
                }
            }
            LogicalPlan::Select { filter, input } => LogicalPlan::Select {
                filter,
                input: Box::new(self.rewrite(*input)),
            },
            LogicalPlan::PairwiseJoin { left, right } => LogicalPlan::PairwiseJoin {
                left: Box::new(self.rewrite(*left)),
                right: Box::new(self.rewrite(*right)),
            },
            LogicalPlan::PowersetJoin { left, right } => LogicalPlan::PowersetJoin {
                left: Box::new(self.rewrite(*left)),
                right: Box::new(self.rewrite(*right)),
            },
            LogicalPlan::Union { left, right } => LogicalPlan::Union {
                left: Box::new(self.rewrite(*left)),
                right: Box::new(self.rewrite(*right)),
            },
            leaf @ LogicalPlan::KeywordSelect { .. } => leaf,
        }
    }

    fn leaf_term(plan: &LogicalPlan) -> Option<&str> {
        match plan {
            LogicalPlan::KeywordSelect { term } => Some(term),
            LogicalPlan::Select { input, .. } => Self::leaf_term(input),
            _ => None,
        }
    }
}

impl<I: PostingsSource + ?Sized> OptimizerRule for ChooseFixpointMode<'_, I> {
    fn name(&self) -> &'static str {
        "choose-fixpoint-mode (§5 RF rule)"
    }
    fn apply(&self, plan: LogicalPlan) -> LogicalPlan {
        self.rewrite(plan)
    }
}

/// An ordered pipeline of rewrite rules.
pub struct Optimizer<'a> {
    rules: Vec<Box<dyn OptimizerRule + 'a>>,
}

impl<'a> Optimizer<'a> {
    /// The paper's full pipeline: Theorem 2, then Theorem 3, then the §5
    /// RF decision.
    pub fn standard<I: PostingsSource + ?Sized>(
        doc: &'a Document,
        index: &'a I,
        model: CostModel,
    ) -> Self {
        Optimizer {
            rules: vec![
                Box::new(PowersetToFixpoint),
                Box::new(PushDownSelection),
                Box::new(ChooseFixpointMode { model, doc, index }),
            ],
        }
    }

    /// An optimizer with no rules (identity).
    pub fn empty() -> Self {
        Optimizer { rules: Vec::new() }
    }

    /// Add a rule to the end of the pipeline.
    pub fn with_rule(mut self, rule: impl OptimizerRule + 'a) -> Self {
        self.rules.push(Box::new(rule));
        self
    }

    /// Apply all rules in order.
    pub fn optimize(&self, mut plan: LogicalPlan) -> LogicalPlan {
        for rule in &self.rules {
            plan = rule.apply(plan);
        }
        plan
    }

    /// Apply all rules, returning the plan after each rule — the EXPLAIN
    /// trace.
    pub fn optimize_traced(&self, mut plan: LogicalPlan) -> Vec<(String, LogicalPlan)> {
        let mut trace = vec![("initial".to_string(), plan.clone())];
        for rule in &self.rules {
            plan = rule.apply(plan);
            trace.push((rule.name().to_string(), plan.clone()));
        }
        trace
    }
}

/// Evaluate a logical plan against a document. Structural questions go
/// through a [`Nav`] built from the source's labels, so a persistent
/// segment executes plans by label arithmetic, an in-memory index by
/// tree walks.
pub fn execute<I: PostingsSource + ?Sized>(
    plan: &LogicalPlan,
    doc: &Document,
    index: &I,
    stats: &mut EvalStats,
) -> Result<FragmentSet, QueryError> {
    let nav = Nav::new(doc, index.labels());
    match plan {
        LogicalPlan::KeywordSelect { term } => {
            Ok(FragmentSet::of_nodes(index.postings(term).iter().copied()))
        }
        LogicalPlan::Select { filter, input } => {
            let f = execute(input, doc, index, stats)?;
            Ok(select(doc, filter, &f, stats))
        }
        LogicalPlan::PairwiseJoin { left, right } => {
            let l = execute(left, doc, index, stats)?;
            let r = execute(right, doc, index, stats)?;
            if l.is_empty() || r.is_empty() {
                return Ok(FragmentSet::new());
            }
            Ok(pairwise_join(nav, &l, &r, stats))
        }
        LogicalPlan::PowersetJoin { left, right } => {
            let l = execute(left, doc, index, stats)?;
            let r = execute(right, doc, index, stats)?;
            if l.is_empty() || r.is_empty() {
                return Ok(FragmentSet::new());
            }
            Ok(powerset_join(nav, &l, &r, stats)?)
        }
        LogicalPlan::FixedPoint {
            input,
            mode,
            inner_filter,
        } => {
            let f = execute(input, doc, index, stats)?;
            match inner_filter {
                None => Ok(fixed_point(nav, &f, *mode, stats)),
                Some(p) => Ok(filtered_fixed_point(nav, &f, p, stats)),
            }
        }
        LogicalPlan::Union { left, right } => {
            let l = execute(left, doc, index, stats)?;
            let r = execute(right, doc, index, stats)?;
            Ok(l.union(&r))
        }
    }
}

/// [`execute`] under a [`Governor`]: a budget checkpoint runs at every
/// operator boundary (so even a deep plan observes deadlines and
/// cancellation promptly) and every join/fixed-point operator charges the
/// governor. Powerset operands over [`crate::POWERSET_LIMIT`] surface as
/// [`Breach::PowersetLimit`] instead of a hard error.
pub fn execute_governed<I: PostingsSource + ?Sized>(
    plan: &LogicalPlan,
    doc: &Document,
    index: &I,
    stats: &mut EvalStats,
    gov: &Governor,
) -> Result<FragmentSet, Breach> {
    execute_traced(plan, doc, index, stats, gov, &Tracer::disabled())
}

/// [`execute_governed`] with span recording: every plan operator opens a
/// span labeled by [`LogicalPlan::label`], nested to mirror the plan
/// tree, with fixed-point operators contributing their per-round child
/// spans — the execution side of `explain --analyze`.
pub fn execute_traced<I: PostingsSource + ?Sized>(
    plan: &LogicalPlan,
    doc: &Document,
    index: &I,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    let nav = Nav::new(doc, index.labels());
    tracer.scoped_lazy(
        || plan.label(),
        stats,
        |stats| {
            gov.checkpoint()?;
            match plan {
                LogicalPlan::KeywordSelect { term } => {
                    Ok(crate::query::term_operand(index, term, tracer, stats))
                }
                LogicalPlan::Select { filter, input } => {
                    let f = execute_traced(input, doc, index, stats, gov, tracer)?;
                    Ok(select(doc, filter, &f, stats))
                }
                LogicalPlan::PairwiseJoin { left, right } => {
                    let l = execute_traced(left, doc, index, stats, gov, tracer)?;
                    let r = execute_traced(right, doc, index, stats, gov, tracer)?;
                    if l.is_empty() || r.is_empty() {
                        return Ok(FragmentSet::new());
                    }
                    pairwise_join_traced(nav, &l, &r, stats, gov, tracer)
                }
                LogicalPlan::PowersetJoin { left, right } => {
                    let l = execute_traced(left, doc, index, stats, gov, tracer)?;
                    let r = execute_traced(right, doc, index, stats, gov, tracer)?;
                    if l.is_empty() || r.is_empty() {
                        return Ok(FragmentSet::new());
                    }
                    powerset_join_traced(nav, &l, &r, stats, gov, tracer)
                }
                LogicalPlan::FixedPoint {
                    input,
                    mode,
                    inner_filter,
                } => {
                    let f = execute_traced(input, doc, index, stats, gov, tracer)?;
                    // An unbounded governor cannot stop an unfiltered closure
                    // blow-up, and Theorem 2 says |F⁺| can reach the powerset
                    // size — refuse it like the literal enumeration would.
                    // Filtered fixed points stay admissible: the pushed-down
                    // anti-monotonic filter is what makes them tractable.
                    if inner_filter.is_none()
                        && !gov.is_work_bounded()
                        && f.len() > crate::join::POWERSET_LIMIT
                    {
                        return Err(Breach::PowersetLimit);
                    }
                    match inner_filter {
                        None => fixed_point_traced(nav, &f, *mode, stats, gov, tracer),
                        Some(p) => filtered_fixed_point_governed(nav, &f, p, stats, gov, tracer),
                    }
                }
                LogicalPlan::Union { left, right } => {
                    let l = execute_traced(left, doc, index, stats, gov, tracer)?;
                    let r = execute_traced(right, doc, index, stats, gov, tracer)?;
                    Ok(l.union(&r))
                }
            }
        },
    )
}

/// Fixed point with per-iteration anti-monotonic filtering (§3.3's
/// expansion). Mirrors `query::filtered_fixed_point`; duplicated here to
/// keep the plan interpreter self-contained.
fn filtered_fixed_point(
    nav: Nav<'_>,
    f: &FragmentSet,
    anti: &FilterExpr,
    stats: &mut EvalStats,
) -> FragmentSet {
    let doc = nav.doc();
    let base = select(doc, anti, f, stats);
    if base.is_empty() {
        return FragmentSet::new();
    }
    let mut h = base.clone();
    loop {
        stats.fixpoint_iterations += 1;
        let joined = pairwise_join(nav, &h, &base, stats);
        let kept = select(doc, anti, &joined, stats);
        let next = kept.union(&h);
        stats.fixpoint_checks += 1;
        if next.len() == h.len() {
            return h;
        }
        h = next;
    }
}

/// Governed + traced variant of [`filtered_fixed_point`]: checkpoint per
/// round, joins charged, a `filtered-fixpoint` span with `round` children.
fn filtered_fixed_point_governed(
    nav: Nav<'_>,
    f: &FragmentSet,
    anti: &FilterExpr,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    let doc = nav.doc();
    tracer.scoped("filtered-fixpoint", stats, |stats| {
        let base = select(doc, anti, f, stats);
        if base.is_empty() {
            return Ok(FragmentSet::new());
        }
        let mut h = base.clone();
        loop {
            gov.checkpoint()?;
            let next = tracer.scoped("round", stats, |stats| -> Result<FragmentSet, Breach> {
                stats.fixpoint_iterations += 1;
                let joined = pairwise_join_governed(nav, &h, &base, stats, gov)?;
                Ok(select(doc, anti, &joined, stats).union(&h))
            })?;
            stats.fixpoint_checks += 1;
            if next.len() == h.len() {
                return Ok(h);
            }
            h = next;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{evaluate, Strategy};
    use xfrag_doc::{DocumentBuilder, InvertedIndex};

    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("article");
        b.begin("sec");
        b.text("alpha");
        b.leaf("p", "alpha beta");
        b.leaf("p", "beta");
        b.end();
        b.begin("sec");
        b.leaf("p", "alpha");
        b.leaf("p", "gamma");
        b.end();
        b.end();
        b.finish().unwrap()
    }

    fn query(terms: &[&str], filter: FilterExpr) -> Query {
        Query::new(terms.iter().copied(), filter)
    }

    #[test]
    fn initial_plan_shape() {
        let q = query(&["alpha", "beta"], FilterExpr::MaxSize(3));
        let plan = LogicalPlan::for_query(&q).unwrap();
        let rendered = plan.render();
        assert!(rendered.contains("σ[size≤3]"));
        assert!(rendered.contains("⋈* (powerset)"));
        assert!(rendered.contains("σ[keyword=alpha](nodes(D))"));
        assert!(rendered.contains("σ[keyword=beta](nodes(D))"));
    }

    #[test]
    fn single_term_plan_closes_with_fixpoint() {
        let q = query(&["alpha"], FilterExpr::True);
        let plan = LogicalPlan::for_query(&q).unwrap();
        assert!(plan.render().contains("fixpoint"));
    }

    #[test]
    fn theorem2_rule_removes_powerset_joins() {
        let q = query(&["alpha", "beta", "gamma"], FilterExpr::MaxSize(5));
        let plan = LogicalPlan::for_query(&q).unwrap();
        let rewritten = PowersetToFixpoint.apply(plan);
        let r = rewritten.render();
        assert!(!r.contains("⋈*"));
        assert!(r.contains("⋈ (pairwise)"));
        assert!(r.contains("fixpoint"));
    }

    #[test]
    fn pushdown_rule_inserts_selections_below_joins() {
        let q = query(&["alpha", "beta"], FilterExpr::MaxSize(3));
        let plan = PowersetToFixpoint.apply(LogicalPlan::for_query(&q).unwrap());
        let pushed = PushDownSelection.apply(plan);
        let r = pushed.render();
        // The anti-monotonic filter must now appear under the join as well
        // as on top (Figure 5 (b)).
        assert!(r.matches("σ[size≤3]").count() >= 3, "rendered:\n{r}");
        assert!(r.contains("inner σ[size≤3]"));
    }

    #[test]
    fn pushdown_leaves_non_anti_monotonic_filters_on_top() {
        let q = query(&["alpha", "beta"], FilterExpr::MinSize(2));
        let plan = PowersetToFixpoint.apply(LogicalPlan::for_query(&q).unwrap());
        let pushed = PushDownSelection.apply(plan);
        let r = pushed.render();
        assert_eq!(r.matches("size≥2").count(), 1, "rendered:\n{r}");
    }

    #[test]
    fn all_plan_stages_agree_with_direct_evaluation() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        for filter in [
            FilterExpr::True,
            FilterExpr::MaxSize(3),
            FilterExpr::and([FilterExpr::MaxSize(4), FilterExpr::MinSize(2)]),
        ] {
            let q = query(&["alpha", "beta"], filter);
            let oracle = evaluate(&d, &idx, &q, Strategy::FixedPointNaive)
                .unwrap()
                .fragments;
            let optimizer = Optimizer::standard(&d, &idx, CostModel::default());
            for (stage, plan) in optimizer.optimize_traced(LogicalPlan::for_query(&q).unwrap()) {
                let mut st = EvalStats::new();
                let got = execute(&plan, &d, &idx, &mut st).unwrap();
                assert_eq!(got, oracle, "stage {stage} for {:?}", q.filter);
            }
        }
    }

    #[test]
    fn optimized_plan_prunes_work() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let q = query(&["alpha", "beta"], FilterExpr::MaxSize(2));
        let initial = PowersetToFixpoint.apply(LogicalPlan::for_query(&q).unwrap());
        let optimized = PushDownSelection.apply(initial.clone());
        let mut st_init = EvalStats::new();
        let mut st_opt = EvalStats::new();
        let a = execute(&initial, &d, &idx, &mut st_init).unwrap();
        let b = execute(&optimized, &d, &idx, &mut st_opt).unwrap();
        assert_eq!(a, b);
        assert!(st_opt.joins <= st_init.joins);
    }

    #[test]
    fn cost_rule_sets_modes() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let q = query(&["alpha"], FilterExpr::True);
        let plan = LogicalPlan::for_query(&q).unwrap();
        // alpha postings {n1,n2,n5} reduce to {n2,n5} → RF = 1/3 ≥ 0.25.
        let rule = ChooseFixpointMode {
            model: CostModel::default(),
            doc: &d,
            index: &idx,
        };
        let rewritten = rule.apply(plan);
        assert!(
            rewritten.render().contains("Reduced"),
            "{}",
            rewritten.render()
        );
    }

    #[test]
    fn optimizer_trace_has_stage_per_rule() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let q = query(&["alpha", "beta"], FilterExpr::MaxSize(3));
        let optimizer = Optimizer::standard(&d, &idx, CostModel::default());
        let trace = optimizer.optimize_traced(LogicalPlan::for_query(&q).unwrap());
        assert_eq!(trace.len(), 4); // initial + 3 rules
        assert_eq!(trace[0].0, "initial");
        assert!(trace[2].0.contains("Theorem 3"));
    }

    #[test]
    fn empty_optimizer_is_identity() {
        let q = query(&["alpha", "beta"], FilterExpr::True);
        let plan = LogicalPlan::for_query(&q).unwrap();
        assert_eq!(Optimizer::empty().optimize(plan.clone()), plan);
    }

    #[test]
    fn synonym_groups_union_semantics() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // (alpha ∪ gamma) AND beta: answers where beta co-occurs with
        // either synonym.
        let groups = vec![
            vec!["alpha".to_string(), "gamma".to_string()],
            vec!["beta".to_string()],
        ];
        let plan = LogicalPlan::for_query_groups(&groups, FilterExpr::MaxSize(5)).unwrap();
        let mut st = EvalStats::new();
        let got = execute(&plan, &d, &idx, &mut st).unwrap();
        // Manual union of the two single-term queries' operand selections:
        // every answer of {alpha, beta} is an answer of the group query.
        let q_ab = query(&["alpha", "beta"], FilterExpr::MaxSize(5));
        let ab = evaluate(&d, &idx, &q_ab, Strategy::FixedPointNaive)
            .unwrap()
            .fragments;
        for f in ab.iter() {
            assert!(got.contains(f), "missing {f}");
        }
        // And the gamma-side adds at least one answer the alpha-side lacks
        // (gamma only occurs at n6).
        assert!(got.iter().any(|f| f.contains_node(xfrag_doc::NodeId(6))));
        // Rendering shows the union node.
        assert!(plan.render().contains("∪ (union)"));
    }

    #[test]
    fn distributive_rule_preserves_results() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        // A pairwise join directly over a union — the shape the
        // Definition 5 law rewrites. (After the Theorem 2 rewrite a
        // group-union sits *inside* a fixed point, where distribution
        // does not apply: (A ∪ B)⁺ ≠ A⁺ ∪ B⁺.)
        let ks = |t: &str| LogicalPlan::KeywordSelect {
            term: t.to_string(),
        };
        let base = LogicalPlan::Select {
            filter: FilterExpr::MaxSize(5),
            input: Box::new(LogicalPlan::PairwiseJoin {
                left: Box::new(LogicalPlan::Union {
                    left: Box::new(ks("alpha")),
                    right: Box::new(ks("gamma")),
                }),
                right: Box::new(ks("beta")),
            }),
        };
        let distributed = DistributeJoinOverUnion.apply(base.clone());
        assert_ne!(base, distributed);
        // The join no longer sits directly on a union…
        fn join_on_union(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::PairwiseJoin { left, right } => {
                    matches!(**left, LogicalPlan::Union { .. })
                        || matches!(**right, LogicalPlan::Union { .. })
                        || join_on_union(left)
                        || join_on_union(right)
                }
                LogicalPlan::Select { input, .. } => join_on_union(input),
                LogicalPlan::FixedPoint { input, .. } => join_on_union(input),
                LogicalPlan::Union { left, right } => join_on_union(left) || join_on_union(right),
                _ => false,
            }
        }
        assert!(!join_on_union(&distributed), "{}", distributed.render());
        assert!(distributed.render().contains("∪ (union)"));
        // …and the results are identical.
        let mut st1 = EvalStats::new();
        let mut st2 = EvalStats::new();
        let a = execute(&base, &d, &idx, &mut st1).unwrap();
        let b = execute(&distributed, &d, &idx, &mut st2).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn single_group_single_term_matches_for_query() {
        let q = query(&["alpha"], FilterExpr::True);
        let a = LogicalPlan::for_query(&q).unwrap();
        let b =
            LogicalPlan::for_query_groups(&[vec!["alpha".to_string()]], FilterExpr::True).unwrap();
        assert_eq!(a, b);
        assert!(LogicalPlan::for_query_groups(&[], FilterExpr::True).is_err());
        assert!(LogicalPlan::for_query_groups(&[vec![]], FilterExpr::True).is_err());
    }

    #[test]
    fn execute_short_circuits_empty_operands() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let q = query(&["alpha", "nonexistent"], FilterExpr::True);
        let plan = LogicalPlan::for_query(&q).unwrap();
        let mut st = EvalStats::new();
        let out = execute(&plan, &d, &idx, &mut st).unwrap();
        assert!(out.is_empty());
        assert_eq!(st.joins, 0);
    }
}
