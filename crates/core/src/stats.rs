//! Operation accounting.
//!
//! The paper argues its optimizations save *work* (join computations
//! avoided, fragments never materialized) — claims that wall-clock alone
//! can't isolate. Every operator in this crate threads an [`EvalStats`]
//! counter so the benchmark harness can report exactly the quantities the
//! paper reasons about in §3–§4.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated during the evaluation of one algebraic expression.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalStats {
    /// Number of binary fragment-join (`f1 ⋈ f2`) kernels executed.
    pub joins: u64,
    /// Total nodes merged across all join kernels (proxy for join cost,
    /// since a join is linear in its operand sizes).
    pub nodes_merged: u64,
    /// Fragments offered to a [`crate::FragmentSet`] by an operator.
    pub fragments_emitted: u64,
    /// Of those, how many were duplicates the set collapsed.
    pub duplicates_collapsed: u64,
    /// Filter predicate evaluations.
    pub filter_evals: u64,
    /// Fragments a filter rejected (pruned before further processing when
    /// the selection was pushed down, or dropped from the result otherwise).
    pub filter_pruned: u64,
    /// Pairwise-join iterations executed by fixed-point computations.
    pub fixpoint_iterations: u64,
    /// Fixed-point stabilization checks performed (the overhead §3.1.2
    /// eliminates).
    pub fixpoint_checks: u64,
    /// Subset tests executed by `⊖` (fragment set reduce).
    pub reduce_checks: u64,
    /// Budget checkpoints passed by a governed execution (phase
    /// boundaries where the deadline and cancel flag were consulted).
    /// Zero for ungoverned runs.
    pub budget_checkpoints: u64,
    /// Structural operations (`lca`/`path`/`parent`) answered by label
    /// arithmetic over persistent prefix labels. Together with
    /// [`EvalStats::tree_ops`] this is the navigation provenance the
    /// indexed-vs-tree-walk differential suite and EXPLAIN ANALYZE
    /// report on.
    pub label_ops: u64,
    /// Structural operations answered by walking the document tree.
    pub tree_ops: u64,
    /// Query-cache lookups that found a reusable entry (any tier).
    /// Cache counters are *observability* fields: the differential suite
    /// asserts that all non-cache counters are identical between cached
    /// and uncached evaluation, while these two may legitimately differ.
    pub cache_hits: u64,
    /// Query-cache lookups that missed and fell through to computation.
    pub cache_misses: u64,
}

impl EvalStats {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-field difference `self − base`, saturating at zero. The tracing
    /// layer snapshots a counter at stage entry and uses this to compute
    /// the stage's contribution.
    pub fn delta_since(&self, base: &EvalStats) -> EvalStats {
        EvalStats {
            joins: self.joins.saturating_sub(base.joins),
            nodes_merged: self.nodes_merged.saturating_sub(base.nodes_merged),
            fragments_emitted: self
                .fragments_emitted
                .saturating_sub(base.fragments_emitted),
            duplicates_collapsed: self
                .duplicates_collapsed
                .saturating_sub(base.duplicates_collapsed),
            filter_evals: self.filter_evals.saturating_sub(base.filter_evals),
            filter_pruned: self.filter_pruned.saturating_sub(base.filter_pruned),
            fixpoint_iterations: self
                .fixpoint_iterations
                .saturating_sub(base.fixpoint_iterations),
            fixpoint_checks: self.fixpoint_checks.saturating_sub(base.fixpoint_checks),
            reduce_checks: self.reduce_checks.saturating_sub(base.reduce_checks),
            budget_checkpoints: self
                .budget_checkpoints
                .saturating_sub(base.budget_checkpoints),
            label_ops: self.label_ops.saturating_sub(base.label_ops),
            tree_ops: self.tree_ops.saturating_sub(base.tree_ops),
            cache_hits: self.cache_hits.saturating_sub(base.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(base.cache_misses),
        }
    }

    /// A copy with the cache observability counters zeroed — the
    /// "pure compute" view. Cached entries store this form so a replay
    /// reproduces exactly the counters an uncached run would report.
    pub fn without_cache_counters(&self) -> EvalStats {
        EvalStats {
            cache_hits: 0,
            cache_misses: 0,
            ..*self
        }
    }
}

impl AddAssign for EvalStats {
    fn add_assign(&mut self, o: Self) {
        self.joins += o.joins;
        self.nodes_merged += o.nodes_merged;
        self.fragments_emitted += o.fragments_emitted;
        self.duplicates_collapsed += o.duplicates_collapsed;
        self.filter_evals += o.filter_evals;
        self.filter_pruned += o.filter_pruned;
        self.fixpoint_iterations += o.fixpoint_iterations;
        self.fixpoint_checks += o.fixpoint_checks;
        self.reduce_checks += o.reduce_checks;
        self.budget_checkpoints += o.budget_checkpoints;
        self.label_ops += o.label_ops;
        self.tree_ops += o.tree_ops;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
    }
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "joins={} merged_nodes={} emitted={} dups={} filter_evals={} pruned={} fp_iters={} fp_checks={} reduce_checks={} budget_checkpoints={} label_ops={} tree_ops={} cache_hits={} cache_misses={}",
            self.joins,
            self.nodes_merged,
            self.fragments_emitted,
            self.duplicates_collapsed,
            self.filter_evals,
            self.filter_pruned,
            self.fixpoint_iterations,
            self.fixpoint_checks,
            self.reduce_checks,
            self.budget_checkpoints,
            self.label_ops,
            self.tree_ops,
            self.cache_hits,
            self.cache_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = EvalStats {
            joins: 1,
            filter_evals: 2,
            ..Default::default()
        };
        let b = EvalStats {
            joins: 3,
            filter_pruned: 4,
            ..Default::default()
        };
        a += b;
        assert_eq!(a.joins, 4);
        assert_eq!(a.filter_evals, 2);
        assert_eq!(a.filter_pruned, 4);
    }

    #[test]
    fn display_is_single_line() {
        let s = EvalStats::new().to_string();
        assert!(s.contains("joins=0"));
        assert!(!s.contains('\n'));
    }

    /// A struct literal with every field spelled out (no `..`): each
    /// counter gets a distinct value so wiring mistakes can't cancel out.
    fn distinct() -> EvalStats {
        EvalStats {
            joins: 1,
            nodes_merged: 2,
            fragments_emitted: 3,
            duplicates_collapsed: 4,
            filter_evals: 5,
            filter_pruned: 6,
            fixpoint_iterations: 7,
            fixpoint_checks: 8,
            reduce_checks: 9,
            budget_checkpoints: 10,
            label_ops: 11,
            tree_ops: 12,
            cache_hits: 13,
            cache_misses: 14,
        }
    }

    /// Exhaustive destructuring (no `..`): adding a counter to
    /// [`EvalStats`] without updating this test — and, by the assertions
    /// below, `AddAssign`, `Display`, and `delta_since` — fails to
    /// compile or fails here.
    #[test]
    fn every_field_is_wired_into_add_assign_display_and_delta() {
        let mut sum = distinct();
        sum += distinct();
        let EvalStats {
            joins,
            nodes_merged,
            fragments_emitted,
            duplicates_collapsed,
            filter_evals,
            filter_pruned,
            fixpoint_iterations,
            fixpoint_checks,
            reduce_checks,
            budget_checkpoints,
            label_ops,
            tree_ops,
            cache_hits,
            cache_misses,
        } = sum;
        assert_eq!(joins, 2);
        assert_eq!(nodes_merged, 4);
        assert_eq!(fragments_emitted, 6);
        assert_eq!(duplicates_collapsed, 8);
        assert_eq!(filter_evals, 10);
        assert_eq!(filter_pruned, 12);
        assert_eq!(fixpoint_iterations, 14);
        assert_eq!(fixpoint_checks, 16);
        assert_eq!(reduce_checks, 18);
        assert_eq!(budget_checkpoints, 20);
        assert_eq!(label_ops, 22);
        assert_eq!(tree_ops, 24);
        assert_eq!(cache_hits, 26);
        assert_eq!(cache_misses, 28);

        // Display must render each doubled value exactly once.
        let shown = sum.to_string();
        for expect in [
            "joins=2",
            "merged_nodes=4",
            "emitted=6",
            "dups=8",
            "filter_evals=10",
            "pruned=12",
            "fp_iters=14",
            "fp_checks=16",
            "reduce_checks=18",
            "budget_checkpoints=20",
            "label_ops=22",
            "tree_ops=24",
            "cache_hits=26",
            "cache_misses=28",
        ] {
            assert!(shown.contains(expect), "missing `{expect}` in `{shown}`");
        }

        // delta_since inverts add_assign field-by-field, and saturates.
        assert_eq!(sum.delta_since(&distinct()), distinct());
        assert_eq!(EvalStats::new().delta_since(&sum), EvalStats::new());
    }

    #[test]
    fn without_cache_counters_zeroes_only_cache_fields() {
        let pure = distinct().without_cache_counters();
        assert_eq!(pure.cache_hits, 0);
        assert_eq!(pure.cache_misses, 0);
        let mut expect = distinct();
        expect.cache_hits = 0;
        expect.cache_misses = 0;
        assert_eq!(pure, expect);
    }
}
