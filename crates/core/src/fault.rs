//! Deterministic fault injection for robustness testing.
//!
//! A retrieval service must survive worker panics, corrupted stores, slow
//! documents and mid-flight cancellations — failure modes that are hard to
//! reproduce on demand and therefore hard to test. This module makes them
//! reproducible: a [`FaultPlan`] arms **named sites** (fixed strings like
//! [`site::COLLECTION_DOC`]) to misbehave on specific *hit numbers*, and a
//! compiled [`FaultInjector`] is threaded through evaluation via
//! [`crate::ExecPolicy::fault`] / [`crate::Governor`]. Every evaluation
//! layer that owns a governor consults its fault point; with no injector
//! installed the check is a `None` branch on an `Option`, so production
//! paths pay nothing.
//!
//! Determinism contract: a site's hit counter increments once per
//! traversal, so "site `collection:doc`, hit 2, action panic" always blows
//! up the third document evaluated — the same one on every run for a
//! fixed corpus and query. [`FaultPlan::from_seed`] derives an arming
//! from a `u64` seed with a SplitMix64 stream, so randomized robustness
//! sweeps reproduce from the seed alone.

use crate::budget::Breach;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Marker embedded in every injected panic payload so catch sites and
/// tests can distinguish injected panics from genuine bugs.
pub const PANIC_MARKER: &str = "xfrag-injected-fault";

/// The named injection sites evaluation code consults. Arbitrary strings
/// are accepted everywhere; these constants are the sites the engine
/// actually traverses.
pub mod site {
    /// Start of one budgeted query evaluation
    /// ([`crate::evaluate_budgeted`]).
    pub const QUERY_EVAL: &str = "query:eval";
    /// Before each candidate document of a collection evaluation.
    pub const COLLECTION_DOC: &str = "collection:doc";
    /// Start of each parallel-join worker shard.
    pub const PARALLEL_WORKER: &str = "parallel:worker";
    /// A `serve` worker thread picking up a request (CLI layer).
    pub const SERVE_WORKER: &str = "serve:worker";
    /// A corpus file read during `serve` startup (CLI layer).
    pub const SERVE_LOAD: &str = "serve:load";
    /// The payload write of an atomic store write (CLI/store layer).
    pub const STORE_WRITE: &str = "store:write";
    /// The fsync before an atomic store write's rename (CLI/store layer).
    pub const STORE_FSYNC: &str = "store:fsync";
    /// The commit rename of an atomic store write (CLI/store layer).
    pub const STORE_RENAME: &str = "store:rename";
}

/// What an armed site does when its hit comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a [`PANIC_MARKER`] payload.
    Panic,
    /// Sleep for the given duration, then continue normally — models a
    /// stalled document or a slow disk, and drives deadline breaches.
    Delay(Duration),
    /// Behave as if the request's [`crate::CancelToken`] fired.
    Cancel,
    /// Fail with a synthetic unreadable-data error. Only load-path sites
    /// can express this as a typed store error; governor fault points
    /// treat it like [`FaultAction::Cancel`].
    ReadError,
    /// Write only the first `n` bytes of the payload, then fail — a torn
    /// write. Only the atomic write path can express partiality; governor
    /// fault points treat it like [`FaultAction::Cancel`].
    Torn(u64),
    /// Abort the process immediately, running no destructors — the
    /// `kill -9` model for crash-point testing. A child armed with
    /// `abort` dies on the spot so the survivor's recovery can be
    /// asserted from outside.
    Abort,
}

impl FaultAction {
    /// Short stable name (the inverse of [`std::str::FromStr`]).
    pub fn name(self) -> &'static str {
        match self {
            FaultAction::Panic => "panic",
            FaultAction::Delay(_) => "delay",
            FaultAction::Cancel => "cancel",
            FaultAction::ReadError => "read-error",
            FaultAction::Torn(_) => "torn",
            FaultAction::Abort => "abort",
        }
    }
}

impl std::str::FromStr for FaultAction {
    type Err = String;
    /// `panic`, `cancel`, `read-error`, `abort`, `delay:<ms>`, or
    /// `torn:<bytes>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "panic" => Ok(FaultAction::Panic),
            "cancel" => Ok(FaultAction::Cancel),
            "read-error" => Ok(FaultAction::ReadError),
            "abort" => Ok(FaultAction::Abort),
            other => {
                if let Some(ms) = other.strip_prefix("delay:") {
                    ms.parse::<u64>()
                        .map(|ms| FaultAction::Delay(Duration::from_millis(ms)))
                        .map_err(|_| format!("bad delay milliseconds in {other:?}"))
                } else if let Some(n) = other.strip_prefix("torn:") {
                    n.parse::<u64>()
                        .map(FaultAction::Torn)
                        .map_err(|_| format!("bad torn byte count in {other:?}"))
                } else {
                    Err(format!(
                        "unknown fault action {other:?} \
                         (expected panic, cancel, read-error, abort, \
                          delay:<ms>, or torn:<bytes>)"
                    ))
                }
            }
        }
    }
}

/// A declarative arming of fault sites: which site misbehaves, on which
/// hit, and how. Build one with [`FaultPlan::arm`], [`FaultPlan::parse`]
/// or [`FaultPlan::from_seed`], then compile it with [`FaultPlan::build`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    arms: Vec<(String, u64, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the plan arms no site.
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }

    /// Arm `site` to perform `action` on its `hit`-th traversal
    /// (0-based). Multiple arms may target the same site.
    pub fn arm(mut self, site: impl Into<String>, hit: u64, action: FaultAction) -> Self {
        self.arms.push((site.into(), hit, action));
        self
    }

    /// Parse a compact spec: comma-separated `site@hit=action` clauses,
    /// e.g. `serve:worker@2=panic,collection:doc@0=delay:50`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for clause in spec.split(',').filter(|c| !c.is_empty()) {
            let (site_hit, action) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} is missing `=action`"))?;
            let (site, hit) = site_hit
                .split_once('@')
                .ok_or_else(|| format!("fault clause {clause:?} is missing `@hit`"))?;
            if site.is_empty() {
                return Err(format!("fault clause {clause:?} has an empty site"));
            }
            let hit: u64 = hit
                .parse()
                .map_err(|_| format!("bad hit number in fault clause {clause:?}"))?;
            plan = plan.arm(site, hit, action.parse()?);
        }
        Ok(plan)
    }

    /// Derive `count` arms over `sites` from a seed: hit numbers in
    /// `0..max_hit` and actions drawn from panic/delay/cancel. The same
    /// seed always produces the same plan (SplitMix64 stream).
    pub fn from_seed(seed: u64, sites: &[&str], count: usize, max_hit: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            // SplitMix64: tiny, and statistically fine for picking arms.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let mut plan = FaultPlan::new();
        if sites.is_empty() {
            return plan;
        }
        for _ in 0..count {
            let site = sites[(next() % sites.len() as u64) as usize];
            let hit = next() % max_hit.max(1);
            let action = match next() % 3 {
                0 => FaultAction::Panic,
                1 => FaultAction::Delay(Duration::from_millis(1 + next() % 20)),
                _ => FaultAction::Cancel,
            };
            plan = plan.arm(site, hit, action);
        }
        plan
    }

    /// The arms in insertion order, for display and logging.
    pub fn arms(&self) -> &[(String, u64, FaultAction)] {
        &self.arms
    }

    /// Compile into a shareable injector with fresh hit counters.
    pub fn build(&self) -> Arc<FaultInjector> {
        let mut sites: BTreeMap<String, SiteState> = BTreeMap::new();
        for (site, hit, action) in &self.arms {
            sites
                .entry(site.clone())
                .or_insert_with(|| SiteState {
                    hits: AtomicU64::new(0),
                    arms: BTreeMap::new(),
                })
                .arms
                .insert(*hit, *action);
        }
        Arc::new(FaultInjector { sites })
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, (site, hit, action)) in self.arms.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            match action {
                FaultAction::Delay(d) => {
                    write!(f, "{site}@{hit}=delay:{}", d.as_millis())?;
                }
                FaultAction::Torn(n) => write!(f, "{site}@{hit}=torn:{n}")?,
                a => write!(f, "{site}@{hit}={}", a.name())?,
            }
        }
        Ok(())
    }
}

#[derive(Debug)]
struct SiteState {
    hits: AtomicU64,
    arms: BTreeMap<u64, FaultAction>,
}

/// A compiled, thread-safe fault plan: per-site atomic hit counters and
/// the armed actions. Share via `Arc`; counters advance globally across
/// threads, so "hit N" is the N-th traversal in program order (per-site
/// total order under concurrency).
#[derive(Debug)]
pub struct FaultInjector {
    sites: BTreeMap<String, SiteState>,
}

impl FaultInjector {
    /// An injector with nothing armed (every check is a map miss).
    pub fn disabled() -> Arc<FaultInjector> {
        FaultPlan::new().build()
    }

    /// Count one traversal of `site` and return the action armed for this
    /// hit, if any. Unarmed sites keep no counter and always return
    /// `None` without side effects.
    pub fn check(&self, site: &str) -> Option<FaultAction> {
        let s = self.sites.get(site)?;
        let hit = s.hits.fetch_add(1, Ordering::Relaxed);
        s.arms.get(&hit).copied()
    }

    /// How many times `site` has been traversed so far (0 for sites with
    /// no arms — they are never counted).
    pub fn hits(&self, site: &str) -> u64 {
        self.sites
            .get(site)
            .map(|s| s.hits.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Traverse `site` and *perform* whatever is armed: panic (with a
    /// [`PANIC_MARKER`] payload), sleep, abort the process, or fail with
    /// [`Breach::Cancelled`]. The common case — site unarmed — is a map
    /// lookup and `Ok(())`. Governor-style sites cannot express a partial
    /// write, so [`FaultAction::Torn`] degrades to a cancellation here;
    /// the atomic write path consults [`FaultInjector::check`] directly
    /// and honors the byte count.
    pub fn fire(&self, site: &str) -> Result<(), Breach> {
        match self.check(site) {
            None => Ok(()),
            Some(FaultAction::Panic) => panic!("{PANIC_MARKER}: injected panic at {site}"),
            Some(FaultAction::Abort) => std::process::abort(),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(FaultAction::Cancel)
            | Some(FaultAction::ReadError)
            | Some(FaultAction::Torn(_)) => Err(Breach::Cancelled),
        }
    }
}

/// Extract a printable message from a caught panic payload (the `Box<dyn
/// Any>` that [`std::panic::catch_unwind`] returns).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Whether a caught panic payload came from [`FaultInjector::fire`].
pub fn is_injected_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    panic_message(payload).contains(PANIC_MARKER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_free_and_uncounted() {
        let inj = FaultInjector::disabled();
        assert_eq!(inj.check("anything"), None);
        inj.fire("anything").unwrap();
        assert_eq!(inj.hits("anything"), 0);
    }

    #[test]
    fn armed_site_fires_on_exact_hit() {
        let inj = FaultPlan::new().arm("s", 2, FaultAction::Cancel).build();
        assert_eq!(inj.check("s"), None);
        assert_eq!(inj.check("s"), None);
        assert_eq!(inj.check("s"), Some(FaultAction::Cancel));
        assert_eq!(inj.check("s"), None);
        assert_eq!(inj.hits("s"), 4);
    }

    #[test]
    fn fire_maps_cancel_to_breach_and_panic_carries_marker() {
        let inj = FaultPlan::new()
            .arm("c", 0, FaultAction::Cancel)
            .arm("p", 0, FaultAction::Panic)
            .build();
        assert_eq!(inj.fire("c"), Err(Breach::Cancelled));
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inj.fire("p"))).unwrap_err();
        assert!(is_injected_panic(caught.as_ref()));
        assert!(panic_message(caught.as_ref()).contains("p"));
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let inj = FaultPlan::new()
            .arm("d", 0, FaultAction::Delay(Duration::from_millis(5)))
            .build();
        let t = std::time::Instant::now();
        inj.fire("d").unwrap();
        assert!(t.elapsed() >= Duration::from_millis(5));
        inj.fire("d").unwrap(); // only hit 0 is armed
    }

    #[test]
    fn spec_parses_and_roundtrips() {
        let plan = FaultPlan::parse("serve:worker@2=panic,collection:doc@0=delay:50").unwrap();
        assert_eq!(plan.arms().len(), 2);
        assert_eq!(
            plan.arms()[0],
            ("serve:worker".into(), 2, FaultAction::Panic)
        );
        assert_eq!(
            plan.arms()[1],
            (
                "collection:doc".into(),
                0,
                FaultAction::Delay(Duration::from_millis(50))
            )
        );
        // Display is the inverse of parse.
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        for bad in ["x", "x=panic", "x@z=panic", "x@1=explode", "@1=panic"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn write_path_actions_parse_and_roundtrip() {
        let plan = FaultPlan::parse("store:write@1=torn:7,store:rename@0=abort").unwrap();
        assert_eq!(
            plan.arms()[0],
            ("store:write".into(), 1, FaultAction::Torn(7))
        );
        assert_eq!(
            plan.arms()[1],
            ("store:rename".into(), 0, FaultAction::Abort)
        );
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert!(FaultPlan::parse("store:write@0=torn:").is_err());
        assert!(FaultPlan::parse("store:write@0=torn:x").is_err());
        // A torn arm degrades to a cancellation at governor-style sites.
        let inj = FaultPlan::new().arm("g", 0, FaultAction::Torn(3)).build();
        assert_eq!(inj.fire("g"), Err(Breach::Cancelled));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let sites = [site::QUERY_EVAL, site::COLLECTION_DOC, site::SERVE_WORKER];
        let a = FaultPlan::from_seed(42, &sites, 8, 16);
        let b = FaultPlan::from_seed(42, &sites, 8, 16);
        assert_eq!(a, b);
        assert_eq!(a.arms().len(), 8);
        let c = FaultPlan::from_seed(43, &sites, 8, 16);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
        assert!(FaultPlan::from_seed(1, &[], 8, 16).is_empty());
    }

    #[test]
    fn hit_counters_are_exact_under_concurrency() {
        let inj = FaultPlan::new()
            .arm("shared", 1_000_000, FaultAction::Panic)
            .build();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let inj = Arc::clone(&inj);
                s.spawn(move || {
                    for _ in 0..1000 {
                        inj.fire("shared").unwrap();
                    }
                });
            }
        });
        assert_eq!(inj.hits("shared"), 4000);
    }
}
