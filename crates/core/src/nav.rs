//! Structural navigation dispatch: tree walks or label arithmetic.
//!
//! Every join kernel needs `lca`, `path` and `parent` over the document
//! tree. The legacy path answers them by walking [`Document`]'s parent
//! pointers; segment-backed documents carry persistent
//! [`StructLabels`] (root-path prefix labels) that answer the same
//! questions by pure integer arithmetic on the label arrays, without
//! touching the tree. [`Nav`] bundles a document with its optional
//! labels and dispatches each operation, counting the choice in
//! [`EvalStats::label_ops`] / [`EvalStats::tree_ops`] so EXPLAIN ANALYZE
//! and the differential suites can prove which engine answered.
//!
//! `Nav` is `Copy` and converts from `&Document` (tree-walk navigation,
//! no labels), so every pre-existing `fragment_join(&doc, …)` call site
//! keeps compiling unchanged.

use crate::stats::EvalStats;
use xfrag_doc::{Document, NodeId, StructLabels};

/// A document plus (optionally) its persistent structural labels.
///
/// A label-equipped `Nav` answers `lca`/`path`/`parent` by label
/// arithmetic; a bare one falls back to [`Document`] tree walks. Both
/// produce identical results — `tests/label_differential.rs` proves it
/// on random trees — so the engine's answers never depend on which
/// navigation backend served them.
#[derive(Debug, Clone, Copy)]
pub struct Nav<'a> {
    doc: &'a Document,
    labels: Option<&'a StructLabels>,
}

impl<'a> From<&'a Document> for Nav<'a> {
    fn from(doc: &'a Document) -> Self {
        Nav { doc, labels: None }
    }
}

impl<'a> Nav<'a> {
    /// Pair a document with optional structural labels.
    ///
    /// Labels whose node count disagrees with the document are ignored
    /// (defensive: a mismatched segment must never corrupt answers).
    pub fn new(doc: &'a Document, labels: Option<&'a StructLabels>) -> Self {
        let labels = labels.filter(|l| l.len() == doc.len());
        Nav { doc, labels }
    }

    /// The underlying document.
    pub fn doc(&self) -> &'a Document {
        self.doc
    }

    /// Whether label arithmetic is active.
    pub fn has_labels(&self) -> bool {
        self.labels.is_some()
    }

    /// Lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId, stats: &mut EvalStats) -> NodeId {
        match self.labels {
            Some(l) => {
                stats.label_ops += 1;
                l.lca(a, b)
            }
            None => {
                stats.tree_ops += 1;
                self.doc.lca(a, b)
            }
        }
    }

    /// The unique tree path between two nodes, in the [`Document::path`]
    /// order: `a`-side bottom-up (excluding the LCA), then `b`-side
    /// bottom-up (excluding the LCA), LCA last.
    pub fn path(&self, a: NodeId, b: NodeId, stats: &mut EvalStats) -> Vec<NodeId> {
        match self.labels {
            Some(l) => {
                stats.label_ops += 1;
                l.path(a, b)
            }
            None => {
                stats.tree_ops += 1;
                self.doc.path(a, b)
            }
        }
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, n: NodeId, stats: &mut EvalStats) -> Option<NodeId> {
        match self.labels {
            Some(l) => {
                stats.label_ops += 1;
                l.parent(n)
            }
            None => {
                stats.tree_ops += 1;
                self.doc.parent(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfrag_doc::parse_str;

    fn doc() -> Document {
        parse_str("<r><a><b/><c/></a><d><e/></d></r>").unwrap()
    }

    #[test]
    fn from_document_walks_the_tree() {
        let d = doc();
        let nav = Nav::from(&d);
        assert!(!nav.has_labels());
        let mut st = EvalStats::new();
        assert_eq!(nav.lca(NodeId(2), NodeId(3), &mut st), NodeId(1));
        assert_eq!(nav.parent(NodeId(5), &mut st), Some(NodeId(4)));
        assert_eq!(nav.parent(NodeId(0), &mut st), None);
        assert_eq!(
            nav.path(NodeId(2), NodeId(3), &mut st),
            d.path(NodeId(2), NodeId(3))
        );
        assert_eq!(st.tree_ops, 4);
        assert_eq!(st.label_ops, 0);
    }

    #[test]
    fn labels_answer_identically_and_count_label_ops() {
        let d = doc();
        let labels = StructLabels::build(&d);
        let nav = Nav::new(&d, Some(&labels));
        assert!(nav.has_labels());
        let tree = Nav::from(&d);
        let mut st_l = EvalStats::new();
        let mut st_t = EvalStats::new();
        for a in d.node_ids() {
            for b in d.node_ids() {
                assert_eq!(nav.lca(a, b, &mut st_l), tree.lca(a, b, &mut st_t));
                assert_eq!(nav.path(a, b, &mut st_l), tree.path(a, b, &mut st_t));
            }
            assert_eq!(nav.parent(a, &mut st_l), tree.parent(a, &mut st_t));
        }
        assert!(st_l.label_ops > 0);
        assert_eq!(st_l.tree_ops, 0);
        assert_eq!(st_t.label_ops, 0);
        assert_eq!(st_t.tree_ops, st_l.label_ops);
    }

    #[test]
    fn mismatched_labels_are_rejected() {
        let d = doc();
        let other = parse_str("<x><y/></x>").unwrap();
        let labels = StructLabels::build(&other);
        let nav = Nav::new(&d, Some(&labels));
        assert!(!nav.has_labels());
        let mut st = EvalStats::new();
        assert_eq!(nav.lca(NodeId(2), NodeId(5), &mut st), NodeId(0));
        assert_eq!(st.tree_ops, 1);
    }
}
