//! Fixed points and fragment set reduction — §3.1 of the paper.
//!
//! * [`fixed_point_naive`] — §3.1.1: iterate `H := H ⋈ F` until the set
//!   stabilizes, paying a *fixed-point check* per iteration.
//! * [`reduce`] — Definition 10, `⊖(F)`: drop every fragment subsumed by
//!   the join of two other (distinct) fragments of the set.
//!   (The printed definition reads `{f | ∃ f',f'' …}` but the prose,
//!   Figure 4 and the §4.2 worked example all *eliminate* those fragments;
//!   we implement the evidently-intended complement.)
//! * [`fixed_point_reduced`] — §3.1.2 + Theorem 1: `|⊖(F)|` iterations are
//!   always enough, so run exactly that many with no stabilization checks.
//! * [`powerset_via_fixpoint`] — Theorem 2: `F1 ⋈* F2 = F1⁺ ⋈ F2⁺`.
//!
//! Monotonicity (`F ⊆ F ⋈ F`, from idempotency of `⋈` on elements) makes
//! the iteration sequence `F ⊆ F⋈F ⊆ F⋈F⋈F ⊆ …` an increasing chain over a
//! finite universe, so the fixed point always exists and the naive loop
//! terminates.

use crate::budget::{Breach, Governor};
use crate::join::{fragment_join, pairwise_join, pairwise_join_governed};
use crate::nav::Nav;
use crate::set::FragmentSet;
use crate::stats::EvalStats;
use crate::trace::Tracer;

// invariant (used by every ungoverned wrapper below): an unlimited
// governor has no limits, no deadline and no cancel token, so no charge
// can ever breach.
macro_rules! ungoverned {
    ($e:expr) => {
        match $e {
            Ok(out) => out,
            Err(_) => unreachable!("unlimited governor breached"),
        }
    };
}

/// How a fixed point should be computed — the choice §3.1 is about.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum FixpointMode {
    /// Iterate until the set stabilizes, checking after every round.
    #[default]
    Naive,
    /// Pre-compute `k = |⊖(F)|` (Theorem 1) and run exactly `k` rounds
    /// (i.e. `k−1` pairwise joins) without stabilization checks.
    Reduced,
}

/// `F⁺` by iteration-until-stable (§3.1.1).
///
/// Each round computes `H := H ⋈ F` and compares cardinalities; because
/// the chain is increasing (every element of `H` survives via idempotent
/// self-joins), `|H|` unchanged ⇔ `H` unchanged.
pub fn fixed_point_naive<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
) -> FragmentSet {
    ungoverned!(fixed_point_naive_governed(
        nav,
        f,
        stats,
        &Governor::unlimited()
    ))
}

/// [`fixed_point_naive`] under a [`Governor`]: a budget checkpoint runs
/// before every round, and every pairwise join inside a round is charged.
pub fn fixed_point_naive_governed<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
) -> Result<FragmentSet, Breach> {
    fixed_point_naive_traced(nav, f, stats, gov, &Tracer::disabled())
}

/// [`fixed_point_naive_governed`] recorded as a `fixpoint-naive` span
/// with one `round` child per iteration.
pub fn fixed_point_naive_traced<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    tracer.scoped("fixpoint-naive", stats, |stats| {
        if f.is_empty() {
            return Ok(FragmentSet::new());
        }
        let mut h = f.clone();
        loop {
            gov.checkpoint()?;
            let next = tracer.scoped("round", stats, |stats| -> Result<FragmentSet, Breach> {
                stats.fixpoint_iterations += 1;
                Ok(pairwise_join_governed(nav, &h, f, stats, gov)?.union(&h))
            })?;
            stats.fixpoint_checks += 1;
            if next.len() == h.len() {
                return Ok(h);
            }
            h = next;
        }
    })
}

/// `⊖(F)` — Definition 10. Keeps exactly the fragments *not* contained in
/// the join of two other distinct fragments of `F`.
///
/// Cost is O(|F|³) joins/subset-tests in the worst case; `stats`
/// accumulates `reduce_checks` so the §5 cost-model discussion can be
/// quantified. Pairs are enumerated once (f', f'' unordered) since `⋈` is
/// commutative.
pub fn reduce<'n>(nav: impl Into<Nav<'n>>, f: &FragmentSet, stats: &mut EvalStats) -> FragmentSet {
    ungoverned!(reduce_governed(nav, f, stats, &Governor::unlimited()))
}

/// [`reduce_governed`] recorded as one `reduce` span.
pub fn reduce_traced<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    tracer.scoped("reduce", stats, |stats| reduce_governed(nav, f, stats, gov))
}

/// [`reduce`] under a [`Governor`]: `⊖` is O(|F|³), so a checkpoint runs
/// per candidate fragment and every inner join is charged.
pub fn reduce_governed<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    let frags = f.as_slice();
    let n = frags.len();
    if n <= 2 {
        // "For |F| <= 2 the proof is trivial, since for any fragment set to
        // be reduced, the set should contain at least three elements."
        return Ok(f.clone());
    }
    let mut keep = FragmentSet::new();
    'cand: for (ci, cand) in frags.iter().enumerate() {
        gov.checkpoint()?;
        for i in 0..n {
            if i == ci {
                continue;
            }
            for j in (i + 1)..n {
                if j == ci {
                    continue;
                }
                stats.reduce_checks += 1;
                gov.charge_join((frags[i].size() + frags[j].size()) as u64)?;
                let joined = fragment_join(nav, &frags[i], &frags[j], stats);
                if cand.is_subfragment_of(&joined) {
                    continue 'cand; // eliminated
                }
            }
        }
        keep.insert(cand.clone());
    }
    Ok(keep)
}

/// The reduction factor `RF = (a − b) / a` of §5, where `a = |F|` and
/// `b = |⊖(F)|`. `RF = 0` means no reduction; values near 1 mean the set
/// collapses almost entirely.
pub fn reduction_factor<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
) -> f64 {
    if f.is_empty() {
        return 0.0;
    }
    let a = f.len() as f64;
    let b = reduce(nav, f, stats).len() as f64;
    (a - b) / a
}

/// `F⁺` via Theorem 1 (§3.1.2): compute `k = |⊖(F)|`, then perform exactly
/// `k` rounds of `⋈` with `F` — `⋈_k(F)` in the paper's notation, i.e.
/// `k − 1` pairwise-join applications starting from `F` — with **no**
/// per-round stabilization checks.
///
/// # Soundness note (deviation from the paper)
///
/// Theorem 1 as literally stated is **false for general fragment sets**:
/// Definition 10 eliminates fragments *simultaneously*, so two large
/// fragments can eliminate each other through a third, driving `|⊖(F)|`
/// below the true iteration requirement. Counterexample (verified in
/// `theorem1_counterexample_for_overlapping_fragments`): on the tree
/// `n0 → n1 → n2` with sibling `n3`, take
/// `F = {⟨n3⟩, ⟨n1,n2⟩, ⟨n0,n1,n2⟩}`. Then `⟨n1,n2⟩ ⊆ ⟨n3⟩ ⋈ ⟨n0,n1,n2⟩`
/// and `⟨n0,n1,n2⟩ ⊆ ⟨n3⟩ ⋈ ⟨n1,n2⟩`, so `⊖(F) = {⟨n3⟩}` and `k = 1`,
/// yet `F⁺` needs two rounds to pick up `⟨n0,n1,n2,n3⟩`.
///
/// The theorem *does* hold in the paper's usage context — operand sets
/// produced by keyword selection, i.e. **distinct single-node fragments**
/// — where mutual elimination of this kind cannot arise (a node on the
/// path between two others cannot in turn contain one of them). Our
/// implementation therefore runs the `k − 1` unchecked rounds and then
/// performs **one** final stabilization check, falling back to checked
/// iteration only if the set is still growing; the fallback never fires
/// for singleton-node inputs (property-tested), so the paper's claimed
/// saving of per-round checks is preserved exactly where the paper
/// applies it.
pub fn fixed_point_reduced<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
) -> FragmentSet {
    ungoverned!(fixed_point_reduced_governed(
        nav,
        f,
        stats,
        &Governor::unlimited()
    ))
}

/// [`fixed_point_reduced`] under a [`Governor`]: the `⊖` precomputation,
/// every unchecked round and the safety/fallback rounds are all governed.
pub fn fixed_point_reduced_governed<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
) -> Result<FragmentSet, Breach> {
    fixed_point_reduced_traced(nav, f, stats, gov, &Tracer::disabled())
}

/// [`fixed_point_reduced_governed`] recorded as a `fixpoint-reduced` span
/// with a `reduce` child for the `⊖` precomputation, one `round` child
/// per iteration, and a `safety-check` child for the final verification.
pub fn fixed_point_reduced_traced<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    tracer.scoped("fixpoint-reduced", stats, |stats| {
        if f.is_empty() {
            return Ok(FragmentSet::new());
        }
        let k = reduce_traced(nav, f, stats, gov, tracer)?.len();
        let mut h = f.clone();
        for _ in 1..k {
            gov.checkpoint()?;
            h = tracer.scoped("round", stats, |stats| -> Result<FragmentSet, Breach> {
                stats.fixpoint_iterations += 1;
                Ok(pairwise_join_governed(nav, &h, f, stats, gov)?.union(&h))
            })?;
        }
        // Single safety check (see the soundness note above).
        stats.fixpoint_checks += 1;
        let verify = tracer
            .scoped("safety-check", stats, |stats| {
                pairwise_join_governed(nav, &h, f, stats, gov)
            })?
            .union(&h);
        if verify.len() == h.len() {
            return Ok(h);
        }
        // General-set fallback: continue with checked iteration.
        h = verify;
        loop {
            gov.checkpoint()?;
            let next = tracer.scoped("round", stats, |stats| -> Result<FragmentSet, Breach> {
                stats.fixpoint_iterations += 1;
                Ok(pairwise_join_governed(nav, &h, f, stats, gov)?.union(&h))
            })?;
            stats.fixpoint_checks += 1;
            if next.len() == h.len() {
                return Ok(h);
            }
            h = next;
        }
    })
}

/// `F⁺` with the mode chosen by the caller.
pub fn fixed_point<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    mode: FixpointMode,
    stats: &mut EvalStats,
) -> FragmentSet {
    match mode {
        FixpointMode::Naive => fixed_point_naive(nav, f, stats),
        FixpointMode::Reduced => fixed_point_reduced(nav, f, stats),
    }
}

/// [`fixed_point`] under a [`Governor`].
pub fn fixed_point_governed<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    mode: FixpointMode,
    stats: &mut EvalStats,
    gov: &Governor,
) -> Result<FragmentSet, Breach> {
    match mode {
        FixpointMode::Naive => fixed_point_naive_governed(nav, f, stats, gov),
        FixpointMode::Reduced => fixed_point_reduced_governed(nav, f, stats, gov),
    }
}

/// [`fixed_point_traced`] through the tier (b) cache: probe
/// `(generation, doc, term, mode)` first, replaying the stored
/// [`EvalStats`] delta on a hit so cached and uncached runs report
/// identical compute counters; on a miss, compute, then store the set
/// together with the delta it cost.
///
/// The stored delta's `budget_checkpoints` field carries the number of
/// *governor* checkpoints the computation consumed (the compute itself
/// never writes that stats field mid-run); replaying it lets the
/// budgeted evaluator report the same checkpoint total whether or not
/// the fixpoint work was skipped.
///
/// Callers must only pass a cache under governors that cannot trip on
/// work limits (the budgeted evaluator gates tier (b) on an unlimited,
/// cancel-free policy): a hit skips the governor charges the compute
/// would have made, which under a work-limited governor would change
/// where — and whether — the budget trips.
#[allow(clippy::too_many_arguments)]
pub fn fixed_point_memo_traced<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    term: &str,
    mode: FixpointMode,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
    cache: Option<crate::cache::CacheRef<'_>>,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    let Some(c) = cache else {
        return fixed_point_traced(nav, f, mode, stats, gov, tracer);
    };
    if let Some((set, delta)) = c.cache.get_fixpoint(c.gen, c.doc, term, mode) {
        tracer.scoped_lazy(
            || format!("fixpoint-cache:{term}"),
            stats,
            |stats| {
                stats.cache_hits += 1;
                *stats += delta;
            },
        );
        return Ok(set);
    }
    stats.cache_misses += 1;
    let before = *stats;
    let checkpoints_before = gov.checkpoints_passed();
    let out = fixed_point_traced(nav, f, mode, stats, gov, tracer)?;
    let mut delta = stats.delta_since(&before);
    delta.budget_checkpoints = gov.checkpoints_passed() - checkpoints_before;
    c.cache.put_fixpoint(c.gen, c.doc, term, mode, &out, delta);
    Ok(out)
}

/// [`fixed_point_governed`] with span recording, dispatching to the
/// traced variant of the chosen mode.
pub fn fixed_point_traced<'n>(
    nav: impl Into<Nav<'n>>,
    f: &FragmentSet,
    mode: FixpointMode,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    match mode {
        FixpointMode::Naive => fixed_point_naive_traced(nav, f, stats, gov, tracer),
        FixpointMode::Reduced => fixed_point_reduced_traced(nav, f, stats, gov, tracer),
    }
}

/// Theorem 2: `F1 ⋈* F2 = F1⁺ ⋈ F2⁺` — the rewrite that makes powerset
/// join implementable.
pub fn powerset_via_fixpoint<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &FragmentSet,
    f2: &FragmentSet,
    mode: FixpointMode,
    stats: &mut EvalStats,
) -> FragmentSet {
    let nav = nav.into();
    if f1.is_empty() || f2.is_empty() {
        return FragmentSet::new();
    }
    let p1 = fixed_point(nav, f1, mode, stats);
    let p2 = fixed_point(nav, f2, mode, stats);
    pairwise_join(nav, &p1, &p2, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use crate::join::powerset_join;
    use xfrag_doc::{DocumentBuilder, NodeId};

    /// The Figure 4 tree: a root with children n1, n5, n7 where n1 has
    /// children n2,n3,n4 — we reconstruct the shape the example needs:
    /// n3 ⊆ n1 ⋈ n5 and n6 ⊆ n1 ⋈ n7. A simple concrete realization:
    ///
    /// ```text
    ///        n0
    ///     ┌──┼────────┐
    ///     n1 n3*      n6*
    ///     n2 n4       n7
    ///        n5
    /// ```
    ///
    /// is awkward; instead use a chain-like layout where paths create the
    /// required containments:
    ///
    /// n0 ── n1 ── n2 ── n3(child n4), n2 ── n5, n0 ── n6 ── n7
    fn figure4_doc() -> xfrag_doc::Document {
        let mut b = DocumentBuilder::new();
        b.begin("n0");
        {
            b.begin("n1");
            {
                b.begin("n2");
                b.begin("n3");
                b.leaf("n4", "");
                b.end();
                b.leaf("n5", "");
                b.end();
            }
            b.end();
            b.begin("n6");
            b.leaf("n7", "");
            b.end();
        }
        b.end();
        b.finish().unwrap()
    }

    fn node(n: u32) -> Fragment {
        Fragment::node(NodeId(n))
    }

    /// Figure 4 analogue: F = {⟨n1⟩,⟨n3⟩,⟨n5⟩,⟨n6⟩,⟨n7⟩} where
    /// n3 lies on the path n1…n5?? — in our realization:
    /// F = {n1, n2, n4, n5, n6}: n2 ⊆ n1⋈n4 (path n1-n2-n3-n4) and
    /// n3-free; check ⊖ removes exactly the path-subsumed singletons.
    #[test]
    fn reduce_eliminates_path_subsumed() {
        let d = figure4_doc();
        let mut st = EvalStats::new();
        // n2 is on path(n1, n4); n3 is on path(n2, n4) etc.
        let f = FragmentSet::from_iter([node(1), node(2), node(4), node(5), node(6)]);
        let r = reduce(&d, &f, &mut st);
        // n2 ⊆ n1 ⋈ n4 → eliminated. n1,n4,n5,n6: n1 on path(?)—
        // n1 is not contained in any join of two others unless both are
        // inside its subtree... n4 ⋈ n5 = {n2,n3,n4,n5} excludes n1;
        // n4 ⋈ n6 = path via root: {0,1,2,3,4,6} contains n1! So n1 is
        // eliminated too.
        assert!(!r.contains(&node(2)));
        assert!(!r.contains(&node(1)));
        assert!(r.contains(&node(4)));
        assert!(r.contains(&node(5)));
        assert!(r.contains(&node(6)));
        assert_eq!(r.len(), 3);
        assert!(st.reduce_checks > 0);
    }

    #[test]
    fn reduce_small_sets_unchanged() {
        let d = figure4_doc();
        let mut st = EvalStats::new();
        let f = FragmentSet::from_iter([node(4), node(7)]);
        assert_eq!(reduce(&d, &f, &mut st), f);
        let one = FragmentSet::from_iter([node(4)]);
        assert_eq!(reduce(&d, &one, &mut st), one);
        assert_eq!(reduce(&d, &FragmentSet::new(), &mut st), FragmentSet::new());
    }

    #[test]
    fn naive_fixed_point_closes_under_join() {
        let d = figure4_doc();
        let mut st = EvalStats::new();
        let f = FragmentSet::from_iter([node(4), node(5), node(7)]);
        let fp = fixed_point_naive(&d, &f, &mut st);
        // Every pairwise join of fixed-point members is in the fixed point.
        let again = pairwise_join(&d, &fp, &fp, &mut st).union(&fp);
        assert_eq!(again, fp);
        // And it contains the original set.
        for x in f.iter() {
            assert!(fp.contains(x));
        }
    }

    #[test]
    fn reduced_matches_naive() {
        let d = figure4_doc();
        let mut st = EvalStats::new();
        for set in [
            vec![node(4)],
            vec![node(4), node(5)],
            vec![node(1), node(2), node(4), node(5), node(6)],
            vec![node(0), node(4), node(7)],
            vec![node(2), node(3), node(4)],
        ] {
            let f = FragmentSet::from_iter(set);
            let a = fixed_point_naive(&d, &f, &mut st);
            let b = fixed_point_reduced(&d, &f, &mut st);
            assert_eq!(a, b, "mismatch for {f:?}");
        }
    }

    #[test]
    fn theorem1_iteration_count_suffices() {
        let d = figure4_doc();
        let mut st = EvalStats::new();
        let f = FragmentSet::from_iter([node(1), node(2), node(4), node(5), node(6)]);
        let k = reduce(&d, &f, &mut st).len();
        assert_eq!(k, 3);
        // ⋈_k(F) must equal ⋈_{k+1}(F).
        let mut h = f.clone();
        for _ in 1..k {
            h = pairwise_join(&d, &h, &f, &mut st).union(&h);
        }
        let once_more = pairwise_join(&d, &h, &f, &mut st).union(&h);
        assert_eq!(h, once_more);
    }

    #[test]
    fn theorem2_fixpoint_rewrite_equals_powerset() {
        let d = figure4_doc();
        let mut st = EvalStats::new();
        let f1 = FragmentSet::from_iter([node(4), node(5)]);
        let f2 = FragmentSet::from_iter([node(2), node(7)]);
        let oracle = powerset_join(&d, &f1, &f2, &mut st).unwrap();
        for mode in [FixpointMode::Naive, FixpointMode::Reduced] {
            let got = powerset_via_fixpoint(&d, &f1, &f2, mode, &mut st);
            assert_eq!(got, oracle, "mode {mode:?}");
        }
    }

    #[test]
    fn fixpoint_of_empty_is_empty() {
        let d = figure4_doc();
        let mut st = EvalStats::new();
        assert!(fixed_point_naive(&d, &FragmentSet::new(), &mut st).is_empty());
        assert!(fixed_point_reduced(&d, &FragmentSet::new(), &mut st).is_empty());
        let f1 = FragmentSet::from_iter([node(4)]);
        assert!(
            powerset_via_fixpoint(&d, &f1, &FragmentSet::new(), FixpointMode::Naive, &mut st)
                .is_empty()
        );
    }

    #[test]
    fn reduction_factor_bounds() {
        let d = figure4_doc();
        let mut st = EvalStats::new();
        assert_eq!(reduction_factor(&d, &FragmentSet::new(), &mut st), 0.0);
        let f = FragmentSet::from_iter([node(1), node(2), node(4), node(5), node(6)]);
        let rf = reduction_factor(&d, &f, &mut st);
        assert!((rf - 0.4).abs() < 1e-9, "5 → 3 gives RF = 0.4, got {rf}");
        let irreducible = FragmentSet::from_iter([node(4), node(7)]);
        assert_eq!(reduction_factor(&d, &irreducible, &mut st), 0.0);
    }

    #[test]
    fn naive_counts_checks_reduced_does_not() {
        let d = figure4_doc();
        let f = FragmentSet::from_iter([node(1), node(2), node(4), node(5), node(6)]);
        let mut st_naive = EvalStats::new();
        fixed_point_naive(&d, &f, &mut st_naive);
        assert!(st_naive.fixpoint_checks > 1);
        assert_eq!(st_naive.reduce_checks, 0);
        let mut st_red = EvalStats::new();
        fixed_point_reduced(&d, &f, &mut st_red);
        assert_eq!(
            st_red.fixpoint_checks, 1,
            "reduced mode performs only the single safety check"
        );
        assert!(st_red.reduce_checks > 0);
    }

    /// The Theorem 1 counterexample for general (overlapping, multi-node)
    /// fragment sets — see the soundness note on [`fixed_point_reduced`].
    /// Tree: n0 → n1 → n2, with n3 a second child of n0.
    #[test]
    fn theorem1_counterexample_for_overlapping_fragments() {
        let mut b = DocumentBuilder::new();
        b.begin("n0");
        b.begin("n1");
        b.leaf("n2", "");
        b.end();
        b.leaf("n3", "");
        b.end();
        let d = b.finish().unwrap();
        let mut st = EvalStats::new();
        let f12 = crate::fragment::Fragment::from_nodes(&d, [NodeId(1), NodeId(2)]).unwrap();
        let f012 =
            crate::fragment::Fragment::from_nodes(&d, [NodeId(0), NodeId(1), NodeId(2)]).unwrap();
        let f = FragmentSet::from_iter([node(3), f12, f012]);
        // Simultaneous elimination: both multi-node fragments are inside
        // ⟨n3⟩ ⋈ (the other), so Definition 10 keeps only ⟨n3⟩.
        let r = reduce(&d, &f, &mut st);
        assert_eq!(r.len(), 1, "⊖(F) = {{⟨n3⟩}}: k = 1 underestimates");
        // Yet the fixed point needs a second round for ⟨n0,n1,n2,n3⟩ —
        // the safety fallback keeps the result correct.
        let naive = fixed_point_naive(&d, &f, &mut st);
        assert_eq!(naive.len(), 4);
        let reduced = fixed_point_reduced(&d, &f, &mut st);
        assert_eq!(reduced, naive);
    }
}
