//! Ranking of answer fragments — the §6 bridge to IR-style systems.
//!
//! The paper positions database-style filtering as a *complement* to
//! IR-style ranking: "ranking techniques described in those studies can
//! be easily incorporated into our work". This module makes that claim
//! executable with a small, transparent scoring model in the spirit of
//! XRank's decay-based scoring, adapted to fragments:
//!
//! * **compactness** — smaller fragments score higher (`1 / size`);
//! * **coverage** — distinct query terms hit more nodes of the fragment;
//! * **leaf proximity** — terms occurring at fragment leaves (the
//!   Definition 8 position) count more than internal occurrences;
//! * **depth preference** — deeper, more specific components are
//!   preferred over near-root spans: an additive bonus of
//!   `depth_preference · (1 − 1/(depth + 1))`, which grows from `0` at
//!   the document root towards the full `depth_preference` weight.
//!
//! Scores are deterministic; ties break by the fragment's canonical node
//! list so ranked output is stable across runs.

use crate::fragment::Fragment;
use crate::set::FragmentSet;
use serde::{Deserialize, Serialize};
use xfrag_doc::text::node_contains;
use xfrag_doc::Document;

/// Weights of the scoring model. All default weights are positive, so
/// higher scores are better.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankConfig {
    /// Weight of the `1 / size` compactness term.
    pub compactness: f64,
    /// Weight of per-term coverage (fraction of fragment nodes containing
    /// any query term).
    pub coverage: f64,
    /// Bonus per query term that occurs at a fragment leaf.
    pub leaf_bonus: f64,
    /// Additive preference for deeper fragment roots: the score gains
    /// `depth_preference · (1 − 1/(depth + 1))`, a bonus that is `0` for
    /// a root-anchored fragment and approaches `depth_preference` as the
    /// fragment root gets deeper; `0.0` disables.
    pub depth_preference: f64,
}

impl Default for RankConfig {
    fn default() -> Self {
        RankConfig {
            compactness: 1.0,
            coverage: 1.0,
            leaf_bonus: 0.5,
            depth_preference: 0.1,
        }
    }
}

/// A scored fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct Ranked {
    /// The answer fragment.
    pub fragment: Fragment,
    /// Its score under the supplied [`RankConfig`] (higher is better).
    pub score: f64,
}

/// Score one fragment against the query terms.
pub fn score(doc: &Document, f: &Fragment, terms: &[String], cfg: &RankConfig) -> f64 {
    let size = f.size() as f64;
    let compact = cfg.compactness / size;

    let hit_nodes = f
        .iter()
        .filter(|&n| terms.iter().any(|t| node_contains(doc, n, t)))
        .count() as f64;
    let coverage = cfg.coverage * hit_nodes / size;

    // Materialize the leaf set once — `Fragment::leaves` walks the
    // fragment per call, and the term loop would recompute it per term.
    let leaf_nodes: Vec<_> = f.leaves(doc).collect();
    let leaf_terms = terms
        .iter()
        .filter(|t| leaf_nodes.iter().any(|&n| node_contains(doc, n, t)))
        .count() as f64;
    let leaves = cfg.leaf_bonus * leaf_terms / (terms.len().max(1) as f64);

    let depth = doc.depth(f.root()) as f64;
    let depth_pref = cfg.depth_preference * (1.0 - 1.0 / (depth + 1.0));

    compact + coverage + leaves + depth_pref
}

/// Rank an answer set: highest score first, canonical tie-break.
pub fn rank(
    doc: &Document,
    answers: &FragmentSet,
    terms: &[String],
    cfg: &RankConfig,
) -> Vec<Ranked> {
    let mut out: Vec<Ranked> = answers
        .iter()
        .map(|f| Ranked {
            fragment: f.clone(),
            score: score(doc, f, terms, cfg),
        })
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.fragment.cmp(&b.fragment))
    });
    out
}

/// The top-`k` ranked answers.
pub fn top_k(
    doc: &Document,
    answers: &FragmentSet,
    terms: &[String],
    cfg: &RankConfig,
    k: usize,
) -> Vec<Ranked> {
    let mut all = rank(doc, answers, terms, cfg);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfrag_doc::{DocumentBuilder, NodeId};

    /// sec(0){"alpha"} -> p(1){"alpha beta"}, p(2){"beta"}, p(3){}
    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("sec");
        b.text("alpha");
        b.leaf("p", "alpha beta");
        b.leaf("p", "beta");
        b.leaf("p", "nothing here");
        b.end();
        b.finish().unwrap()
    }

    fn terms() -> Vec<String> {
        vec!["alpha".into(), "beta".into()]
    }

    fn frag(d: &Document, ns: &[u32]) -> Fragment {
        Fragment::from_nodes(d, ns.iter().map(|&n| NodeId(n))).unwrap()
    }

    #[test]
    fn single_dense_node_beats_sprawling_fragment() {
        let d = doc();
        let cfg = RankConfig::default();
        let dense = frag(&d, &[1]); // both terms, one node
        let sprawl = frag(&d, &[0, 1, 2, 3]); // includes a term-free node
        assert!(score(&d, &dense, &terms(), &cfg) > score(&d, &sprawl, &terms(), &cfg));
    }

    #[test]
    fn coverage_rewards_term_bearing_nodes() {
        let d = doc();
        let cfg = RankConfig {
            compactness: 0.0,
            leaf_bonus: 0.0,
            depth_preference: 0.0,
            ..RankConfig::default()
        };
        let with_terms = frag(&d, &[0, 1, 2]); // all three carry terms
        let with_dead = frag(&d, &[0, 1, 3]); // n3 carries none
        assert!(score(&d, &with_terms, &terms(), &cfg) > score(&d, &with_dead, &terms(), &cfg));
    }

    #[test]
    fn leaf_bonus_counts_definition8_positions() {
        let d = doc();
        let cfg = RankConfig {
            compactness: 0.0,
            coverage: 0.0,
            depth_preference: 0.0,
            leaf_bonus: 1.0,
        };
        // ⟨0,1⟩: leaf n1 has alpha+beta → both terms at leaves → 1.0.
        assert!((score(&d, &frag(&d, &[0, 1]), &terms(), &cfg) - 1.0).abs() < 1e-9);
        // ⟨0,3⟩: leaf n3 has neither; alpha only internal → 0.0.
        assert!((score(&d, &frag(&d, &[0, 3]), &terms(), &cfg)).abs() < 1e-9);
    }

    #[test]
    fn rank_is_sorted_and_stable() {
        let d = doc();
        let answers =
            FragmentSet::from_iter([frag(&d, &[0, 1, 2, 3]), frag(&d, &[1]), frag(&d, &[0, 1])]);
        let ranked = rank(&d, &answers, &terms(), &RankConfig::default());
        assert_eq!(ranked.len(), 3);
        assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
        assert_eq!(ranked[0].fragment, frag(&d, &[1]));
        // Deterministic across calls.
        let again = rank(&d, &answers, &terms(), &RankConfig::default());
        assert_eq!(ranked, again);
    }

    #[test]
    fn ties_break_by_canonical_fragment_order() {
        let d = doc();
        // All weights zero → every fragment scores exactly 0.0, so the
        // ordering is purely the canonical-node-list tie-break.
        let cfg = RankConfig {
            compactness: 0.0,
            coverage: 0.0,
            leaf_bonus: 0.0,
            depth_preference: 0.0,
        };
        let answers = FragmentSet::from_iter([
            frag(&d, &[2]),
            frag(&d, &[0, 1]),
            frag(&d, &[1]),
            frag(&d, &[3]),
        ]);
        let ranked = rank(&d, &answers, &terms(), &cfg);
        assert!(ranked.iter().all(|r| r.score == 0.0));
        let order: Vec<Fragment> = ranked.iter().map(|r| r.fragment.clone()).collect();
        let mut canonical = order.clone();
        canonical.sort();
        assert_eq!(order, canonical, "ties must follow Fragment::cmp");
        // And the ordering is identical across repeated calls.
        assert_eq!(ranked, rank(&d, &answers, &terms(), &cfg));
    }

    #[test]
    fn top_k_truncates() {
        let d = doc();
        let answers = FragmentSet::from_iter([frag(&d, &[1]), frag(&d, &[2]), frag(&d, &[3])]);
        let top = top_k(&d, &answers, &terms(), &RankConfig::default(), 2);
        assert_eq!(top.len(), 2);
        let all = top_k(&d, &answers, &terms(), &RankConfig::default(), 99);
        assert_eq!(all.len(), 3);
    }
}
