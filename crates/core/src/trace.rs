//! Span-based execution tracing — the observability layer under
//! `--profile` and `explain --analyze`.
//!
//! The paper's efficiency arguments (§3–§4) are about *where work goes*:
//! join kernels, fixed-point rounds, reduce passes, filter evaluations.
//! [`crate::EvalStats`] totals that work per query; this module breaks the
//! totals down per **stage**. Every evaluation stage — term lookup,
//! fixed-point rounds, pairwise/powerset joins, reduce, filter push-down,
//! the degradation-ladder rungs of [`crate::evaluate_budgeted`], logical
//! plan operators, parallel join workers, and per-document collection
//! evaluation — opens a [`Span`] that records its wall-clock time and the
//! [`crate::EvalStats`] delta it produced, nested to mirror the call tree.
//!
//! The layer is pay-for-what-you-use: evaluation code consults a
//! [`Tracer`], and a tracer over the [`NoopSink`] reduces every span to a
//! single branch on a cached `bool` — no clock reads, no allocation, no
//! stats snapshots. A [`RecordingSink`] collects the finished span trees
//! for the [`render_spans`] pretty printer and the [`spans_to_json`]
//! machine emitter.

use crate::stats::EvalStats;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Stage-name vocabulary for the serving layer's replica scatter
/// (`xfrag serve --shards N --replicas R`). The server attaches these
/// as leaf spans on its per-request tracer: one `shard:{i}:replica:{j}`
/// span per sub-job dispatched (primary, hedge, or failover) and one
/// [`serve_stage::HEDGE_FIRE`] span per hedge timer that fired. Kept
/// here rather than in the CLI so the names are part of the stable
/// tracing vocabulary alongside the evaluation stages.
pub mod serve_stage {
    /// Stage name of one replica sub-job: `shard:{i}:replica:{j}`.
    pub fn replica(shard: usize, replica: usize) -> String {
        format!("shard:{shard}:replica:{replica}")
    }

    /// Stage name of a hedge dispatch against a slow replica group.
    pub const HEDGE_FIRE: &str = "hedge:fire";
}

/// One traced evaluation stage: what ran, how long it took on the wall
/// clock, the operation counters it added, and the sub-stages it ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Span {
    /// Stage label, e.g. `fixpoint:xquery`, `round`, `rung:full`.
    pub stage: String,
    /// Wall-clock time spent in the stage, children included.
    pub wall: Duration,
    /// Counters accumulated by the stage, children included.
    pub stats_delta: EvalStats,
    /// Nested sub-stages, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// A childless span built from already-measured values — used by
    /// parallel workers, which record locally and attach afterwards.
    pub fn leaf(stage: impl Into<String>, wall: Duration, stats_delta: EvalStats) -> Span {
        Span {
            stage: stage.into(),
            wall,
            stats_delta,
            children: Vec::new(),
        }
    }

    /// Total number of spans in this tree, itself included.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(Span::len).sum::<usize>()
    }

    /// Whether the tree is a single childless span.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

/// Destination for completed top-level spans.
///
/// [`Tracer`] caches [`TraceSink::enabled`] at construction, so a sink
/// cannot usefully flip mid-evaluation; disabled sinks never receive
/// spans at all.
pub trait TraceSink {
    /// Whether spans should be built for this sink. `false` turns every
    /// span into a single branch.
    fn enabled(&self) -> bool;
    /// Accept one completed top-level span tree.
    fn record(&self, span: Span);
}

/// The zero-cost sink: reports disabled, drops anything recorded.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _span: Span) {}
}

/// A sink that keeps every recorded span tree for later inspection.
#[derive(Debug, Default)]
pub struct RecordingSink {
    spans: RefCell<Vec<Span>>,
}

impl RecordingSink {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove and return everything recorded so far.
    pub fn take(&self) -> Vec<Span> {
        std::mem::take(&mut self.spans.borrow_mut())
    }

    /// Number of top-level spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.borrow().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.borrow().is_empty()
    }
}

impl TraceSink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&self, span: Span) {
        self.spans.borrow_mut().push(span);
    }
}

/// An open span under construction.
#[derive(Debug)]
struct Frame {
    stage: String,
    start: Instant,
    base: EvalStats,
    children: Vec<Span>,
}

static NOOP: NoopSink = NoopSink;

/// The span builder evaluation code threads through its stages.
///
/// A tracer owns a stack of open frames; [`Tracer::scoped`] pushes a
/// frame, runs the stage, and on return folds the finished [`Span`] into
/// the parent frame — or hands it to the sink when it is top-level.
/// Single-threaded by design (parallel workers record their own leaf
/// spans and [`Tracer::attach`] them from the coordinating thread).
pub struct Tracer<'a> {
    sink: &'a dyn TraceSink,
    enabled: bool,
    stack: RefCell<Vec<Frame>>,
}

impl<'a> Tracer<'a> {
    /// A tracer emitting to `sink`. The sink's enabled flag is sampled
    /// once, here.
    pub fn new(sink: &'a dyn TraceSink) -> Self {
        Tracer {
            sink,
            enabled: sink.enabled(),
            stack: RefCell::new(Vec::new()),
        }
    }

    /// The no-op tracer: every [`Tracer::scoped`] call degenerates to a
    /// plain closure call.
    pub fn disabled() -> Tracer<'static> {
        Tracer {
            sink: &NOOP,
            enabled: false,
            stack: RefCell::new(Vec::new()),
        }
    }

    /// Whether spans are being recorded. Use to skip building expensive
    /// labels (e.g. per-document names) on the untraced path.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Run `f` as stage `stage`: measure its wall-clock time and the
    /// [`EvalStats`] delta it adds to `stats`, and record the resulting
    /// span (nested under the currently open stage, if any). When the
    /// tracer is disabled this is exactly `f(stats)`.
    pub fn scoped<T>(
        &self,
        stage: &str,
        stats: &mut EvalStats,
        f: impl FnOnce(&mut EvalStats) -> T,
    ) -> T {
        if !self.enabled {
            return f(stats);
        }
        self.stack.borrow_mut().push(Frame {
            stage: stage.to_string(),
            start: Instant::now(),
            base: *stats,
            children: Vec::new(),
        });
        let out = f(stats);
        // invariant: pushed above, and `f` has no access to the stack.
        let frame = self.stack.borrow_mut().pop().expect("balanced span stack");
        self.emit(Span {
            stage: frame.stage,
            wall: frame.start.elapsed(),
            stats_delta: stats.delta_since(&frame.base),
            children: frame.children,
        });
        out
    }

    /// [`Tracer::scoped`] with a lazily-built label: `stage` only runs (and
    /// allocates) when the tracer is enabled, keeping the untraced path
    /// allocation-free for labels like `term-lookup:{term}`.
    pub fn scoped_lazy<T>(
        &self,
        stage: impl FnOnce() -> String,
        stats: &mut EvalStats,
        f: impl FnOnce(&mut EvalStats) -> T,
    ) -> T {
        if !self.enabled {
            return f(stats);
        }
        let label = stage();
        self.scoped(&label, stats, f)
    }

    /// Attach an already-built span (e.g. from a parallel worker) as a
    /// child of the currently open stage, or as a top-level span.
    pub fn attach(&self, span: Span) {
        if !self.enabled {
            return;
        }
        self.emit(span);
    }

    fn emit(&self, span: Span) {
        let mut stack = self.stack.borrow_mut();
        match stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => {
                drop(stack);
                self.sink.record(span);
            }
        }
    }
}

/// Stable `(name, value)` view of every [`EvalStats`] counter, used by
/// both emitters so their field sets cannot drift apart.
fn stats_fields(s: &EvalStats) -> [(&'static str, u64); 14] {
    [
        ("joins", s.joins),
        ("nodes_merged", s.nodes_merged),
        ("fragments_emitted", s.fragments_emitted),
        ("duplicates_collapsed", s.duplicates_collapsed),
        ("filter_evals", s.filter_evals),
        ("filter_pruned", s.filter_pruned),
        ("fixpoint_iterations", s.fixpoint_iterations),
        ("fixpoint_checks", s.fixpoint_checks),
        ("reduce_checks", s.reduce_checks),
        ("budget_checkpoints", s.budget_checkpoints),
        ("label_ops", s.label_ops),
        ("tree_ops", s.tree_ops),
        ("cache_hits", s.cache_hits),
        ("cache_misses", s.cache_misses),
    ]
}

/// Human-scale duration: `412ns`, `3.4µs`, `1.25ms`, `2.10s`.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Compact non-zero counters for one span line; `-` when nothing moved.
fn brief_stats(s: &EvalStats) -> String {
    let mut out = String::new();
    for (name, v) in stats_fields(s) {
        if v > 0 {
            if !out.is_empty() {
                out.push(' ');
            }
            // invariant: fmt::Write for String never fails.
            write!(out, "{name}={v}").unwrap();
        }
    }
    if out.is_empty() {
        out.push('-');
    }
    out
}

/// Pretty-text emitter: one line per span, children indented, with
/// wall-clock and the non-zero counter deltas.
pub fn render_spans(spans: &[Span]) -> String {
    fn walk(out: &mut String, span: &Span, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        // invariant: fmt::Write for String never fails.
        writeln!(
            out,
            "{}  {}  {}",
            span.stage,
            format_duration(span.wall),
            brief_stats(&span.stats_delta)
        )
        .unwrap();
        for c in &span.children {
            walk(out, c, depth + 1);
        }
    }
    let mut out = String::new();
    for s in spans {
        walk(&mut out, s, 0);
    }
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                // invariant: fmt::Write for String never fails.
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
}

/// JSON emitter: an array of span objects
/// `{"stage", "wall_ns", "stats": {…}, "children": […]}` with every
/// counter present (zero or not), so downstream tooling sees a fixed
/// schema.
pub fn spans_to_json(spans: &[Span]) -> String {
    fn walk(out: &mut String, span: &Span) {
        out.push_str("{\"stage\":\"");
        json_escape(&span.stage, out);
        // invariant (both writes): fmt::Write for String never fails.
        write!(
            out,
            "\",\"wall_ns\":{},\"stats\":{{",
            u64::try_from(span.wall.as_nanos()).unwrap_or(u64::MAX)
        )
        .unwrap();
        for (i, (name, v)) in stats_fields(&span.stats_delta).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{name}\":{v}").unwrap();
        }
        out.push_str("},\"children\":[");
        for (i, c) in span.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            walk(out, c);
        }
        out.push_str("]}");
    }
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        walk(&mut out, s);
    }
    out.push(']');
    out
}

/// Number of power-of-two latency buckets; the last bucket is open-ended.
const HIST_BUCKETS: usize = 18;

/// A power-of-two latency histogram over microseconds: bucket 0 holds
/// sub-microsecond samples, bucket `i ≥ 1` holds `[2^(i−1)µs, 2^i µs)`,
/// and the final bucket is open-ended. Used for per-document latency
/// aggregation in collection profiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    total: Duration,
    max: Duration,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += d;
        self.max = self.max.max(d);
    }

    /// Build a histogram from the wall times of the given spans.
    pub fn from_spans<'a>(spans: impl IntoIterator<Item = &'a Span>) -> Self {
        let mut h = Self::new();
        for s in spans {
            h.record(s.wall);
        }
        h
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest sample.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Sum of all samples.
    pub fn total(&self) -> Duration {
        self.total
    }

    fn bucket_label(i: usize) -> String {
        match i {
            0 => "<1µs".to_string(),
            i if i == HIST_BUCKETS - 1 => format!("≥{}µs", 1u64 << (i - 1)),
            i => format!("{}-{}µs", 1u64 << (i - 1), 1u64 << i),
        }
    }

    /// Merge another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total += other.total;
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(upper bound in µs, count)` pairs; the
    /// open-ended final bucket reports `u64::MAX` as its bound.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let le_us = if i == 0 {
                    1
                } else if i == HIST_BUCKETS - 1 {
                    u64::MAX
                } else {
                    1u64 << i
                };
                (le_us, n)
            })
            .collect()
    }

    /// JSON object with a fixed schema:
    /// `{"count","total_ns","max_ns","buckets":[{"le_us","n"},…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        // invariant (every write! below): fmt::Write for String never
        // fails.
        write!(
            out,
            "{{\"count\":{},\"total_ns\":{},\"max_ns\":{},\"buckets\":[",
            self.count,
            u64::try_from(self.total.as_nanos()).unwrap_or(u64::MAX),
            u64::try_from(self.max.as_nanos()).unwrap_or(u64::MAX)
        )
        .unwrap();
        for (i, (le_us, n)) in self.nonzero_buckets().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{{\"le_us\":{le_us},\"n\":{n}}}").unwrap();
        }
        out.push_str("]}");
        out
    }

    /// Pretty-text rendering: one bar per non-empty bucket.
    pub fn render(&self) -> String {
        let mut out = String::new();
        // invariant (every writeln! below): fmt::Write for String never
        // fails.
        writeln!(
            out,
            "latency histogram: {} sample(s), total {}, max {}",
            self.count,
            format_duration(self.total),
            format_duration(self.max)
        )
        .unwrap();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            writeln!(out, "  {:>10}  {n:>6}  {bar}", Self::bucket_label(i)).unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(joins: u64) -> EvalStats {
        EvalStats {
            joins,
            ..EvalStats::default()
        }
    }

    #[test]
    fn serve_stage_names_are_stable() {
        assert_eq!(serve_stage::replica(3, 1), "shard:3:replica:1");
        assert_eq!(serve_stage::HEDGE_FIRE, "hedge:fire");
        // The names travel through the ordinary span machinery.
        let sink = RecordingSink::new();
        let tracer = Tracer::new(&sink);
        tracer.attach(Span::leaf(
            serve_stage::replica(0, 1),
            Duration::from_micros(5),
            EvalStats::default(),
        ));
        tracer.attach(Span::leaf(
            serve_stage::HEDGE_FIRE,
            Duration::ZERO,
            EvalStats::default(),
        ));
        let spans = sink.take();
        assert_eq!(spans[0].stage, "shard:0:replica:1");
        assert_eq!(spans[1].stage, "hedge:fire");
    }

    #[test]
    fn noop_tracer_is_transparent() {
        let tracer = Tracer::disabled();
        let mut st = EvalStats::new();
        let out = tracer.scoped("outer", &mut st, |st| {
            st.joins += 2;
            tracer.scoped("inner", st, |st| {
                st.joins += 1;
                st.joins
            })
        });
        assert_eq!(out, 3);
        assert_eq!(st.joins, 3);
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn recording_builds_nested_spans_with_deltas() {
        let sink = RecordingSink::new();
        let tracer = Tracer::new(&sink);
        let mut st = EvalStats::new();
        tracer.scoped("outer", &mut st, |st| {
            tracer.scoped("inner-a", st, |st| st.joins += 2);
            tracer.scoped("inner-b", st, |st| st.filter_evals += 5);
            st.joins += 1;
        });
        let spans = sink.take();
        assert_eq!(spans.len(), 1);
        let outer = &spans[0];
        assert_eq!(outer.stage, "outer");
        assert_eq!(outer.stats_delta.joins, 3);
        assert_eq!(outer.stats_delta.filter_evals, 5);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.children[0].stage, "inner-a");
        assert_eq!(outer.children[0].stats_delta.joins, 2);
        assert_eq!(outer.children[1].stats_delta.filter_evals, 5);
        assert_eq!(outer.len(), 3);
        // The recorder was drained.
        assert!(sink.is_empty());
    }

    #[test]
    fn attach_nests_prebuilt_spans() {
        let sink = RecordingSink::new();
        let tracer = Tracer::new(&sink);
        let mut st = EvalStats::new();
        tracer.scoped("parent", &mut st, |_| {
            tracer.attach(Span::leaf("worker-0", Duration::from_micros(5), stats(7)));
        });
        let spans = sink.take();
        assert_eq!(spans[0].children[0].stage, "worker-0");
        assert_eq!(spans[0].children[0].stats_delta.joins, 7);
        // Disabled tracers drop attached spans.
        Tracer::disabled().attach(Span::leaf("x", Duration::ZERO, stats(0)));
    }

    #[test]
    fn scoped_propagates_result_values() {
        let sink = RecordingSink::new();
        let tracer = Tracer::new(&sink);
        let mut st = EvalStats::new();
        let r: Result<u32, &str> = tracer.scoped("failing", &mut st, |_| Err("boom"));
        assert_eq!(r, Err("boom"));
        // The span is still recorded — failures show where time went.
        assert_eq!(sink.take().len(), 1);
    }

    #[test]
    fn render_is_indented_and_shows_nonzero_counters() {
        let span = Span {
            stage: "outer".into(),
            wall: Duration::from_micros(1500),
            stats_delta: stats(3),
            children: vec![Span::leaf("inner", Duration::from_nanos(250), stats(0))],
        };
        let text = render_spans(&[span]);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("outer"), "{text}");
        assert!(lines[0].contains("joins=3"), "{text}");
        assert!(lines[1].starts_with("  inner"), "{text}");
        assert!(lines[1].contains('-'), "{text}");
        assert!(lines[0].contains("1.50ms"), "{text}");
        assert!(lines[1].contains("250ns"), "{text}");
    }

    #[test]
    fn json_has_fixed_schema_and_escapes() {
        let span = Span {
            stage: "doc:we\"ird\\name".into(),
            wall: Duration::from_nanos(42),
            stats_delta: stats(1),
            children: vec![Span::leaf("c", Duration::ZERO, stats(0))],
        };
        let json = spans_to_json(&[span]);
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"wall_ns\":42"), "{json}");
        assert!(json.contains("doc:we\\\"ird\\\\name"), "{json}");
        // Every counter is present even when zero.
        assert!(json.contains("\"budget_checkpoints\":0"), "{json}");
        // And it round-trips through the JSON shim into a schema mirror.
        #[derive(serde::Deserialize)]
        struct JsonSpan {
            stage: String,
            wall_ns: u64,
            stats: EvalStats,
            children: Vec<JsonSpan>,
        }
        let parsed: Vec<JsonSpan> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].stage, "doc:we\"ird\\name");
        assert_eq!(parsed[0].wall_ns, 42);
        assert_eq!(parsed[0].stats.joins, 1);
        assert_eq!(parsed[0].children.len(), 1);
        assert!(parsed[0].children[0].children.is_empty());
    }

    #[test]
    fn histogram_buckets_and_renders() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_nanos(500)); // <1µs
        h.record(Duration::from_micros(1)); // 1-2µs
        h.record(Duration::from_micros(3)); // 2-4µs
        h.record(Duration::from_millis(200)); // large
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Duration::from_millis(200));
        let text = h.render();
        assert!(text.contains("4 sample(s)"), "{text}");
        assert!(text.contains("<1µs"), "{text}");
        assert!(text.contains("2-4µs"), "{text}");
        let from = LatencyHistogram::from_spans(&[
            Span::leaf("a", Duration::from_micros(1), stats(0)),
            Span::leaf("b", Duration::from_micros(3), stats(0)),
        ]);
        assert_eq!(from.count(), 2);
        assert!(LatencyHistogram::new().is_empty());
    }

    #[test]
    fn histogram_merge_and_json() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(1));
        a.record(Duration::from_micros(3));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_micros(3));
        b.record(Duration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), Duration::from_millis(5));
        let buckets = a.nonzero_buckets();
        assert!(
            buckets.iter().any(|&(le, n)| le == 4 && n == 2),
            "{buckets:?}"
        );
        let json = a.to_json();
        assert!(json.starts_with("{\"count\":4,"), "{json}");
        assert!(json.contains("\"buckets\":["), "{json}");
        assert!(json.contains("\"le_us\":4,\"n\":2"), "{json}");
        assert_eq!(
            LatencyHistogram::new().to_json(),
            "{\"count\":0,\"total_ns\":0,\"max_ns\":0,\"buckets\":[]}"
        );
    }

    #[test]
    fn format_duration_scales() {
        assert_eq!(format_duration(Duration::from_nanos(999)), "999ns");
        assert_eq!(format_duration(Duration::from_micros(2)), "2.0µs");
        assert_eq!(format_duration(Duration::from_millis(3)), "3.00ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }
}
