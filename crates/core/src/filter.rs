//! Selection predicates ("filters") — Definitions 3 and 11, §3.3–§3.4.
//!
//! Filters are represented as a closed expression enum rather than a trait
//! object: the optimizer must *decide* whether a filter is anti-monotonic
//! (Theorem 3's precondition), serialize plans, and print evaluation trees,
//! all of which want structural filters. Composition (`And`/`Or`/`Not`)
//! covers the extension surface the paper describes — conjunction and
//! disjunction preserve anti-monotonicity; negation destroys it.
//!
//! A filter `P` is **anti-monotonic** (Definition 11) iff
//! `∀ f' ⊆ f: P(f) ⇒ P(f')` — if a fragment passes, so does every
//! sub-fragment; equivalently, once a fragment fails, every super-fragment
//! fails, which is what lets selection commute below joins (Theorem 3).

use crate::fragment::Fragment;
use crate::set::FragmentSet;
use crate::stats::EvalStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use xfrag_doc::text::node_contains;
use xfrag_doc::Document;

/// A selection predicate over fragments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterExpr {
    /// Always true — the neutral filter (anti-monotonic trivially).
    True,
    /// `size(f) ≤ β` (§3.3.1). Anti-monotonic.
    MaxSize(u32),
    /// `height(f) ≤ h` (§3.3.2): root-to-deepest-node distance. Anti-monotonic.
    MaxHeight(u32),
    /// `width(f) ≤ w` (§3.3.2): document-order span between the extreme
    /// (leftmost/rightmost) nodes. Anti-monotonic.
    MaxWidth(u32),
    /// `diameter(f) ≤ d`: the maximum tree distance (in edges) between
    /// any two nodes of the fragment — the "distance between nodes
    /// containing the query keywords" measure §3.3.2 motivates, made
    /// symmetric. Anti-monotonic: a sub-fragment's node pairs are a
    /// subset, so its diameter can only shrink.
    MaxDiameter(u32),
    /// `size(f) ≥ v` — the paper's §3.4 example of a filter *without* the
    /// anti-monotonic property.
    MinSize(u32),
    /// Some node of the fragment contains the (normalized) term.
    /// Monotonic, hence not anti-monotonic.
    ContainsTerm(String),
    /// Some *leaf of the fragment* contains the term — the per-keyword
    /// condition of Definition 8. Not anti-monotonic.
    LeafTerm(String),
    /// The paper's §3.4 "equal depth filter": both terms occur in the
    /// fragment, and every node containing the first term sits at the same
    /// vertical distance from the fragment root as every node containing
    /// the second term. Not anti-monotonic (Figure 7: a super-fragment can
    /// satisfy it while a sub-fragment that lost one term's witnesses does
    /// not).
    EqualDepth(String, String),
    /// The fragment root carries the given tag. Not anti-monotonic.
    RootTag(String),
    /// Conjunction. Anti-monotonic iff every conjunct is.
    And(Vec<FilterExpr>),
    /// Disjunction. Anti-monotonic iff every disjunct is.
    Or(Vec<FilterExpr>),
    /// Negation. Never treated as anti-monotonic (the paper excludes it).
    Not(Box<FilterExpr>),
}

impl FilterExpr {
    /// Evaluate the predicate on a fragment (Definition 3's `P(f)`),
    /// counting the evaluation in `stats`.
    pub fn eval(&self, doc: &Document, f: &Fragment, stats: &mut EvalStats) -> bool {
        stats.filter_evals += 1;
        self.eval_uncounted(doc, f)
    }

    /// Evaluate without touching counters (used by tests and by inner
    /// recursive calls so a composite filter counts as one evaluation).
    pub fn eval_uncounted(&self, doc: &Document, f: &Fragment) -> bool {
        match self {
            FilterExpr::True => true,
            FilterExpr::MaxSize(b) => f.size() as u32 <= *b,
            FilterExpr::MaxHeight(h) => f.height(doc) <= *h,
            FilterExpr::MaxWidth(w) => f.width(doc) <= *w,
            FilterExpr::MaxDiameter(dm) => diameter(doc, f) <= *dm,
            FilterExpr::MinSize(v) => f.size() as u32 >= *v,
            FilterExpr::ContainsTerm(t) => f.iter().any(|n| node_contains(doc, n, t)),
            FilterExpr::LeafTerm(t) => f.leaves(doc).any(|n| node_contains(doc, n, t)),
            FilterExpr::EqualDepth(t1, t2) => {
                // "selects fragments in which each node having keyword k1 is
                // at the same vertical distance as the node having keyword k2
                // from the root" — both keywords must be present (otherwise
                // the filter would be vacuously anti-monotonic, contradicting
                // Figure 7), and every k1-node must sit at the same distance
                // from the fragment root as every k2-node.
                let base = doc.depth(f.root());
                let d1: Vec<u32> = f
                    .iter()
                    .filter(|&n| node_contains(doc, n, t1))
                    .map(|n| doc.depth(n) - base)
                    .collect();
                let d2: Vec<u32> = f
                    .iter()
                    .filter(|&n| node_contains(doc, n, t2))
                    .map(|n| doc.depth(n) - base)
                    .collect();
                !d1.is_empty() && !d2.is_empty() && d1.iter().all(|a| d2.iter().all(|b| a == b))
            }
            FilterExpr::RootTag(t) => doc.tag(f.root()) == t,
            FilterExpr::And(fs) => fs.iter().all(|p| p.eval_uncounted(doc, f)),
            FilterExpr::Or(fs) => fs.iter().any(|p| p.eval_uncounted(doc, f)),
            FilterExpr::Not(p) => !p.eval_uncounted(doc, f),
        }
    }

    /// Definition 11 classification, decided structurally (conservative:
    /// a composite is declared anti-monotonic only when every part is).
    ///
    /// ```
    /// use xfrag_core::FilterExpr;
    /// assert!(FilterExpr::MaxSize(3).is_anti_monotonic());
    /// assert!(!FilterExpr::MinSize(2).is_anti_monotonic());
    /// // Conjunction preserves the property; negation destroys it.
    /// assert!(FilterExpr::and([FilterExpr::MaxSize(3), FilterExpr::MaxHeight(1)])
    ///     .is_anti_monotonic());
    /// assert!(!FilterExpr::Not(Box::new(FilterExpr::MaxSize(3))).is_anti_monotonic());
    /// ```
    pub fn is_anti_monotonic(&self) -> bool {
        match self {
            FilterExpr::True
            | FilterExpr::MaxSize(_)
            | FilterExpr::MaxHeight(_)
            | FilterExpr::MaxWidth(_)
            | FilterExpr::MaxDiameter(_) => true,
            FilterExpr::MinSize(_)
            | FilterExpr::ContainsTerm(_)
            | FilterExpr::LeafTerm(_)
            | FilterExpr::EqualDepth(_, _)
            | FilterExpr::RootTag(_)
            | FilterExpr::Not(_) => false,
            FilterExpr::And(fs) | FilterExpr::Or(fs) => {
                fs.iter().all(FilterExpr::is_anti_monotonic)
            }
        }
    }

    /// Split a filter into `(anti-monotonic part, residual part)` such that
    /// the original is equivalent to the conjunction of the two. Only
    /// conjunctions can be split; the anti-monotonic part is what the
    /// optimizer pushes below joins, the residual stays on top.
    pub fn split_anti_monotonic(&self) -> (FilterExpr, FilterExpr) {
        if self.is_anti_monotonic() {
            return (self.clone(), FilterExpr::True);
        }
        if let FilterExpr::And(fs) = self {
            let (anti, rest): (Vec<_>, Vec<_>) =
                fs.iter().cloned().partition(FilterExpr::is_anti_monotonic);
            return (FilterExpr::and(anti), FilterExpr::and(rest));
        }
        (FilterExpr::True, self.clone())
    }

    /// Smart conjunction: flattens, drops `True`, unwraps singletons.
    pub fn and(fs: impl IntoIterator<Item = FilterExpr>) -> FilterExpr {
        let mut out = Vec::new();
        for f in fs {
            match f {
                FilterExpr::True => {}
                FilterExpr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => FilterExpr::True,
            // invariant: len() == 1, so pop() yields the sole element.
            1 => out.pop().unwrap(),
            _ => FilterExpr::And(out),
        }
    }

    /// Smart disjunction: flattens nested `Or`s, unwraps singletons.
    pub fn or(fs: impl IntoIterator<Item = FilterExpr>) -> FilterExpr {
        let mut out = Vec::new();
        for f in fs {
            match f {
                FilterExpr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => FilterExpr::True,
            // invariant: len() == 1, so pop() yields the sole element.
            1 => out.pop().unwrap(),
            _ => FilterExpr::Or(out),
        }
    }

    /// Whether this filter is the neutral `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, FilterExpr::True)
    }
}

impl fmt::Display for FilterExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterExpr::True => write!(f, "true"),
            FilterExpr::MaxSize(b) => write!(f, "size≤{b}"),
            FilterExpr::MaxHeight(h) => write!(f, "height≤{h}"),
            FilterExpr::MaxWidth(w) => write!(f, "width≤{w}"),
            FilterExpr::MaxDiameter(d) => write!(f, "diameter≤{d}"),
            FilterExpr::MinSize(v) => write!(f, "size≥{v}"),
            FilterExpr::ContainsTerm(t) => write!(f, "contains({t})"),
            FilterExpr::LeafTerm(t) => write!(f, "leaf-contains({t})"),
            FilterExpr::EqualDepth(a, b) => write!(f, "equal-depth({a},{b})"),
            FilterExpr::RootTag(t) => write!(f, "root-tag({t})"),
            FilterExpr::And(fs) => {
                write!(f, "(")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            FilterExpr::Or(fs) => {
                write!(f, "(")?;
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            FilterExpr::Not(p) => write!(f, "¬{p}"),
        }
    }
}

/// Tree distance (edges) between the two farthest nodes of a fragment.
///
/// A connected fragment is itself a tree, so the classic two-sweep works:
/// take the node farthest from the root, then the node farthest from
/// *that* — their distance is the diameter. Distances inside the fragment
/// coincide with document distances because the induced subgraph is
/// connected.
pub fn diameter(doc: &Document, f: &Fragment) -> u32 {
    let dist = |a, b| {
        let l = doc.lca(a, b);
        doc.depth(a) + doc.depth(b) - 2 * doc.depth(l)
    };
    let root = f.root();
    // invariant: Fragment construction rejects empty node sets, so the
    // iterator always yields a maximum.
    let a = f
        .iter()
        .max_by_key(|&n| dist(root, n))
        .expect("fragments are non-empty");
    f.iter().map(|n| dist(a, n)).max().unwrap_or(0)
}

/// `σ_P(F)` — Definition 3: the sub-set of fragments satisfying `P`.
pub fn select(
    doc: &Document,
    p: &FilterExpr,
    f: &FragmentSet,
    stats: &mut EvalStats,
) -> FragmentSet {
    if p.is_true() {
        return f.clone();
    }
    let mut out = FragmentSet::new();
    for frag in f.iter() {
        if p.eval(doc, frag, stats) {
            out.insert(frag.clone());
        } else {
            stats.filter_pruned += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::Fragment;
    use xfrag_doc::{DocumentBuilder, NodeId};

    /// r(0) -> s(1){"alpha"} -> p(2){"alpha beta"}, p(3){"beta"};
    /// r -> s(4) -> p(5){"alpha"}
    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("r");
        b.begin("s");
        b.text("alpha");
        b.leaf("p", "alpha beta");
        b.leaf("p", "beta");
        b.end();
        b.begin("s");
        b.leaf("p", "alpha");
        b.end();
        b.end();
        b.finish().unwrap()
    }

    fn frag(d: &Document, ns: &[u32]) -> Fragment {
        Fragment::from_nodes(d, ns.iter().map(|&n| NodeId(n))).unwrap()
    }

    #[test]
    fn size_filter() {
        let d = doc();
        let f3 = frag(&d, &[1, 2, 3]);
        assert!(FilterExpr::MaxSize(3).eval_uncounted(&d, &f3));
        assert!(!FilterExpr::MaxSize(2).eval_uncounted(&d, &f3));
        assert!(FilterExpr::MinSize(3).eval_uncounted(&d, &f3));
        assert!(!FilterExpr::MinSize(4).eval_uncounted(&d, &f3));
    }

    #[test]
    fn diameter_filter() {
        let d = doc();
        // ⟨n1..n3⟩: distances — n2,n3 are siblings under n1: dist = 2.
        let f = frag(&d, &[1, 2, 3]);
        assert_eq!(diameter(&d, &f), 2);
        assert!(FilterExpr::MaxDiameter(2).eval_uncounted(&d, &f));
        assert!(!FilterExpr::MaxDiameter(1).eval_uncounted(&d, &f));
        // Whole tree: n2/n3 (depth 2) to n5 (depth 2) through root: 4.
        let whole = frag(&d, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(diameter(&d, &whole), 4);
        // Singletons have diameter 0.
        assert_eq!(diameter(&d, &frag(&d, &[2])), 0);
    }

    #[test]
    fn height_and_width_filters() {
        let d = doc();
        let f = frag(&d, &[0, 1, 2, 4]);
        assert!(FilterExpr::MaxHeight(2).eval_uncounted(&d, &f));
        assert!(!FilterExpr::MaxHeight(1).eval_uncounted(&d, &f));
        assert!(FilterExpr::MaxWidth(4).eval_uncounted(&d, &f));
        assert!(!FilterExpr::MaxWidth(3).eval_uncounted(&d, &f));
    }

    #[test]
    fn term_filters() {
        let d = doc();
        let f = frag(&d, &[1, 2]);
        assert!(FilterExpr::ContainsTerm("beta".into()).eval_uncounted(&d, &f));
        assert!(!FilterExpr::ContainsTerm("gamma".into()).eval_uncounted(&d, &f));
        // "alpha" occurs at leaf n2 → leaf filter passes.
        assert!(FilterExpr::LeafTerm("alpha".into()).eval_uncounted(&d, &f));
        // n1 contains alpha but is internal to ⟨n1,n2⟩; "beta" is at leaf n2 too.
        let f13 = frag(&d, &[1, 3]);
        // leaf of ⟨n1,n3⟩ is n3 only; alpha is at n1 (internal) → fails.
        assert!(!FilterExpr::LeafTerm("alpha".into()).eval_uncounted(&d, &f13));
    }

    #[test]
    fn root_tag_filter() {
        let d = doc();
        assert!(FilterExpr::RootTag("s".into()).eval_uncounted(&d, &frag(&d, &[1, 2])));
        assert!(!FilterExpr::RootTag("p".into()).eval_uncounted(&d, &frag(&d, &[1, 2])));
    }

    #[test]
    fn anti_monotonic_classification() {
        use FilterExpr::*;
        assert!(True.is_anti_monotonic());
        assert!(MaxSize(3).is_anti_monotonic());
        assert!(MaxHeight(2).is_anti_monotonic());
        assert!(MaxWidth(5).is_anti_monotonic());
        assert!(MaxDiameter(4).is_anti_monotonic());
        assert!(!MinSize(2).is_anti_monotonic());
        assert!(!ContainsTerm("x".into()).is_anti_monotonic());
        assert!(!LeafTerm("x".into()).is_anti_monotonic());
        assert!(!EqualDepth("a".into(), "b".into()).is_anti_monotonic());
        assert!(!RootTag("s".into()).is_anti_monotonic());
        // Closure: ∧ and ∨ of anti-monotonic filters are anti-monotonic.
        assert!(And(vec![MaxSize(3), MaxHeight(2)]).is_anti_monotonic());
        assert!(Or(vec![MaxSize(3), MaxWidth(1)]).is_anti_monotonic());
        // Mixed composites are conservatively not.
        assert!(!And(vec![MaxSize(3), MinSize(1)]).is_anti_monotonic());
        assert!(!Or(vec![MaxSize(3), MinSize(1)]).is_anti_monotonic());
        // Negation destroys the property.
        assert!(!Not(Box::new(MaxSize(3))).is_anti_monotonic());
    }

    /// Definition 11 spot-check: for the anti-monotonic trio, a passing
    /// fragment's sub-fragments all pass.
    #[test]
    fn definition11_holds_for_size_height_width() {
        let d = doc();
        let f = frag(&d, &[0, 1, 2, 3, 4]);
        let subs = [
            frag(&d, &[0, 1]),
            frag(&d, &[1, 2, 3]),
            frag(&d, &[4]),
            frag(&d, &[0, 4]),
        ];
        for p in [
            FilterExpr::MaxSize(5),
            FilterExpr::MaxHeight(2),
            FilterExpr::MaxWidth(4),
        ] {
            assert!(p.eval_uncounted(&d, &f));
            for s in &subs {
                assert!(s.is_subfragment_of(&f));
                assert!(p.eval_uncounted(&d, s), "{p} failed on sub {s}");
            }
        }
    }

    /// §3.4's observation that `size ≥ v` is not anti-monotonic, witnessed.
    #[test]
    fn min_size_violates_definition11() {
        let d = doc();
        let f = frag(&d, &[1, 2, 3]);
        let sub = frag(&d, &[1]);
        let p = FilterExpr::MinSize(2);
        assert!(p.eval_uncounted(&d, &f));
        assert!(!p.eval_uncounted(&d, &sub)); // sub fails ⇒ not anti-monotonic
    }

    #[test]
    fn split_anti_monotonic_partitions_conjunctions() {
        use FilterExpr::*;
        let p = And(vec![MaxSize(3), MinSize(1), MaxHeight(2)]);
        let (anti, rest) = p.split_anti_monotonic();
        assert_eq!(anti, And(vec![MaxSize(3), MaxHeight(2)]));
        assert_eq!(rest, MinSize(1));
        // Pure anti-monotonic filter splits into (self, True).
        let (anti, rest) = MaxSize(3).split_anti_monotonic();
        assert_eq!(anti, MaxSize(3));
        assert!(rest.is_true());
        // Non-conjunction, non-anti-monotonic: nothing to push.
        let (anti, rest) = MinSize(1).split_anti_monotonic();
        assert!(anti.is_true());
        assert_eq!(rest, MinSize(1));
    }

    #[test]
    fn smart_constructors_flatten() {
        use FilterExpr::*;
        assert_eq!(FilterExpr::and([]), True);
        assert_eq!(FilterExpr::and([MaxSize(3)]), MaxSize(3));
        assert_eq!(
            FilterExpr::and([True, And(vec![MaxSize(3), MaxHeight(1)]), MinSize(1)]),
            And(vec![MaxSize(3), MaxHeight(1), MinSize(1)])
        );
        assert_eq!(FilterExpr::or([MaxSize(2)]), MaxSize(2));
        assert_eq!(
            FilterExpr::or([Or(vec![MaxSize(1), MaxSize(2)]), MaxSize(3)]),
            Or(vec![MaxSize(1), MaxSize(2), MaxSize(3)])
        );
    }

    #[test]
    fn select_filters_and_counts() {
        let d = doc();
        let set = crate::set::FragmentSet::from_iter([
            frag(&d, &[1]),
            frag(&d, &[1, 2, 3]),
            frag(&d, &[0, 1, 2, 3, 4, 5]),
        ]);
        let mut st = EvalStats::new();
        let out = select(&d, &FilterExpr::MaxSize(3), &set, &mut st);
        assert_eq!(out.len(), 2);
        assert_eq!(st.filter_evals, 3);
        assert_eq!(st.filter_pruned, 1);
        // True short-circuits without evaluating.
        let mut st = EvalStats::new();
        let out = select(&d, &FilterExpr::True, &set, &mut st);
        assert_eq!(out.len(), 3);
        assert_eq!(st.filter_evals, 0);
    }

    #[test]
    fn display_renders_paper_notation() {
        use FilterExpr::*;
        assert_eq!(MaxSize(3).to_string(), "size≤3");
        assert_eq!(
            And(vec![MaxSize(3), Not(Box::new(MinSize(2)))]).to_string(),
            "(size≤3 ∧ ¬size≥2)"
        );
        assert_eq!(
            Or(vec![MaxHeight(1), MaxWidth(2)]).to_string(),
            "(height≤1 ∨ width≤2)"
        );
    }

    #[test]
    fn equal_depth_filter_semantics() {
        let d = doc();
        let p = FilterExpr::EqualDepth("alpha".into(), "beta".into());
        // Fragment ⟨n2⟩: alpha and beta both at depth 0 from the root → true.
        assert!(p.eval_uncounted(&d, &frag(&d, &[2])));
        // Fragment ⟨n1,n3⟩: alpha at depth 0 (n1), beta at depth 1 (n3) → false.
        assert!(!p.eval_uncounted(&d, &frag(&d, &[1, 3])));
        // Missing either term → false (both must be present).
        assert!(!p.eval_uncounted(&d, &frag(&d, &[5]))); // only alpha
        assert!(!p.eval_uncounted(&d, &frag(&d, &[3]))); // only beta
    }

    /// The Figure 7 pattern made concrete: a super-fragment satisfies the
    /// equal-depth filter while one of its connected sub-fragments does
    /// not — witnessing that the filter is **not** anti-monotonic.
    ///
    /// ```text
    ///        r(q0)
    ///       /     \
    ///    a(q1)   d(q3)
    ///      |       |
    ///  c(q2)"k2" e(q4)"k1"
    /// ```
    ///
    /// The full tree has k1 at depth 2 and k2 at depth 2 → passes. The
    /// sub-fragment ⟨q0,q1,q2⟩ still contains k2 but no k1 → fails.
    #[test]
    fn equal_depth_counterexample_figure7() {
        let mut b = DocumentBuilder::new();
        b.begin("r"); // q0
        {
            b.begin("a"); // q1
            b.leaf("c", "k2"); // q2
            b.end();
            b.begin("d"); // q3
            b.leaf("e", "k1"); // q4
            b.end();
        }
        b.end();
        let d = b.finish().unwrap();
        let p = FilterExpr::EqualDepth("k1".into(), "k2".into());
        let full = frag(&d, &[0, 1, 2, 3, 4]);
        assert!(p.eval_uncounted(&d, &full));
        let sub = frag(&d, &[0, 1, 2]);
        assert!(sub.is_subfragment_of(&full));
        assert!(!p.eval_uncounted(&d, &sub)); // Definition 11 violated
        assert!(!p.is_anti_monotonic());
    }
}
