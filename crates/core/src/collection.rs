//! Query evaluation over document collections.
//!
//! Fragments never span documents, so a collection query is a per-document
//! query over the documents that can possibly answer it (those containing
//! every term — conjunctive semantics prune whole documents before any
//! join work). Results carry their [`DocId`] so callers can present
//! per-document groups, and ranking can be applied across the whole
//! result stream.

use crate::budget::{Breach, Degradation, DegradeMode, ExecPolicy, Governor};
use crate::cache::{CacheRef, GenerationTag, QueryCache};
use crate::cost::CostModel;
use crate::fault::{panic_message, site, FaultInjector};
use crate::planner::{
    evaluate_decided_cached_traced, evaluate_planned_cached_traced, PickCounters, PlanCache,
    StrategyChoice,
};
use crate::query::{evaluate, Query, QueryError, Strategy};
use crate::rank::{score, RankConfig};
use crate::stats::EvalStats;
use crate::trace::Tracer;
use crate::Fragment;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xfrag_doc::{Collection, DocId};

/// One document's answers within a collection result.
#[derive(Debug, Clone)]
pub struct DocAnswers {
    /// Which document.
    pub doc: DocId,
    /// Its answer fragments, in engine order.
    pub fragments: Vec<Fragment>,
}

/// The outcome of a collection query.
#[derive(Debug, Clone, Default)]
pub struct CollectionResult {
    /// Per-document answers, in document-id order; documents with no
    /// answers are omitted.
    pub answers: Vec<DocAnswers>,
    /// Documents skipped because some query term never occurs in them.
    pub docs_pruned: usize,
    /// Documents whose evaluation panicked, with the panic message.
    /// Panics are isolated per document: one poisoned document costs its
    /// own answers, never the collection result or the process.
    pub docs_failed: Vec<(DocId, String)>,
    /// Aggregated operation counters.
    pub stats: EvalStats,
}

impl CollectionResult {
    /// Total number of answer fragments across documents.
    pub fn total_fragments(&self) -> usize {
        self.answers.iter().map(|a| a.fragments.len()).sum()
    }
}

/// Evaluate a query against every candidate document of a collection.
pub fn evaluate_collection(
    collection: &Collection,
    query: &Query,
    strategy: Strategy,
) -> Result<CollectionResult, QueryError> {
    if query.terms.is_empty() {
        return Err(QueryError::NoTerms);
    }
    let mut out = CollectionResult::default();
    let candidates: Vec<DocId> = collection.candidate_docs(&query.terms).collect();
    out.docs_pruned = collection.len() - candidates.len();
    for id in candidates {
        let doc = collection.doc(id);
        let index = collection.index(id);
        let r = evaluate(doc, &index, query, strategy)?;
        out.stats += r.stats;
        if !r.fragments.is_empty() {
            out.answers.push(DocAnswers {
                doc: id,
                fragments: r.fragments.iter().cloned().collect(),
            });
        }
    }
    Ok(out)
}

/// Evaluate a collection query with document-level parallelism: candidate
/// documents are sharded across `threads` scoped workers (fragments
/// never span documents, so shards are independent). Results are merged
/// in document order — output is identical to [`evaluate_collection`],
/// which a unit test and the bench harness both verify.
pub fn evaluate_collection_parallel(
    collection: &Collection,
    query: &Query,
    strategy: Strategy,
    threads: usize,
) -> Result<CollectionResult, QueryError> {
    evaluate_collection_parallel_with_fault(collection, query, strategy, threads, None)
}

/// [`evaluate_collection_parallel`] with an optional [`FaultInjector`]
/// consulted at the [`site::COLLECTION_DOC`] site before each document.
///
/// Per-document evaluations run under `catch_unwind`: a panic while
/// evaluating one document (injected or genuine) becomes a
/// [`CollectionResult::docs_failed`] entry instead of unwinding through
/// `std::thread::scope` and aborting the caller. All other documents
/// still answer exactly.
pub fn evaluate_collection_parallel_with_fault(
    collection: &Collection,
    query: &Query,
    strategy: Strategy,
    threads: usize,
    fault: Option<&FaultInjector>,
) -> Result<CollectionResult, QueryError> {
    if query.terms.is_empty() {
        return Err(QueryError::NoTerms);
    }
    let candidates: Vec<DocId> = collection.candidate_docs(&query.terms).collect();
    let docs_pruned = collection.len() - candidates.len();
    // The sequential fast path has no isolation boundary, so it is only
    // taken when nothing can be injected.
    if (threads <= 1 || candidates.len() <= 1) && fault.is_none() {
        let mut r = evaluate_collection(collection, query, strategy)?;
        r.docs_pruned = docs_pruned;
        return Ok(r);
    }
    let threads = threads.min(candidates.len()).max(1);
    let chunk = candidates.len().div_ceil(threads).max(1);
    type ShardOut = (Vec<DocAnswers>, EvalStats, Vec<(DocId, String)>);
    let mut shard_results: Vec<Result<ShardOut, QueryError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|shard| {
                scope.spawn(move || {
                    let mut answers = Vec::new();
                    let mut stats = EvalStats::new();
                    let mut failed: Vec<(DocId, String)> = Vec::new();
                    for &id in shard {
                        // Isolation boundary: one document's panic must
                        // not take down the shard. The closure only
                        // borrows immutable state, so unwinding cannot
                        // leave broken invariants behind (AssertUnwindSafe
                        // is sound here).
                        let attempt = catch_unwind(AssertUnwindSafe(
                            || -> Result<crate::query::QueryResult, QueryError> {
                                if let Some(inj) = fault {
                                    inj.fire(site::COLLECTION_DOC)
                                        .map_err(|_| QueryError::Cancelled)?;
                                }
                                evaluate(collection.doc(id), &collection.index(id), query, strategy)
                            },
                        ));
                        match attempt {
                            Ok(Ok(r)) => {
                                stats += r.stats;
                                if !r.fragments.is_empty() {
                                    answers.push(DocAnswers {
                                        doc: id,
                                        fragments: r.fragments.iter().cloned().collect(),
                                    });
                                }
                            }
                            Ok(Err(e)) => return Err(e),
                            Err(payload) => {
                                failed.push((id, panic_message(payload.as_ref())));
                            }
                        }
                    }
                    Ok((answers, stats, failed))
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(r) => shard_results.push(r),
                // invariant: worker closures catch per-document panics;
                // resume propagates a panic outside that boundary (a bug
                // in the shard loop itself) instead of swallowing it.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let mut out = CollectionResult {
        docs_pruned,
        ..Default::default()
    };
    for r in shard_results {
        let (answers, stats, failed) = r?;
        out.stats += stats;
        out.answers.extend(answers);
        out.docs_failed.extend(failed);
    }
    out.answers.sort_by_key(|a| a.doc);
    out.docs_failed.sort_by_key(|f| f.0);
    Ok(out)
}

/// The outcome of a budgeted collection query.
#[derive(Debug, Clone, Default)]
pub struct BudgetedCollectionResult {
    /// Per-document answers, in document-id order; documents with no
    /// answers are omitted.
    pub answers: Vec<DocAnswers>,
    /// Documents skipped because some query term never occurs in them.
    pub docs_pruned: usize,
    /// Candidate documents never evaluated because the whole-collection
    /// budget ran out first.
    pub docs_skipped: usize,
    /// Documents whose evaluation panicked, with the panic message.
    /// Panic isolation is per document: the rest of the collection still
    /// answers, and the caller's process survives.
    pub docs_failed: Vec<(DocId, String)>,
    /// Documents whose answers came from a degraded ladder rung, with the
    /// per-document degradation report.
    pub degraded_docs: Vec<(DocId, Degradation)>,
    /// Aggregated operation counters.
    pub stats: EvalStats,
}

impl BudgetedCollectionResult {
    /// Total number of answer fragments across documents.
    pub fn total_fragments(&self) -> usize {
        self.answers.iter().map(|a| a.fragments.len()).sum()
    }

    /// Whether any part of the result is less than exact: a degraded
    /// per-document answer, candidate documents never reached, or
    /// documents lost to an isolated panic.
    pub fn is_degraded(&self) -> bool {
        self.docs_skipped > 0 || !self.degraded_docs.is_empty() || !self.docs_failed.is_empty()
    }
}

/// Evaluate a collection query under an [`ExecPolicy`].
///
/// Two budget scopes compose here:
///
/// * A **whole-collection** governor enforces the wall-clock deadline and
///   cancellation across documents: it is checkpointed before each
///   candidate document, and once it trips, the remaining candidates are
///   skipped (counted in
///   [`BudgetedCollectionResult::docs_skipped`]) rather than evaluated —
///   documents are independent, so the partial result is still a sound
///   subset of the exact collection answer.
/// * Each document then runs the full degradation ladder via
///   [`evaluate_budgeted`], with the policy's per-document resource caps
///   and whatever wall-clock the collection budget has left.
///
/// Cancellation aborts with [`QueryError::Cancelled`]; any other breach
/// with [`DegradeMode::Off`] aborts with [`QueryError::BudgetExceeded`].
pub fn evaluate_collection_budgeted(
    collection: &Collection,
    query: &Query,
    strategy: Strategy,
    policy: &ExecPolicy,
) -> Result<BudgetedCollectionResult, QueryError> {
    evaluate_collection_budgeted_traced(collection, query, strategy, policy, &Tracer::disabled())
}

/// [`evaluate_collection_budgeted`] with span recording: each candidate
/// document runs under a `doc:{name}` span, so the per-document ladder
/// rungs nest underneath it and the top-level `doc:` spans carry exactly
/// one document's wall-clock and counter deltas — the input to
/// [`crate::trace::LatencyHistogram::from_spans`] for collection-level
/// latency aggregation.
pub fn evaluate_collection_budgeted_traced(
    collection: &Collection,
    query: &Query,
    strategy: Strategy,
    policy: &ExecPolicy,
    tracer: &Tracer<'_>,
) -> Result<BudgetedCollectionResult, QueryError> {
    evaluate_collection_budgeted_cached_traced(collection, query, strategy, policy, tracer, None)
}

/// [`evaluate_collection_budgeted_traced`] through a [`QueryCache`].
///
/// `cache` pairs the shared cache with the [`GenerationTag`] of *this*
/// collection snapshot; each candidate document probes and fills under a
/// per-document [`CacheRef`] (cache keys carry the document id, so two
/// documents never alias). Pass `None` for the uncached path — the two
/// produce byte-identical answers, which `tests/cache_differential.rs`
/// verifies across strategies, policies, and fault plans.
pub fn evaluate_collection_budgeted_cached_traced(
    collection: &Collection,
    query: &Query,
    strategy: Strategy,
    policy: &ExecPolicy,
    tracer: &Tracer<'_>,
    cache: Option<(&QueryCache, GenerationTag)>,
) -> Result<BudgetedCollectionResult, QueryError> {
    let all: Vec<DocId> = collection.ids().collect();
    evaluate_collection_budgeted_cached_traced_routed(
        collection, query, strategy, policy, tracer, cache, &all,
    )
}

/// [`evaluate_collection_budgeted_cached_traced`] restricted to a routed
/// subset of documents — the shard-serving primitive.
///
/// Only documents in `docs` are considered; candidate pruning, the
/// collection governor, per-document budgets, panic isolation, and cache
/// interaction all behave exactly as in the whole-collection call, but
/// scoped to the subset. Because candidacy, evaluation, and stats are
/// all per-document, evaluating a partition of the collection shard by
/// shard and concatenating the results (answers and failures re-sorted
/// by [`DocId`], counters summed) reproduces the whole-collection result
/// *exactly* — `routed_partition_merges_to_whole_collection_result`
/// below and the serve-layer shard differential both pin this down.
pub fn evaluate_collection_budgeted_cached_traced_routed(
    collection: &Collection,
    query: &Query,
    strategy: Strategy,
    policy: &ExecPolicy,
    tracer: &Tracer<'_>,
    cache: Option<(&QueryCache, GenerationTag)>,
    docs: &[DocId],
) -> Result<BudgetedCollectionResult, QueryError> {
    evaluate_collection_planned_cached_traced_routed(
        collection,
        query,
        StrategyChoice::Forced(strategy),
        policy,
        tracer,
        cache,
        docs,
        None,
        None,
    )
}

/// [`evaluate_collection_budgeted_cached_traced_routed`] generalized to a
/// [`StrategyChoice`]: forced choices take exactly the legacy path, and
/// `auto` plans per (query, document) — optionally through a shared
/// [`PlanCache`] — executes under the divergence guard, and records the
/// pick distribution into `picks`.
///
/// Planning is per-document and deterministic, so the routed-partition
/// merge invariant holds for `auto` exactly as it does for forced
/// strategies: every shard picks the same strategy for a given document
/// as the whole-collection call would.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_collection_planned_cached_traced_routed(
    collection: &Collection,
    query: &Query,
    choice: StrategyChoice,
    policy: &ExecPolicy,
    tracer: &Tracer<'_>,
    cache: Option<(&QueryCache, GenerationTag)>,
    docs: &[DocId],
    plans: Option<(&PlanCache, GenerationTag)>,
    picks: Option<&PickCounters>,
) -> Result<BudgetedCollectionResult, QueryError> {
    if query.terms.is_empty() {
        return Err(QueryError::NoTerms);
    }
    let gov = Governor::new(policy.budget, policy.cancel.clone()).with_fault(policy.fault.clone());
    let candidates: Vec<DocId> = collection
        .candidate_docs(&query.terms)
        .filter(|id| docs.contains(id))
        .collect();
    let mut out = BudgetedCollectionResult {
        docs_pruned: docs.len() - candidates.len(),
        ..Default::default()
    };
    let model = CostModel::default();
    for (i, &id) in candidates.iter().enumerate() {
        match gov.checkpoint() {
            Ok(()) => {}
            Err(Breach::Cancelled) => return Err(QueryError::Cancelled),
            Err(breach) => {
                if policy.degrade == DegradeMode::Off {
                    return Err(QueryError::BudgetExceeded(breach));
                }
                out.docs_skipped = candidates.len() - i;
                break;
            }
        }
        // Per-document policy: the same resource caps, but only the
        // wall-clock the collection budget has left.
        let mut per_doc = policy.clone();
        if let Some(total) = policy.budget.wall_clock {
            per_doc.budget.wall_clock = Some(total.saturating_sub(gov.elapsed()));
        }
        // Isolation boundary: a panic while evaluating one document
        // (injected via [`site::COLLECTION_DOC`] / [`site::QUERY_EVAL`],
        // or genuine) becomes a `docs_failed` entry; the remaining
        // candidates still answer. A panic mid-span can leave the tracer
        // with an unbalanced open frame — later spans nest under it but
        // nothing breaks; untraced (serve) paths are unaffected.
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<_, QueryError> {
            gov.fault_point(site::COLLECTION_DOC)
                .map_err(|_| QueryError::Cancelled)?;
            tracer.scoped_lazy(
                || format!("doc:{}", collection.name(id)),
                &mut out.stats,
                |stats| -> Result<_, QueryError> {
                    let doc = collection.doc(id);
                    let index = collection.index(id);
                    let cache_ref = cache.map(|(cache, gen)| CacheRef {
                        cache,
                        gen,
                        doc: id.0,
                    });
                    let r = match (choice, plans) {
                        (StrategyChoice::Auto, Some((plan_cache, plan_gen))) => {
                            let mut decision = plan_cache.get_or_plan(
                                plan_gen,
                                id.0 as u64,
                                doc,
                                &index,
                                query,
                                &model,
                            );
                            let r = evaluate_decided_cached_traced(
                                doc,
                                &index,
                                query,
                                &mut decision,
                                &per_doc,
                                tracer,
                                cache_ref,
                            )?;
                            if let Some(picks) = picks {
                                picks.record(&decision);
                            }
                            r
                        }
                        _ => {
                            let (r, decision) = evaluate_planned_cached_traced(
                                doc, &index, query, choice, &per_doc, tracer, cache_ref, &model,
                            )?;
                            if let Some(picks) = picks {
                                match choice {
                                    StrategyChoice::Forced(_) => picks.record_forced(),
                                    StrategyChoice::Auto => picks.record(&decision),
                                }
                            }
                            r
                        }
                    };
                    *stats += r.stats;
                    Ok(r)
                },
            )
        }));
        let r = match attempt {
            Ok(r) => r?,
            Err(payload) => {
                out.docs_failed.push((id, panic_message(payload.as_ref())));
                continue;
            }
        };
        if r.degradation.is_degraded() {
            out.degraded_docs.push((id, r.degradation.clone()));
        }
        if !r.fragments.is_empty() {
            out.answers.push(DocAnswers {
                doc: id,
                fragments: r.fragments.iter().cloned().collect(),
            });
        }
    }
    out.stats.budget_checkpoints += gov.checkpoints_passed();
    Ok(out)
}

/// The `k` highest-scoring fragments across the whole collection, as
/// `(doc, fragment, score)` triples — ties broken by document id then
/// canonical fragment order, so output is deterministic.
pub fn top_k_collection(
    collection: &Collection,
    result: &CollectionResult,
    query: &Query,
    cfg: &RankConfig,
    k: usize,
) -> Vec<(DocId, Fragment, f64)> {
    let mut scored: Vec<(DocId, Fragment, f64)> = result
        .answers
        .iter()
        .flat_map(|da| {
            let doc = collection.doc(da.doc);
            da.fragments
                .iter()
                .map(move |f| (da.doc, f.clone(), score(doc, f, &query.terms, cfg)))
        })
        .collect();
    scored.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
            .then_with(|| a.1.cmp(&b.1))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FilterExpr;
    use xfrag_doc::parse_str;

    fn collection() -> Collection {
        let mut c = Collection::new();
        c.add(
            "one.xml",
            parse_str("<a><p>alpha beta</p><p>noise</p></a>").unwrap(),
        );
        c.add(
            "two.xml",
            parse_str("<b><p>alpha</p><p>beta</p></b>").unwrap(),
        );
        c.add("three.xml", parse_str("<c><p>alpha only</p></c>").unwrap());
        c
    }

    #[test]
    fn evaluates_candidate_docs_only() {
        let c = collection();
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let r = evaluate_collection(&c, &q, Strategy::PushDown).unwrap();
        assert_eq!(r.docs_pruned, 1, "three.xml lacks beta");
        assert_eq!(r.answers.len(), 2);
        assert!(r.total_fragments() >= 2);
        // Document order is preserved.
        assert!(r.answers[0].doc < r.answers[1].doc);
    }

    #[test]
    fn no_terms_error() {
        let c = collection();
        let q = Query::new(Vec::<&str>::new(), FilterExpr::True);
        assert!(matches!(
            evaluate_collection(&c, &q, Strategy::PushDown),
            Err(QueryError::NoTerms)
        ));
    }

    #[test]
    fn unmatched_terms_prune_everything() {
        let c = collection();
        let q = Query::new(["alpha", "zeta"], FilterExpr::True);
        let r = evaluate_collection(&c, &q, Strategy::PushDown).unwrap();
        assert_eq!(r.docs_pruned, 3);
        assert!(r.answers.is_empty());
        assert_eq!(r.stats.joins, 0);
    }

    #[test]
    fn top_k_ranks_across_documents() {
        let c = collection();
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let r = evaluate_collection(&c, &q, Strategy::PushDown).unwrap();
        // one.xml answers with the dense single ⟨p⟩; two.xml with the
        // 3-node ⟨b,p,p⟩ span: 2 fragments total.
        let top = top_k_collection(&c, &r, &q, &RankConfig::default(), 3);
        assert_eq!(top.len(), 2);
        // Highest score first; the densest answer is one.xml's single
        // ⟨p⟩ node containing both terms.
        assert!(top.windows(2).all(|w| w[0].2 >= w[1].2));
        assert_eq!(top[0].0, xfrag_doc::DocId(0));
        assert_eq!(top[0].1.size(), 1);
        // Deterministic, and k truncates.
        let again = top_k_collection(&c, &r, &q, &RankConfig::default(), 3);
        assert_eq!(top, again);
        assert_eq!(
            top_k_collection(&c, &r, &q, &RankConfig::default(), 1).len(),
            1
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut c = Collection::new();
        for i in 0..12 {
            c.add(
                format!("d{i}.xml"),
                parse_str(&format!("<r><p>alpha item{i}</p><p>beta item{i}</p></r>")).unwrap(),
            );
        }
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let seq = evaluate_collection(&c, &q, Strategy::PushDown).unwrap();
        for threads in [1, 2, 4, 5] {
            let par = evaluate_collection_parallel(&c, &q, Strategy::PushDown, threads).unwrap();
            assert_eq!(par.answers.len(), seq.answers.len(), "threads={threads}");
            for (a, b) in par.answers.iter().zip(&seq.answers) {
                assert_eq!(a.doc, b.doc);
                assert_eq!(a.fragments, b.fragments);
            }
            assert_eq!(par.stats.joins, seq.stats.joins);
            assert_eq!(par.docs_pruned, seq.docs_pruned);
        }
    }

    #[test]
    fn budgeted_tracing_groups_spans_per_document() {
        use crate::trace::{LatencyHistogram, RecordingSink, Tracer};
        let c = collection();
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let plain =
            evaluate_collection_budgeted(&c, &q, Strategy::PushDown, &ExecPolicy::unlimited())
                .unwrap();

        let sink = RecordingSink::new();
        let tracer = Tracer::new(&sink);
        let traced = evaluate_collection_budgeted_traced(
            &c,
            &q,
            Strategy::PushDown,
            &ExecPolicy::unlimited(),
            &tracer,
        )
        .unwrap();
        assert_eq!(traced.answers.len(), plain.answers.len());
        assert_eq!(traced.stats.joins, plain.stats.joins);

        let spans = sink.take();
        // One top-level span per candidate document (three.xml is pruned),
        // each with the per-document ladder nested underneath.
        let doc_spans: Vec<_> = spans
            .iter()
            .filter(|s| s.stage.starts_with("doc:"))
            .collect();
        assert_eq!(doc_spans.len(), 2);
        assert!(doc_spans.iter().any(|s| s.stage == "doc:one.xml"));
        assert!(doc_spans
            .iter()
            .all(|s| s.children.iter().any(|c| c.stage.starts_with("rung:"))));
        let hist = LatencyHistogram::from_spans(doc_spans.iter().copied());
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn parallel_isolates_injected_panic_to_one_document() {
        use crate::fault::{FaultAction, FaultPlan};
        let mut c = Collection::new();
        for i in 0..6 {
            c.add(
                format!("d{i}.xml"),
                parse_str(&format!("<r><p>alpha item{i}</p><p>beta item{i}</p></r>")).unwrap(),
            );
        }
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let clean = evaluate_collection_parallel(&c, &q, Strategy::PushDown, 3).unwrap();
        assert!(clean.docs_failed.is_empty());

        // Panic while evaluating the third candidate document: the
        // process (and the evaluation) must survive with exactly one
        // failure entry and every other document's exact answers.
        let inj = FaultPlan::new()
            .arm(site::COLLECTION_DOC, 2, FaultAction::Panic)
            .build();
        let r = evaluate_collection_parallel_with_fault(
            &c,
            &q,
            Strategy::PushDown,
            3,
            Some(inj.as_ref()),
        )
        .unwrap();
        assert_eq!(r.docs_failed.len(), 1, "{:?}", r.docs_failed);
        assert!(r.docs_failed[0].1.contains(crate::fault::PANIC_MARKER));
        assert_eq!(r.answers.len(), clean.answers.len() - 1);
        let failed = r.docs_failed[0].0;
        for a in &r.answers {
            assert_ne!(a.doc, failed);
            let exact = clean.answers.iter().find(|b| b.doc == a.doc).unwrap();
            assert_eq!(a.fragments, exact.fragments);
        }
    }

    #[test]
    fn parallel_with_fault_isolates_even_single_threaded() {
        use crate::fault::{FaultAction, FaultPlan};
        let mut c = Collection::new();
        for i in 0..3 {
            c.add(
                format!("d{i}.xml"),
                parse_str(&format!("<r><p>alpha beta {i}</p></r>")).unwrap(),
            );
        }
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(2));
        let inj = FaultPlan::new()
            .arm(site::COLLECTION_DOC, 0, FaultAction::Panic)
            .build();
        let r = evaluate_collection_parallel_with_fault(
            &c,
            &q,
            Strategy::PushDown,
            1,
            Some(inj.as_ref()),
        )
        .unwrap();
        assert_eq!(r.docs_failed.len(), 1);
        assert_eq!(r.answers.len(), 2);
    }

    #[test]
    fn budgeted_isolates_injected_panic_and_reports_failure() {
        use crate::fault::{FaultAction, FaultPlan};
        let c = collection();
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let clean =
            evaluate_collection_budgeted(&c, &q, Strategy::PushDown, &ExecPolicy::unlimited())
                .unwrap();
        assert_eq!(clean.answers.len(), 2);
        assert!(!clean.is_degraded());

        let inj = FaultPlan::new()
            .arm(site::COLLECTION_DOC, 0, FaultAction::Panic)
            .build();
        let policy = ExecPolicy::unlimited().with_fault(inj);
        let r = evaluate_collection_budgeted(&c, &q, Strategy::PushDown, &policy).unwrap();
        assert_eq!(r.docs_failed.len(), 1);
        assert!(r.docs_failed[0].1.contains(crate::fault::PANIC_MARKER));
        assert!(r.is_degraded());
        // The surviving document answers exactly as in the clean run.
        assert_eq!(r.answers.len(), 1);
        let exact = clean
            .answers
            .iter()
            .find(|a| a.doc == r.answers[0].doc)
            .unwrap();
        assert_eq!(r.answers[0].fragments, exact.fragments);
    }

    #[test]
    fn budgeted_fault_cancel_aborts_like_a_cancel_token() {
        use crate::fault::{FaultAction, FaultPlan};
        let c = collection();
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let inj = FaultPlan::new()
            .arm(site::COLLECTION_DOC, 1, FaultAction::Cancel)
            .build();
        let policy = ExecPolicy::unlimited().with_fault(inj);
        assert!(matches!(
            evaluate_collection_budgeted(&c, &q, Strategy::PushDown, &policy),
            Err(QueryError::Cancelled)
        ));
    }

    #[test]
    fn budgeted_query_eval_fault_panics_are_isolated_per_document() {
        use crate::fault::{FaultAction, FaultPlan};
        let c = collection();
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        // The panic fires inside evaluate_budgeted (query:eval site), a
        // layer below the per-document boundary — still isolated.
        let inj = FaultPlan::new()
            .arm(crate::fault::site::QUERY_EVAL, 1, FaultAction::Panic)
            .build();
        let policy = ExecPolicy::unlimited().with_fault(inj);
        let r = evaluate_collection_budgeted(&c, &q, Strategy::PushDown, &policy).unwrap();
        assert_eq!(r.docs_failed.len(), 1);
        assert_eq!(r.answers.len(), 1);
    }

    #[test]
    fn routed_partition_merges_to_whole_collection_result() {
        // The shard-serving invariant: evaluating any partition of the
        // doc set shard by shard and merging reproduces the
        // whole-collection result exactly — answers, failure lists,
        // pruning counts, and stats.
        let mut c = Collection::new();
        for i in 0..9 {
            let body = if i % 3 == 0 {
                format!("<r><p>alpha beta {i}</p><p>noise</p></r>")
            } else {
                format!("<r><p>alpha only {i}</p></r>")
            };
            c.add(format!("d{i}.xml"), parse_str(&body).unwrap());
        }
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let policy = ExecPolicy::unlimited();
        let tracer = Tracer::disabled();
        let whole = evaluate_collection_budgeted_cached_traced(
            &c,
            &q,
            Strategy::PushDown,
            &policy,
            &tracer,
            None,
        )
        .unwrap();

        for shards in [1usize, 2, 3, 4] {
            let mut parts: Vec<Vec<DocId>> = vec![Vec::new(); shards];
            for id in c.ids() {
                parts[id.0 as usize % shards].push(id);
            }
            let mut merged = BudgetedCollectionResult::default();
            for part in &parts {
                let r = evaluate_collection_budgeted_cached_traced_routed(
                    &c,
                    &q,
                    Strategy::PushDown,
                    &policy,
                    &tracer,
                    None,
                    part,
                )
                .unwrap();
                merged.answers.extend(r.answers);
                merged.docs_failed.extend(r.docs_failed);
                merged.degraded_docs.extend(r.degraded_docs);
                merged.docs_pruned += r.docs_pruned;
                merged.docs_skipped += r.docs_skipped;
                merged.stats += r.stats;
            }
            merged.answers.sort_by_key(|a| a.doc);
            merged.docs_failed.sort_by_key(|f| f.0);

            assert_eq!(merged.docs_pruned, whole.docs_pruned, "shards={shards}");
            assert_eq!(merged.docs_skipped, whole.docs_skipped);
            assert_eq!(merged.answers.len(), whole.answers.len());
            for (a, b) in merged.answers.iter().zip(&whole.answers) {
                assert_eq!(a.doc, b.doc, "shards={shards}");
                assert_eq!(a.fragments, b.fragments, "shards={shards}");
            }
            assert_eq!(merged.stats.joins, whole.stats.joins);
            assert_eq!(
                merged.stats.fragments_emitted,
                whole.stats.fragments_emitted
            );
            assert_eq!(
                merged.stats.budget_checkpoints, whole.stats.budget_checkpoints,
                "one checkpoint per candidate either way (shards={shards})"
            );
        }
    }

    #[test]
    fn empty_collection_yields_empty_result() {
        let c = Collection::new();
        let q = Query::new(["alpha"], FilterExpr::True);
        let r = evaluate_collection(&c, &q, Strategy::PushDown).unwrap();
        assert!(r.answers.is_empty());
        assert_eq!(r.docs_pruned, 0);
    }
}
