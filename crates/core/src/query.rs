//! Keyword queries and the evaluation strategies of §4.
//!
//! A query `Q_P{k1,…,km}` (Definition 7) is evaluated as
//! `σ_P(F1 ⋈* F2 ⋈* … ⋈* Fm)` where `Fi = σ_{keyword=ki}(nodes(D))`
//! (§2.3 gives the two-keyword case; the m-ary form is well-defined
//! because powerset join is associative and commutative, and by the same
//! argument as Theorem 2 it equals the pairwise-join fold of the operand
//! fixed points `F1⁺ ⋈ … ⋈ Fm⁺`). For `m = 1` this degenerates to
//! `σ_P(F1⁺)`.
//!
//! Four strategies implement the same semantics:
//!
//! | Strategy | Paper section | Mechanism |
//! |---|---|---|
//! | [`Strategy::BruteForce`] | §4.1 | literal subset enumeration, post-filter |
//! | [`Strategy::FixedPointNaive`] | §3.1.1 | `Fi⁺` with per-round stabilization checks |
//! | [`Strategy::FixedPointReduced`] | §3.1.2/§4.2 | Theorem 1: `|⊖(Fi)|` rounds, no checks |
//! | [`Strategy::PushDown`] | §3.2/§4.3 | Theorem 3: anti-monotonic selection below every join |
//!
//! All four must return identical fragment sets — the test-suite and a
//! proptest enforce it. They differ (dramatically) in work performed,
//! which [`crate::EvalStats`] exposes.

use crate::budget::{Breach, Degradation, DegradeMode, ExecPolicy, Governor, Rung, TOP_CANDIDATES};
use crate::cache::{CacheRef, ResultKey};
use crate::filter::{select, FilterExpr};
use crate::fixpoint::{
    fixed_point_memo_traced, fixed_point_naive_traced, fixed_point_reduced_traced, reduce,
    reduce_traced, FixpointMode,
};
use crate::join::{
    fragment_join_many, pairwise_join_governed, pairwise_join_traced, PowersetTooLarge,
};
use crate::nav::Nav;
use crate::set::FragmentSet;
use crate::stats::EvalStats;
use crate::trace::Tracer;
use serde::{Deserialize, Serialize};
use xfrag_doc::text::normalize_term;
use xfrag_doc::{Document, PostingsSource};

/// A keyword query with a selection predicate (Definition 7).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Normalized query terms `k1 … km` (conjunctive semantics).
    pub terms: Vec<String>,
    /// The selection predicate `P`.
    pub filter: FilterExpr,
    /// Enforce Definition 8's letter: every keyword must occur in a *leaf*
    /// of the answer fragment. The paper's operational formula
    /// `σ_P(F1 ⋈* F2)` can produce fragments where a keyword node became
    /// internal (e.g. joining a node with its own descendant); strict mode
    /// post-filters those out. Off by default, matching §4's worked example.
    pub strict_leaf_semantics: bool,
}

impl Query {
    /// Build a query from raw terms; terms are normalized like document
    /// text, empty ones dropped, and duplicates removed (first occurrence
    /// wins). `Q{k, k} = Q{k}` — the powerset join of a set with itself
    /// adds no answers, only work — so deduplication preserves semantics
    /// while avoiding a redundant join over identical operands.
    pub fn new(terms: impl IntoIterator<Item = impl AsRef<str>>, filter: FilterExpr) -> Self {
        let mut deduped: Vec<String> = Vec::new();
        for t in terms {
            if let Some(norm) = normalize_term(t.as_ref()) {
                if !deduped.contains(&norm) {
                    deduped.push(norm);
                }
            }
        }
        Query {
            terms: deduped,
            filter,
            strict_leaf_semantics: false,
        }
    }

    /// Parse a whitespace-separated keyword string.
    pub fn parse(input: &str, filter: FilterExpr) -> Self {
        Self::new(input.split_whitespace(), filter)
    }

    /// Enable Definition 8's strict keyword-in-leaf requirement.
    pub fn with_strict_leaf_semantics(mut self) -> Self {
        self.strict_leaf_semantics = true;
        self
    }
}

/// The §4 evaluation strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// §4.1: powerset join by literal subset enumeration, filter last.
    /// Exponential; refuses operands larger than
    /// [`crate::POWERSET_LIMIT`].
    BruteForce,
    /// §3.1.1: fixed points by iteration with stabilization checks.
    FixedPointNaive,
    /// §4.2: Theorem 1 — pre-compute `|⊖(F)|`, skip stabilization checks.
    FixedPointReduced,
    /// §4.3: Theorem 3 — push the anti-monotonic part of the filter below
    /// all joins (and inside fixed-point iteration); evaluate the residual
    /// part at the top.
    PushDown,
}

impl Strategy {
    /// All strategies, in paper order.
    pub const ALL: [Strategy; 4] = [
        Strategy::BruteForce,
        Strategy::FixedPointNaive,
        Strategy::FixedPointReduced,
        Strategy::PushDown,
    ];

    /// Short stable name for tables and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::BruteForce => "brute-force",
            Strategy::FixedPointNaive => "fixpoint-naive",
            Strategy::FixedPointReduced => "fixpoint-reduced",
            Strategy::PushDown => "push-down",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "brute-force" | "brute" => Ok(Strategy::BruteForce),
            "fixpoint-naive" | "naive" => Ok(Strategy::FixedPointNaive),
            "fixpoint-reduced" | "reduced" => Ok(Strategy::FixedPointReduced),
            "push-down" | "pushdown" => Ok(Strategy::PushDown),
            other => Err(format!(
                "unknown strategy {other:?} (expected brute-force, fixpoint-naive, fixpoint-reduced or push-down)"
            )),
        }
    }
}

/// The outcome of evaluating a query: the answer set `A` plus the work
/// accounting that the paper's efficiency arguments are about.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The answer fragments.
    pub fragments: FragmentSet,
    /// Operation counters accumulated during evaluation.
    pub stats: EvalStats,
    /// How (or whether) the evaluation degraded under a budget. Always
    /// [`Degradation::none`] for unbudgeted evaluation.
    pub degradation: Degradation,
}

/// Errors surfaced by query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query contained no usable terms after normalization.
    NoTerms,
    /// Brute force was asked to enumerate an oversized powerset.
    PowersetTooLarge(PowersetTooLarge),
    /// The evaluation's [`crate::CancelToken`] was triggered. Cancellation
    /// never degrades: a cancelled caller wants no answer at all.
    Cancelled,
    /// A budget tripped and degradation was [`DegradeMode::Off`].
    BudgetExceeded(Breach),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NoTerms => write!(f, "query has no terms"),
            QueryError::PowersetTooLarge(e) => write!(f, "{e}"),
            QueryError::Cancelled => write!(f, "query cancelled"),
            QueryError::BudgetExceeded(b) => {
                write!(f, "budget exceeded ({b}) and degradation is off")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PowersetTooLarge> for QueryError {
    fn from(e: PowersetTooLarge) -> Self {
        QueryError::PowersetTooLarge(e)
    }
}

// invariant (used wherever an unlimited governor drives a governed
// kernel): an unlimited governor has no limits, no deadline and no cancel
// token, so no charge can ever breach.
fn unbreachable<T>(r: Result<T, Breach>) -> T {
    match r {
        Ok(v) => v,
        Err(_) => unreachable!("unlimited governor breached"),
    }
}

/// Evaluate `query` over `doc` using `index` for the keyword selections.
///
/// Generic over [`PostingsSource`]: the same engine runs off an
/// in-memory [`xfrag_doc::InvertedIndex`] (tree-walk navigation) or a
/// persistent [`xfrag_doc::SegmentIndex`] / collection handle, in which
/// case postings are lazily materialized and structural arithmetic uses
/// the segment's prefix labels. Both paths return identical fragments —
/// the indexed differential suite proves it across every strategy.
pub fn evaluate<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    query: &Query,
    strategy: Strategy,
) -> Result<QueryResult, QueryError> {
    evaluate_traced(doc, index, query, strategy, &Tracer::disabled())
}

/// Build one operand set `Fi = σ_{keyword=ki}(nodes(D))` from a postings
/// source, recording an `index:load:{term}` span when the lookup lazily
/// materializes a posting list out of a persistent segment.
pub(crate) fn term_operand<I: PostingsSource + ?Sized>(
    index: &I,
    term: &str,
    tracer: &Tracer<'_>,
    stats: &mut EvalStats,
) -> FragmentSet {
    if index.needs_load(term) {
        tracer.scoped_lazy(
            || format!("index:load:{term}"),
            stats,
            |_| FragmentSet::of_nodes(index.postings(term).iter().copied()),
        )
    } else {
        FragmentSet::of_nodes(index.postings(term).iter().copied())
    }
}

/// [`evaluate`] with span recording: one `term-lookup:{term}` span per
/// keyword selection (with an `index:load:{term}` child when the posting
/// list is decoded from a segment), then the strategy's own span tree
/// (fixpoints with per-round children, joins, the final `select-top`).
pub fn evaluate_traced<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    query: &Query,
    strategy: Strategy,
    tracer: &Tracer<'_>,
) -> Result<QueryResult, QueryError> {
    let nav = Nav::new(doc, index.labels());
    // Fi = σ_{keyword=ki}(nodes(D)) — single-node fragments.
    let mut lookup_stats = EvalStats::new();
    let operands: Vec<FragmentSet> = query
        .terms
        .iter()
        .map(|t| {
            tracer.scoped_lazy(
                || format!("term-lookup:{t}"),
                &mut lookup_stats,
                |stats| term_operand(index, t, tracer, stats),
            )
        })
        .collect();
    evaluate_operands_traced(nav, query, strategy, &operands, tracer)
}

/// Strategy dispatch over pre-built operand sets (shared by [`evaluate`]
/// and the scoped/hybrid entry point).
pub(crate) fn evaluate_operands(
    nav: Nav<'_>,
    query: &Query,
    strategy: Strategy,
    operands: &[FragmentSet],
) -> Result<QueryResult, QueryError> {
    evaluate_operands_traced(nav, query, strategy, operands, &Tracer::disabled())
}

/// Traced strategy dispatch over pre-built operand sets.
pub(crate) fn evaluate_operands_traced(
    nav: Nav<'_>,
    query: &Query,
    strategy: Strategy,
    operands: &[FragmentSet],
    tracer: &Tracer<'_>,
) -> Result<QueryResult, QueryError> {
    if query.terms.is_empty() {
        return Err(QueryError::NoTerms);
    }
    let doc = nav.doc();
    let mut stats = EvalStats::new();

    // Conjunctive semantics: a term with no occurrences empties the answer.
    if operands.iter().any(FragmentSet::is_empty) {
        return Ok(QueryResult {
            fragments: FragmentSet::new(),
            stats,
            degradation: Degradation::none(),
        });
    }

    let gov = Governor::unlimited();
    let raw = match strategy {
        Strategy::BruteForce => tracer.scoped("brute-force", &mut stats, |stats| {
            brute_force(nav, operands, stats)
        })?,
        Strategy::FixedPointNaive => {
            let fps: Vec<FragmentSet> = operands
                .iter()
                .map(|f| unbreachable(fixed_point_naive_traced(nav, f, &mut stats, &gov, tracer)))
                .collect();
            unbreachable(fold_pairwise_traced(nav, fps, &mut stats, &gov, tracer))
        }
        Strategy::FixedPointReduced => {
            let fps: Vec<FragmentSet> = operands
                .iter()
                .map(|f| unbreachable(fixed_point_reduced_traced(nav, f, &mut stats, &gov, tracer)))
                .collect();
            unbreachable(fold_pairwise_traced(nav, fps, &mut stats, &gov, tracer))
        }
        Strategy::PushDown => {
            let (anti, _rest) = query.filter.split_anti_monotonic();
            let fps: Vec<FragmentSet> = operands
                .iter()
                .map(|f| {
                    tracer.scoped("push-down-operand", &mut stats, |stats| {
                        let base = select(doc, &anti, f, stats);
                        unbreachable(filtered_fixed_point_traced(
                            nav, &base, &anti, stats, &gov, tracer,
                        ))
                    })
                })
                .collect();
            let mut acc: Option<FragmentSet> = None;
            for fp in fps {
                acc = Some(match acc {
                    None => fp,
                    Some(prev) => {
                        let joined = unbreachable(pairwise_join_traced(
                            nav, &prev, &fp, &mut stats, &gov, tracer,
                        ));
                        select(doc, &anti, &joined, &mut stats)
                    }
                });
            }
            // invariant: terms (hence operands) are non-empty — checked at
            // function entry — so the fold assigned Some at least once.
            acc.expect("at least one operand")
        }
    };

    // Top-level selection σ_P — for PushDown this re-checks the
    // anti-monotonic part (already guaranteed) and applies the residual.
    let fragments = tracer.scoped("select-top", &mut stats, |stats| {
        let mut fragments = select(doc, &query.filter, &raw, stats);
        if query.strict_leaf_semantics {
            let strict =
                FilterExpr::and(query.terms.iter().map(|t| FilterExpr::LeafTerm(t.clone())));
            fragments = select(doc, &strict, &fragments, stats);
        }
        fragments
    });
    Ok(QueryResult {
        fragments,
        stats,
        degradation: Degradation::none(),
    })
}

/// Evaluate `query` under an [`ExecPolicy`]: resource budgets, cooperative
/// cancellation, and — when the budget trips — the graceful-degradation
/// ladder.
///
/// The ladder runs the rungs of [`Rung`] in order, all charging one shared
/// [`Governor`] (so later rungs only get the budget earlier rungs left
/// over), and returns the first rung that completes:
///
/// 1. **full** — the requested strategy, governed.
/// 2. **reduced-sets** — fixed points over `⊖(Fi)` (Definition 10).
///    `⊖(F) ⊆ F` and the fixed point and pairwise join are monotone, so
///    the fold over reduced operands is a subset of the exact raw set.
/// 3. **top-candidates** — each operand truncated to its first
///    [`TOP_CANDIDATES`] fragments, one pairwise fold, no fixed points.
///    Every output is the join of one fragment per operand — a powerset
///    join candidate, hence in the exact raw set.
/// 4. **slca-approx** — one answer per smallest-LCA node, ungoverned and
///    linear in document size, so the ladder always terminates with an
///    answer.
///
/// All rungs pass their raw set through the query's selection `σ_P`, so
/// every returned fragment satisfies the predicate: each rung yields a
/// **sound subset** of the exact answer. [`QueryResult::degradation`]
/// reports which rung answered and what each abandoned rung spent.
///
/// Cancellation ([`Breach::Cancelled`]) never degrades — it surfaces as
/// [`QueryError::Cancelled`]. With [`DegradeMode::Off`], the first breach
/// surfaces as [`QueryError::BudgetExceeded`].
pub fn evaluate_budgeted<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    query: &Query,
    strategy: Strategy,
    policy: &ExecPolicy,
) -> Result<QueryResult, QueryError> {
    evaluate_budgeted_traced(doc, index, query, strategy, policy, &Tracer::disabled())
}

/// [`evaluate_budgeted`] with span recording: every ladder rung that runs
/// opens a `rung:{name}` span (named after [`Rung::name`]), so a profile
/// shows exactly where the budget went before the answering rung — an
/// abandoned rung's span ends at the moment its budget tripped.
pub fn evaluate_budgeted_traced<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    query: &Query,
    strategy: Strategy,
    policy: &ExecPolicy,
    tracer: &Tracer<'_>,
) -> Result<QueryResult, QueryError> {
    evaluate_budgeted_cached_traced(doc, index, query, strategy, policy, tracer, None)
}

/// [`evaluate_budgeted_traced`] through a [`crate::QueryCache`].
///
/// With `cache: None` this is exactly the uncached path. With a cache:
///
/// 1. **Tier (c)** — probe the full-result cache under the normalized
///    [`ResultKey`] (sorted terms, filter fingerprint, strategy, policy
///    fingerprint, achieved rung). A hit is charged to a governor
///    built from the policy — a cancelled token still aborts, an armed
///    `query:eval` fault still fires, and a pre-expired deadline makes
///    the hit unservable (falls through to normal evaluation, which
///    degrades or times out exactly as an uncached run would). Served
///    hits replay the stored compute [`EvalStats`], so cached and
///    uncached evaluation report identical non-cache counters.
/// 2. **Tier (a)** — operand sets come from the postings cache; misses
///    compute and fill. Postings construction is ungoverned, so this
///    tier is sound under every policy.
/// 3. **Tier (b)** — fixed points are memoized only when the policy has
///    no work limits, wall clock, or cancel token: a fixpoint hit skips
///    governor charges, which under a limited budget would change where
///    the budget trips.
pub fn evaluate_budgeted_cached_traced<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    query: &Query,
    strategy: Strategy,
    policy: &ExecPolicy,
    tracer: &Tracer<'_>,
    cache: Option<CacheRef<'_>>,
) -> Result<QueryResult, QueryError> {
    evaluate_budgeted_cached_guarded_traced(
        doc, index, query, strategy, policy, tracer, cache, None,
    )
}

/// [`evaluate_budgeted_cached_traced`] with an optional planner *guard*
/// budget (see [`crate::planner`]).
///
/// The guard only replaces the [`Governor`]'s work caps; cache keys, the
/// tier gates and the result's policy fingerprint all still come from
/// `policy`, so a guarded run that completes is byte-identical to an
/// unguarded one. When the guard trips, the run aborts with
/// [`QueryError::BudgetExceeded`] at the breaching charge instead of
/// walking the degradation ladder — the planner treats that as "actuals
/// diverged from estimates" and re-plans with the conservative strategy.
/// Callers must only arm a guard under an unlimited, non-cancellable
/// `policy` (the planner's arming condition), where a breach can only
/// mean guard divergence.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_budgeted_cached_guarded_traced<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    query: &Query,
    strategy: Strategy,
    policy: &ExecPolicy,
    tracer: &Tracer<'_>,
    cache: Option<CacheRef<'_>>,
    guard: Option<&crate::budget::Budget>,
) -> Result<QueryResult, QueryError> {
    if query.terms.is_empty() {
        return Err(QueryError::NoTerms);
    }
    let nav = Nav::new(doc, index.labels());
    let key = cache
        .as_ref()
        .map(|c| ResultKey::new(c.gen, c.doc, query, strategy, policy));
    if let (Some(c), Some(key)) = (&cache, &key) {
        if let Some(entry) = c.cache.get_result(key) {
            let gov = Governor::new(policy.budget, policy.cancel.clone())
                .with_fault(policy.fault.clone());
            match gov.checkpoint() {
                Ok(()) => {
                    // Mirror the single fault point a computed run fires.
                    if gov.fault_point(crate::fault::site::QUERY_EVAL).is_err() {
                        return Err(QueryError::Cancelled);
                    }
                    let mut stats = EvalStats::new();
                    tracer.scoped("cache:result-hit", &mut stats, |stats| {
                        *stats += entry.stats;
                        stats.cache_hits += 1;
                    });
                    return Ok(QueryResult {
                        fragments: entry.fragments,
                        stats,
                        degradation: entry.degradation,
                    });
                }
                Err(Breach::Cancelled) => return Err(QueryError::Cancelled),
                // Deadline already gone: the entry is not servable under
                // this request's budget charge — recompute below.
                Err(_) => {}
            }
        }
    }

    let mut lookup_stats = EvalStats::new();
    let operands: Vec<FragmentSet> = query
        .terms
        .iter()
        .map(|t| {
            tracer.scoped_lazy(
                || format!("term-lookup:{t}"),
                &mut lookup_stats,
                |stats| match &cache {
                    Some(c) => match c.cache.get_postings(c.gen, c.doc, t) {
                        Some(set) => {
                            stats.cache_hits += 1;
                            set
                        }
                        None => {
                            stats.cache_misses += 1;
                            let set = term_operand(index, t, tracer, stats);
                            c.cache.put_postings(c.gen, c.doc, t, &set);
                            set
                        }
                    },
                    None => term_operand(index, t, tracer, stats),
                },
            )
        })
        .collect();

    // Tier (b) gate — see the doc comment above. Deliberately reads the
    // caller's `policy`, not the guard: the guard must not change what
    // gets cached or under which keys.
    let tier_b = cache.filter(|_| !policy.budget.is_limited() && policy.cancel.is_none());
    let mut result = evaluate_operands_budgeted_traced(
        nav, query, strategy, &operands, policy, tracer, tier_b, guard,
    )?;
    result.stats.cache_hits += lookup_stats.cache_hits;
    result.stats.cache_misses += lookup_stats.cache_misses;
    if let (Some(c), Some(key)) = (&cache, &key) {
        result.stats.cache_misses += 1; // this evaluation did not reuse a result
                                        // Empty-operand short-circuits are not cached: recomputing them
                                        // costs one postings lookup, and keeping them out preserves
                                        // exact fault-injection parity (the short-circuit path fires no
                                        // `query:eval` fault point; the hit path does).
        if !operands.iter().any(FragmentSet::is_empty) {
            c.cache.put_result(key, &result);
        }
    }
    Ok(result)
}

/// Traced budgeted strategy dispatch over pre-built operand sets.
///
/// `cache` (when present) memoizes per-term fixed points — callers are
/// responsible for the tier (b) gate: pass `Some` only under unlimited,
/// non-cancellable policies (see [`evaluate_budgeted_cached_traced`]).
///
/// `guard` (when present) replaces the governor's budget with the
/// planner's divergence guard; a breach then aborts instead of
/// degrading (see [`evaluate_budgeted_cached_guarded_traced`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_operands_budgeted_traced(
    nav: Nav<'_>,
    query: &Query,
    strategy: Strategy,
    operands: &[FragmentSet],
    policy: &ExecPolicy,
    tracer: &Tracer<'_>,
    cache: Option<CacheRef<'_>>,
    guard: Option<&crate::budget::Budget>,
) -> Result<QueryResult, QueryError> {
    if query.terms.is_empty() {
        return Err(QueryError::NoTerms);
    }
    let doc = nav.doc();
    let mut stats = EvalStats::new();

    // Conjunctive semantics: a term with no occurrences empties the answer.
    if operands.iter().any(FragmentSet::is_empty) {
        return Ok(QueryResult {
            fragments: FragmentSet::new(),
            stats,
            degradation: Degradation::none(),
        });
    }

    let gov = Governor::new(
        guard.copied().unwrap_or(policy.budget),
        policy.cancel.clone(),
    )
    .with_fault(policy.fault.clone());
    // Fault-injection point: an armed `query:eval` site can panic, stall,
    // or cancel this evaluation before any rung runs.
    if gov.fault_point(crate::fault::site::QUERY_EVAL).is_err() {
        return Err(QueryError::Cancelled);
    }
    let mut trips: Vec<(Rung, Breach)> = Vec::new();
    let mut truncated_fragments = 0u64;

    // Rung 0: the requested strategy, governed.
    let attempt = tracer.scoped_lazy(
        || format!("rung:{}", Rung::Full.name()),
        &mut stats,
        |stats| strategy_raw_traced(nav, query, strategy, operands, stats, &gov, tracer, cache),
    );
    let mut raw = match attempt {
        Ok(raw) => Some(raw),
        // A tripped planner guard is a divergence signal, not a resource
        // limit: surface it at this checkpoint so the planner can re-plan
        // under the caller's real (unlimited) policy — the ladder's
        // partial answers are never acceptable substitutes here.
        Err(breach) if guard.is_some() => {
            return Err(QueryError::BudgetExceeded(breach));
        }
        Err(breach) => {
            handle_breach(Rung::Full, breach, policy, &mut trips)?;
            None
        }
    };

    // Rung 1: fixed points over the reduced operand sets ⊖(Fi).
    if raw.is_none() {
        let attempt = tracer.scoped_lazy(
            || format!("rung:{}", Rung::ReducedSets.name()),
            &mut stats,
            |stats| {
                let fps: Vec<FragmentSet> = operands
                    .iter()
                    .map(|f| {
                        let reduced = reduce_traced(nav, f, stats, &gov, tracer)?;
                        // An unbounded governor (reachable here via a
                        // PowersetLimit trip with no budget set) cannot stop
                        // a closure blow-up, and Theorem 2 says |F⁺| can
                        // reach the powerset size — so apply the literal
                        // enumeration's own guard.
                        if !gov.is_work_bounded() && reduced.len() > crate::join::POWERSET_LIMIT {
                            return Err(Breach::PowersetLimit);
                        }
                        fixed_point_naive_traced(nav, &reduced, stats, &gov, tracer)
                    })
                    .collect::<Result<_, Breach>>()?;
                fold_pairwise_traced(nav, fps, stats, &gov, tracer)
            },
        );
        match attempt {
            Ok(r) => raw = Some(r),
            Err(breach) => handle_breach(Rung::ReducedSets, breach, policy, &mut trips)?,
        }
    }

    // Rung 2: truncate operands, single pairwise fold, no fixed points.
    if raw.is_none() {
        let attempt = tracer.scoped_lazy(
            || format!("rung:{}", Rung::TopCandidates.name()),
            &mut stats,
            |stats| {
                let mut truncated = 0u64;
                let tops: Vec<FragmentSet> = operands
                    .iter()
                    .map(|f| {
                        let keep: Vec<_> = f.iter().take(TOP_CANDIDATES).cloned().collect();
                        truncated += (f.len().saturating_sub(keep.len())) as u64;
                        FragmentSet::from_iter(keep)
                    })
                    .collect();
                fold_pairwise_traced(nav, tops, stats, &gov, tracer).map(|r| (r, truncated))
            },
        );
        match attempt {
            Ok((r, truncated)) => {
                truncated_fragments = truncated;
                raw = Some(r);
            }
            Err(breach) => handle_breach(Rung::TopCandidates, breach, policy, &mut trips)?,
        }
    }

    // Rung 3: SLCA approximation — ungoverned, always answers.
    let raw = match raw {
        Some(r) => r,
        None => tracer.scoped_lazy(
            || format!("rung:{}", Rung::SlcaApprox.name()),
            &mut stats,
            |stats| slca_approximation(nav, operands, stats),
        ),
    };
    // Each trip abandoned one rung; the answer came from the next one.
    let rung = match trips.len() {
        0 => None,
        n => Some(Rung::ALL[n.min(Rung::ALL.len() - 1)]),
    };

    // Shared tail: top-level selection σ_P plus strict leaf semantics.
    let fragments = tracer.scoped("select-top", &mut stats, |stats| {
        let mut fragments = select(doc, &query.filter, &raw, stats);
        if query.strict_leaf_semantics {
            let strict =
                FilterExpr::and(query.terms.iter().map(|t| FilterExpr::LeafTerm(t.clone())));
            fragments = select(doc, &strict, &fragments, stats);
        }
        fragments
    });

    // `+=`, not `=`: fixpoint-cache hits replay the checkpoints their
    // original computation passed (see `fixed_point_memo_traced`), and
    // those replays land in `stats` before this line.
    stats.budget_checkpoints += gov.checkpoints_passed();
    let degradation = match rung {
        None => Degradation::none(),
        Some(rung) => Degradation {
            rung: Some(rung),
            trips,
            truncated_fragments,
            joins_spent: gov.joins_spent(),
            fragments_spent: gov.fragments_spent(),
            nodes_spent: gov.nodes_spent(),
            elapsed: gov.elapsed(),
        },
    };
    Ok(QueryResult {
        fragments,
        stats,
        degradation,
    })
}

/// Record a breach and keep walking the ladder — or surface it as an
/// error when it is a cancellation (never degraded) or degradation is off.
fn handle_breach(
    rung: Rung,
    breach: Breach,
    policy: &ExecPolicy,
    trips: &mut Vec<(Rung, Breach)>,
) -> Result<(), QueryError> {
    if breach == Breach::Cancelled {
        return Err(QueryError::Cancelled);
    }
    if policy.degrade == DegradeMode::Off {
        return Err(QueryError::BudgetExceeded(breach));
    }
    trips.push((rung, breach));
    Ok(())
}

/// The governed equivalent of the strategy dispatch in
/// [`evaluate_operands`]: compute the raw (pre-selection) set for the
/// requested strategy, charging `gov` and recording spans throughout.
#[allow(clippy::too_many_arguments)]
fn strategy_raw_traced(
    nav: Nav<'_>,
    query: &Query,
    strategy: Strategy,
    operands: &[FragmentSet],
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
    cache: Option<CacheRef<'_>>,
) -> Result<FragmentSet, Breach> {
    let doc = nav.doc();
    match strategy {
        Strategy::BruteForce => tracer.scoped("brute-force", stats, |stats| {
            brute_force_governed(nav, operands, stats, gov)
        }),
        Strategy::FixedPointNaive => {
            let fps: Vec<FragmentSet> = operands
                .iter()
                .zip(&query.terms)
                .map(|(f, t)| {
                    fixed_point_memo_traced(
                        nav,
                        f,
                        t,
                        FixpointMode::Naive,
                        stats,
                        gov,
                        tracer,
                        cache,
                    )
                })
                .collect::<Result<_, _>>()?;
            fold_pairwise_traced(nav, fps, stats, gov, tracer)
        }
        Strategy::FixedPointReduced => {
            let fps: Vec<FragmentSet> = operands
                .iter()
                .zip(&query.terms)
                .map(|(f, t)| {
                    fixed_point_memo_traced(
                        nav,
                        f,
                        t,
                        FixpointMode::Reduced,
                        stats,
                        gov,
                        tracer,
                        cache,
                    )
                })
                .collect::<Result<_, _>>()?;
            fold_pairwise_traced(nav, fps, stats, gov, tracer)
        }
        Strategy::PushDown => {
            let (anti, _rest) = query.filter.split_anti_monotonic();
            let mut acc: Option<FragmentSet> = None;
            for f in operands {
                gov.checkpoint()?;
                let fp = tracer.scoped("push-down-operand", stats, |stats| {
                    let base = select(doc, &anti, f, stats);
                    filtered_fixed_point_traced(nav, &base, &anti, stats, gov, tracer)
                })?;
                acc = Some(match acc {
                    None => fp,
                    Some(prev) => {
                        let joined = pairwise_join_traced(nav, &prev, &fp, stats, gov, tracer)?;
                        select(doc, &anti, &joined, stats)
                    }
                });
            }
            // invariant: operands are non-empty (term-less queries are
            // rejected before dispatch), so the loop assigned Some.
            Ok(acc.expect("at least one operand"))
        }
    }
}

/// Governed §4.1 brute force. An over-large operand reports
/// [`Breach::PowersetLimit`] instead of erroring, so the ladder can step
/// down to a plan that handles large operand sets.
fn brute_force_governed(
    nav: Nav<'_>,
    operands: &[FragmentSet],
    stats: &mut EvalStats,
    gov: &Governor,
) -> Result<FragmentSet, Breach> {
    for s in operands {
        if s.len() > crate::join::POWERSET_LIMIT {
            return Err(Breach::PowersetLimit);
        }
    }
    let slices: Vec<Vec<&crate::fragment::Fragment>> =
        operands.iter().map(|s| s.iter().collect()).collect();
    let mut out = FragmentSet::new();
    let mut masks: Vec<u32> = vec![1; slices.len()];
    loop {
        let chosen = slices.iter().zip(&masks).flat_map(|(fs, &m)| {
            fs.iter()
                .enumerate()
                .filter(move |(i, _)| m & (1 << i) != 0)
                .map(|(_, f)| *f)
        });
        // invariant: every odometer mask is at least 1, so at least one
        // fragment is always chosen.
        let joined = fragment_join_many(nav, chosen, stats).expect("non-empty choice");
        gov.charge_join(joined.size() as u64)?;
        gov.charge_fragments(1)?;
        stats.fragments_emitted += 1;
        if !out.insert(joined) {
            stats.duplicates_collapsed += 1;
        }
        let mut i = 0;
        loop {
            if i == masks.len() {
                return Ok(out);
            }
            masks[i] += 1;
            if masks[i] < (1u32 << slices[i].len()) {
                break;
            }
            masks[i] = 1;
            i += 1;
        }
    }
}

/// Governed left-to-right pairwise fold of operand fixed points, recorded
/// as one `join-fold` span with a `pairwise-join` child per step.
fn fold_pairwise_traced(
    nav: Nav<'_>,
    fps: Vec<FragmentSet>,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    tracer.scoped("join-fold", stats, |stats| {
        let mut it = fps.into_iter();
        // invariant: callers pass one set per query term and reject
        // term-less queries before reaching this fold.
        let mut acc = it.next().expect("at least one operand");
        for fp in it {
            gov.checkpoint()?;
            acc = pairwise_join_traced(nav, &acc, &fp, stats, gov, tracer)?;
        }
        Ok(acc)
    })
}

/// Governed and traced variant of the §3.3 filtered fixed point used by
/// push-down: a `filtered-fixpoint` span with one `round` child per
/// iteration.
fn filtered_fixed_point_traced(
    nav: Nav<'_>,
    f: &FragmentSet,
    anti: &FilterExpr,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    tracer.scoped("filtered-fixpoint", stats, |stats| {
        if f.is_empty() {
            return Ok(FragmentSet::new());
        }
        let mut h = f.clone();
        loop {
            gov.checkpoint()?;
            let next = tracer.scoped("round", stats, |stats| -> Result<FragmentSet, Breach> {
                stats.fixpoint_iterations += 1;
                let joined = pairwise_join_governed(nav, &h, f, stats, gov)?;
                Ok(select(nav.doc(), anti, &joined, stats).union(&h))
            })?;
            stats.fixpoint_checks += 1;
            if next.len() == h.len() {
                return Ok(h);
            }
            h = next;
        }
    })
}

/// The ladder's final rung: an SLCA-style approximation computed directly
/// over the operand sets, linear in document size.
///
/// One bottom-up mask pass (operand `i` marks bit `i` at the root of each
/// of its fragments) finds the smallest-LCA nodes — nodes whose subtree
/// contains a fragment root from *every* operand while no child's subtree
/// does. For each such node, the first fragment of each operand rooted in
/// its subtree is joined with [`fragment_join_many`]. Every output is the
/// join of exactly one fragment per operand — a powerset-join candidate —
/// so the result is a subset of the exact raw set.
///
/// More than 64 operands exceed the mask width; the approximation then
/// returns the empty set, which is trivially sound.
fn slca_approximation(
    nav: Nav<'_>,
    operands: &[FragmentSet],
    stats: &mut EvalStats,
) -> FragmentSet {
    let doc = nav.doc();
    let m = operands.len();
    if m == 0 || m > 64 {
        return FragmentSet::new();
    }
    let full: u64 = if m == 64 { u64::MAX } else { (1 << m) - 1 };
    let n = doc.len();
    let mut sub = vec![0u64; n];
    for (bit, set) in operands.iter().enumerate() {
        for f in set.iter() {
            sub[f.root().index()] |= 1 << bit;
        }
    }
    // Reverse pre-order: children precede parents when walking ids
    // backwards, so one pass accumulates subtree masks.
    for i in (1..n).rev() {
        // invariant: i > 0, and every non-root node has a parent.
        let p = doc
            .parent(xfrag_doc::NodeId(i as u32))
            .expect("non-root")
            .index();
        sub[p] |= sub[i];
    }
    if sub[doc.root().index()] != full {
        return FragmentSet::new();
    }
    let mut out = FragmentSet::new();
    for v in doc.node_ids() {
        if sub[v.index()] != full || doc.children(v).iter().any(|c| sub[c.index()] == full) {
            continue;
        }
        let lo = v.0;
        let hi = v.0 + doc.subtree_size(v);
        let picks = operands.iter().filter_map(|set| {
            set.iter().find(|f| {
                let r = f.root().0;
                r >= lo && r < hi
            })
        });
        if let Some(joined) = fragment_join_many(nav, picks, stats) {
            stats.fragments_emitted += 1;
            if !out.insert(joined) {
                stats.duplicates_collapsed += 1;
            }
        }
    }
    out
}

/// §4.1 brute force: enumerate every choice of non-empty subsets, one per
/// operand, and join each union.
fn brute_force(
    nav: Nav<'_>,
    operands: &[FragmentSet],
    stats: &mut EvalStats,
) -> Result<FragmentSet, PowersetTooLarge> {
    for s in operands {
        if s.len() > crate::join::POWERSET_LIMIT {
            return Err(PowersetTooLarge { len: s.len() });
        }
    }
    let slices: Vec<Vec<&crate::fragment::Fragment>> =
        operands.iter().map(|s| s.iter().collect()).collect();
    let mut out = FragmentSet::new();
    // Odometer over non-empty subset masks of each operand.
    let mut masks: Vec<u32> = vec![1; slices.len()];
    loop {
        let chosen = slices.iter().zip(&masks).flat_map(|(fs, &m)| {
            fs.iter()
                .enumerate()
                .filter(move |(i, _)| m & (1 << i) != 0)
                .map(|(_, f)| *f)
        });
        // invariant: every odometer mask is at least 1, so at least one
        // fragment is always chosen.
        let joined = fragment_join_many(nav, chosen, stats).expect("non-empty choice");
        stats.fragments_emitted += 1;
        if !out.insert(joined) {
            stats.duplicates_collapsed += 1;
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == masks.len() {
                return Ok(out);
            }
            masks[i] += 1;
            if masks[i] < (1u32 << slices[i].len()) {
                break;
            }
            masks[i] = 1;
            i += 1;
        }
    }
}

/// Hybrid structural + keyword evaluation — the integration the paper's
/// §6 attributes to Florescu et al. and Al-Khalifa et al.: a structural
/// path expression *scopes* the keyword query, and the algebra runs
/// inside each scope subtree independently. Returns `(scope, answers)`
/// pairs for the scopes that produced answers, in document order.
///
/// Scoping restricts the operand selections `Fi` to the scope's subtree,
/// so answer fragments are always contained in one scope — joins never
/// escape through the scope root's ancestors.
pub fn evaluate_scoped<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    query: &Query,
    scope_path: &str,
    strategy: Strategy,
) -> Result<Vec<(xfrag_doc::NodeId, QueryResult)>, ScopedQueryError> {
    let scopes = xfrag_doc::select_path(doc, scope_path).map_err(ScopedQueryError::Path)?;
    let nav = Nav::new(doc, index.labels());
    let mut out = Vec::new();
    for scope in scopes {
        // Restrict each operand's postings to the scope subtree; pre-order
        // spans make this a range filter on node ids.
        let lo = scope.0;
        let hi = scope.0 + doc.subtree_size(scope);
        let scoped_index = ScopedIndex {
            inner: index,
            lo,
            hi,
        };
        let r = evaluate_with_lookup(nav, &scoped_index, query, strategy)
            .map_err(ScopedQueryError::Query)?;
        if !r.fragments.is_empty() {
            out.push((scope, r));
        }
    }
    Ok(out)
}

/// Error type for [`evaluate_scoped`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopedQueryError {
    /// The scope path failed to parse.
    Path(xfrag_doc::path::PathError),
    /// The inner keyword query failed.
    Query(QueryError),
}

impl std::fmt::Display for ScopedQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScopedQueryError::Path(e) => write!(f, "{e}"),
            ScopedQueryError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScopedQueryError {}

/// Posting lookup abstraction so scoped evaluation can reuse the engine.
trait TermLookup {
    fn postings(&self, term: &str) -> Vec<xfrag_doc::NodeId>;
}

struct ScopedIndex<'a, I: ?Sized> {
    inner: &'a I,
    lo: u32,
    hi: u32,
}

impl<I: PostingsSource + ?Sized> TermLookup for ScopedIndex<'_, I> {
    fn postings(&self, term: &str) -> Vec<xfrag_doc::NodeId> {
        self.inner
            .postings(term)
            .iter()
            .copied()
            .filter(|n| n.0 >= self.lo && n.0 < self.hi)
            .collect()
    }
}

fn evaluate_with_lookup(
    nav: Nav<'_>,
    lookup: &dyn TermLookup,
    query: &Query,
    strategy: Strategy,
) -> Result<QueryResult, QueryError> {
    // Materialize the scoped postings into operand sets and reuse the
    // strategy machinery via the private operand-level entry point —
    // no need to rebuild a document-backed index per scope.
    crate::query::evaluate_operands(
        nav,
        query,
        strategy,
        &query
            .terms
            .iter()
            .map(|t| crate::set::FragmentSet::of_nodes(lookup.postings(t)))
            .collect::<Vec<_>>(),
    )
}

/// Convenience wrapper: the §4.2-style diagnostic of how much each operand
/// set would shrink under `⊖` — used by the cost model and the CLI explain
/// output.
pub fn operand_reduction_factors<I: PostingsSource + ?Sized>(
    doc: &Document,
    index: &I,
    query: &Query,
) -> Vec<(String, usize, usize)> {
    let nav = Nav::new(doc, index.labels());
    let mut stats = EvalStats::new();
    query
        .terms
        .iter()
        .map(|t| {
            let f = FragmentSet::of_nodes(index.postings(t).iter().copied());
            let r = reduce(nav, &f, &mut stats);
            (t.clone(), f.len(), r.len())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfrag_doc::{DocumentBuilder, InvertedIndex};

    /// article(0) -> sec(1){"alpha"} -> p(2){"alpha beta"}, p(3){"beta"};
    /// article -> sec(4) -> p(5){"alpha"}, p(6){"gamma"}
    fn doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("article");
        b.begin("sec");
        b.text("alpha");
        b.leaf("p", "alpha beta");
        b.leaf("p", "beta");
        b.end();
        b.begin("sec");
        b.leaf("p", "alpha");
        b.leaf("p", "gamma");
        b.end();
        b.end();
        b.finish().unwrap()
    }

    fn eval(q: &Query, s: Strategy) -> QueryResult {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        evaluate(&d, &idx, q, s).unwrap()
    }

    #[test]
    fn all_strategies_agree() {
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let results: Vec<QueryResult> = Strategy::ALL.iter().map(|&s| eval(&q, s)).collect();
        for r in &results[1..] {
            assert_eq!(r.fragments, results[0].fragments);
        }
        assert!(!results[0].fragments.is_empty());
    }

    #[test]
    fn duplicate_terms_are_deduplicated() {
        // "alpha alpha beta" must behave exactly like "alpha beta": same
        // answer set AND same join work — before deduplication the repeat
        // operand multiplied every downstream join.
        let deduped = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        let dupes = Query::new(["alpha", "Alpha", "beta", "alpha"], FilterExpr::MaxSize(3));
        assert_eq!(dupes.terms, vec!["alpha".to_string(), "beta".to_string()]);
        for &s in &Strategy::ALL {
            let a = eval(&deduped, s);
            let b = eval(&dupes, s);
            assert_eq!(a.fragments, b.fragments, "{s:?}");
            assert_eq!(a.stats.joins, b.stats.joins, "{s:?}");
        }
    }

    #[test]
    fn conjunctive_semantics_unknown_term_empties() {
        let q = Query::new(["alpha", "zzz"], FilterExpr::True);
        for s in Strategy::ALL {
            assert!(eval(&q, s).fragments.is_empty(), "{}", s.name());
        }
    }

    #[test]
    fn no_terms_is_an_error() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let q = Query::new(Vec::<&str>::new(), FilterExpr::True);
        assert_eq!(
            evaluate(&d, &idx, &q, Strategy::PushDown).unwrap_err(),
            QueryError::NoTerms
        );
        // Terms that normalize to nothing behave the same.
        let q = Query::parse("  ,. ", FilterExpr::True);
        assert_eq!(
            evaluate(&d, &idx, &q, Strategy::PushDown).unwrap_err(),
            QueryError::NoTerms
        );
    }

    #[test]
    fn single_term_query_is_operand_fixed_point() {
        // "beta" occurs at n2 and n3 (siblings under n1): answer should
        // contain ⟨n2⟩, ⟨n3⟩ and their join ⟨n1,n2,n3⟩.
        let q = Query::new(["beta"], FilterExpr::True);
        let r = eval(&q, Strategy::FixedPointNaive);
        assert_eq!(r.fragments.len(), 3);
        let q_filtered = Query::new(["beta"], FilterExpr::MaxSize(1));
        let r = eval(&q_filtered, Strategy::PushDown);
        assert_eq!(r.fragments.len(), 2);
    }

    #[test]
    fn three_term_query_consistency() {
        let q = Query::new(["alpha", "beta", "gamma"], FilterExpr::MaxSize(10));
        let results: Vec<QueryResult> = Strategy::ALL.iter().map(|&s| eval(&q, s)).collect();
        for r in &results[1..] {
            assert_eq!(r.fragments, results[0].fragments);
        }
        // gamma only at n6; any answer must span both sec subtrees → root n0.
        for f in results[0].fragments.iter() {
            assert!(f.contains_node(xfrag_doc::NodeId(0)));
        }
    }

    #[test]
    fn pushdown_does_less_join_work() {
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(2));
        let naive = eval(&q, Strategy::FixedPointNaive);
        let push = eval(&q, Strategy::PushDown);
        assert_eq!(naive.fragments, push.fragments);
        assert!(
            push.stats.joins <= naive.stats.joins,
            "push-down should not join more: {} vs {}",
            push.stats.joins,
            naive.stats.joins
        );
    }

    #[test]
    fn strict_leaf_semantics_prunes_internal_keyword_answers() {
        // Query {alpha, beta}: fragment ⟨n1,n3⟩ joins keyword node n1
        // (alpha, internal? no — n1 has child n3 in fragment; alpha is at
        // n1 which is internal) — strict mode must reject it, relaxed mode
        // keeps it.
        let relaxed = Query::new(["alpha", "beta"], FilterExpr::True);
        let strict = relaxed.clone().with_strict_leaf_semantics();
        let r_rel = eval(&relaxed, Strategy::FixedPointNaive);
        let r_str = eval(&strict, Strategy::FixedPointNaive);
        assert!(r_str.fragments.len() < r_rel.fragments.len());
        for f in r_str.fragments.iter() {
            // every term occurs at some fragment leaf
            for t in &strict.terms {
                assert!(FilterExpr::LeafTerm(t.clone()).eval_uncounted(&doc(), f));
            }
        }
    }

    #[test]
    fn strategy_parsing_and_names() {
        for s in Strategy::ALL {
            assert_eq!(s.name().parse::<Strategy>().unwrap(), s);
        }
        assert!("bogus".parse::<Strategy>().is_err());
    }

    #[test]
    fn scoped_hybrid_query() {
        // article(0) -> sec(1){alpha} -> p(2){alpha beta}, p(3){beta};
        // article -> sec(4) -> p(5){alpha}, p(6){gamma}
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let q = Query::new(["alpha", "beta"], FilterExpr::MaxSize(3));
        // Scoped to each <sec>: only the first section answers, and no
        // fragment escapes its scope subtree.
        let scoped = evaluate_scoped(&d, &idx, &q, "/article/sec", Strategy::PushDown).unwrap();
        assert_eq!(scoped.len(), 1);
        let (scope, r) = &scoped[0];
        assert_eq!(*scope, xfrag_doc::NodeId(1));
        assert!(!r.fragments.is_empty());
        for f in r.fragments.iter() {
            for n in f.iter() {
                assert!(d.is_ancestor_or_self(*scope, n), "{f} escaped scope");
            }
        }
        // An unscoped query joins across sections; a scope forbids it.
        let q_cross = Query::new(["beta", "gamma"], FilterExpr::True);
        let unscoped = evaluate(&d, &idx, &q_cross, Strategy::PushDown).unwrap();
        assert!(!unscoped.fragments.is_empty());
        let scoped =
            evaluate_scoped(&d, &idx, &q_cross, "/article/sec", Strategy::PushDown).unwrap();
        assert!(
            scoped.is_empty(),
            "beta and gamma live in different sections"
        );
    }

    #[test]
    fn scoped_errors() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let q = Query::new(["alpha"], FilterExpr::True);
        assert!(matches!(
            evaluate_scoped(&d, &idx, &q, "no-slash", Strategy::PushDown),
            Err(ScopedQueryError::Path(_))
        ));
        let empty = Query::new(Vec::<&str>::new(), FilterExpr::True);
        assert!(matches!(
            evaluate_scoped(&d, &idx, &empty, "//sec", Strategy::PushDown),
            Err(ScopedQueryError::Query(QueryError::NoTerms))
        ));
    }

    #[test]
    fn reduction_factors_reported() {
        let d = doc();
        let idx = InvertedIndex::build(&d);
        let q = Query::new(["alpha"], FilterExpr::True);
        let rfs = operand_reduction_factors(&d, &idx, &q);
        assert_eq!(rfs.len(), 1);
        let (term, a, b) = &rfs[0];
        assert_eq!(term, "alpha");
        // alpha at n1, n2, n5: n1 ⊆ n2 ⋈ n5 (path through n0? no —
        // path(n2,n5) = n2,n1,n0,n4,n5 ∋ n1) → n1 eliminated.
        assert_eq!(*a, 3);
        assert_eq!(*b, 2);
    }
}
