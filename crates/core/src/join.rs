//! The three join operations of §2.2.
//!
//! * [`fragment_join`] — Definition 4: the *minimal* fragment containing
//!   both operands. In a tree, the minimal connected superset of two
//!   connected sets is `f1 ∪ f2 ∪ path(root(f1), root(f2))`: every node of
//!   each operand is already connected to its own root, the unique tree
//!   path between the two roots is contained in *every* connected superset
//!   of both, and adding exactly that path yields a connected set — hence
//!   minimality. The result's root is `lca(root(f1), root(f2))`.
//! * [`pairwise_join`] — Definition 5: elementwise join of two sets.
//! * [`powerset_join`] — Definition 6, implemented literally by subset
//!   enumeration. Exponential by design; it is the executable *oracle*
//!   against which Theorem 2's fixed-point rewrite is property-tested, and
//!   the paper's §4.1 "brute force" strategy.

use crate::budget::{Breach, Governor};
use crate::fragment::Fragment;
use crate::nav::Nav;
use crate::set::FragmentSet;
use crate::stats::EvalStats;
use crate::trace::Tracer;
use xfrag_doc::NodeId;

/// `f1 ⋈ f2` (Definition 4).
///
/// ```
/// use xfrag_core::{fragment_join, EvalStats, Fragment};
/// use xfrag_doc::{parse_str, NodeId};
///
/// // r(0) -> a(1) -> b(2); r -> c(3)
/// let doc = parse_str("<r><a><b/></a><c/></r>").unwrap();
/// let mut stats = EvalStats::new();
/// let j = fragment_join(
///     &doc,
///     &Fragment::node(NodeId(2)),
///     &Fragment::node(NodeId(3)),
///     &mut stats,
/// );
/// // Minimal connected superset: both nodes plus the path through the root.
/// assert_eq!(j.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
/// assert_eq!(j.root(), NodeId(0));
/// ```
pub fn fragment_join<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &Fragment,
    f2: &Fragment,
    stats: &mut EvalStats,
) -> Fragment {
    let nav = nav.into();
    stats.joins += 1;
    stats.nodes_merged += (f1.size() + f2.size()) as u64;

    // Fast path: containment (absorption law f1 ⋈ f2 = f1 when f2 ⊆ f1).
    if f2.is_subfragment_of(f1) {
        return f1.clone();
    }
    if f1.is_subfragment_of(f2) {
        return f2.clone();
    }

    let path = nav.path(f1.root(), f2.root(), stats);
    // Merge the two sorted operand node lists, then splice in path nodes.
    let mut merged: Vec<NodeId> = Vec::with_capacity(f1.size() + f2.size() + path.len());
    let (a, b) = (f1.nodes(), f2.nodes());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                merged.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&a[i..]);
    merged.extend_from_slice(&b[j..]);
    for n in path {
        if merged.binary_search(&n).is_err() {
            let pos = merged.partition_point(|&m| m < n);
            merged.insert(pos, n);
        }
    }
    Fragment::from_sorted_unchecked(merged)
}

/// N-ary fragment join `⋈{f1, …, fn}` — well-defined by associativity and
/// commutativity (Definition 6 uses it to fold subset unions).
pub fn fragment_join_all<'a, 'n>(
    nav: impl Into<Nav<'n>>,
    frags: impl IntoIterator<Item = &'a Fragment>,
    stats: &mut EvalStats,
) -> Option<Fragment> {
    let nav = nav.into();
    let mut it = frags.into_iter();
    let first = it.next()?.clone();
    Some(it.fold(first, |acc, f| fragment_join(nav, &acc, f, stats)))
}

/// Optimized n-ary join: computes `⋈{f1, …, fn}` in one pass instead of
/// folding binary joins.
///
/// The minimal connected superset of connected sets `f1 … fn` is their
/// union plus the Steiner span of their roots, and in a tree the Steiner
/// span of a node set equals the union of the paths from each node to the
/// set's common LCA (any pairwise path `r_i → r_j` factors through
/// `lca(r_i, r_j)`, which lies on both root-to-global-LCA paths).
/// A property test checks equality with the binary fold.
///
/// Cost: O(Σ|fi| + n · depth) versus the fold's O(n · result size).
/// Counts as `n − 1` joins in `stats` to stay comparable with the fold.
pub fn fragment_join_many<'a, 'n>(
    nav: impl Into<Nav<'n>>,
    frags: impl IntoIterator<Item = &'a Fragment>,
    stats: &mut EvalStats,
) -> Option<Fragment> {
    let nav = nav.into();
    let frags: Vec<&Fragment> = frags.into_iter().collect();
    match frags.len() {
        0 => return None,
        1 => return Some(frags[0].clone()),
        _ => {}
    }
    stats.joins += (frags.len() - 1) as u64;
    let mut nodes: Vec<NodeId> = Vec::with_capacity(frags.iter().map(|f| f.size()).sum());
    for f in &frags {
        stats.nodes_merged += f.size() as u64;
        nodes.extend_from_slice(f.nodes());
    }
    // Common LCA of all roots.
    let mut lca = frags[0].root();
    for f in &frags[1..] {
        lca = nav.lca(lca, f.root(), stats);
    }
    // Paths from every root up to the common LCA.
    for f in &frags {
        let mut x = f.root();
        while x != lca {
            nodes.push(x);
            // invariant: x != lca and lca is an ancestor of x (it is the
            // common LCA of all roots), so x cannot be the document root
            // and always has a parent.
            x = nav.parent(x, stats).expect("non-root on path to LCA");
        }
    }
    nodes.push(lca);
    nodes.sort_unstable();
    nodes.dedup();
    Some(Fragment::from_sorted_unchecked(nodes))
}

/// `F1 ⋈ F2` (Definition 5): pairwise fragment join.
pub fn pairwise_join<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &FragmentSet,
    f2: &FragmentSet,
    stats: &mut EvalStats,
) -> FragmentSet {
    match pairwise_join_governed(nav, f1, f2, stats, &Governor::unlimited()) {
        Ok(out) => out,
        // invariant: an unlimited governor has no limits, no deadline and
        // no cancel token, so no charge can ever breach.
        Err(_) => unreachable!("unlimited governor breached"),
    }
}

/// [`pairwise_join`] under a [`Governor`]: every join kernel is charged,
/// and the loop aborts with the breach as soon as the budget trips.
pub fn pairwise_join_governed<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &FragmentSet,
    f2: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    let mut out = FragmentSet::new();
    for a in f1.iter() {
        for b in f2.iter() {
            gov.charge_join((a.size() + b.size()) as u64)?;
            let j = fragment_join(nav, a, b, stats);
            gov.charge_fragments(1)?;
            stats.fragments_emitted += 1;
            if !out.insert(j) {
                stats.duplicates_collapsed += 1;
            }
        }
    }
    Ok(out)
}

/// [`pairwise_join_governed`] recorded as one `pairwise-join` span.
pub fn pairwise_join_traced<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &FragmentSet,
    f2: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    tracer.scoped("pairwise-join", stats, |stats| {
        pairwise_join_governed(nav, f1, f2, stats, gov)
    })
}

/// Inputs larger than this are rejected by [`powerset_join`]: the literal
/// operator enumerates `2^|F|` subsets and exists as a correctness oracle,
/// not a production path.
pub const POWERSET_LIMIT: usize = 16;

/// Error for oracle-size violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowersetTooLarge {
    /// Size of the offending operand.
    pub len: usize,
}

impl std::fmt::Display for PowersetTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "powerset join operand has {} fragments (limit {POWERSET_LIMIT}); use the fixed-point rewrite",
            self.len
        )
    }
}

impl std::error::Error for PowersetTooLarge {}

/// `F1 ⋈* F2` (Definition 6), by literal subset enumeration.
pub fn powerset_join<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &FragmentSet,
    f2: &FragmentSet,
    stats: &mut EvalStats,
) -> Result<FragmentSet, PowersetTooLarge> {
    for s in [f1, f2] {
        if s.len() > POWERSET_LIMIT {
            return Err(PowersetTooLarge { len: s.len() });
        }
    }
    match powerset_join_governed(nav, f1, f2, stats, &Governor::unlimited()) {
        Ok(out) => Ok(out),
        // invariant: operand sizes were checked above and an unlimited
        // governor cannot breach.
        Err(_) => unreachable!("unlimited governor breached"),
    }
}

/// [`powerset_join`] under a [`Governor`]. Size violations surface as
/// [`Breach::PowersetLimit`] so the degradation ladder can treat an
/// over-large literal enumeration like any other exhausted budget.
pub fn powerset_join_governed<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &FragmentSet,
    f2: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    for s in [f1, f2] {
        if s.len() > POWERSET_LIMIT {
            return Err(Breach::PowersetLimit);
        }
    }
    let mut out = FragmentSet::new();
    let a: Vec<&Fragment> = f1.iter().collect();
    let b: Vec<&Fragment> = f2.iter().collect();
    for ma in 1u32..(1 << a.len()) {
        gov.checkpoint()?;
        for mb in 1u32..(1 << b.len()) {
            let chosen = a
                .iter()
                .enumerate()
                .filter(|(i, _)| ma & (1 << i) != 0)
                .map(|(_, f)| *f)
                .chain(
                    b.iter()
                        .enumerate()
                        .filter(|(i, _)| mb & (1 << i) != 0)
                        .map(|(_, f)| *f),
                );
            // invariant: both masks are non-zero, so at least one
            // fragment is always chosen.
            let joined = fragment_join_many(nav, chosen, stats).expect("non-empty selection");
            gov.charge_join(joined.size() as u64)?;
            gov.charge_fragments(1)?;
            stats.fragments_emitted += 1;
            if !out.insert(joined) {
                stats.duplicates_collapsed += 1;
            }
        }
    }
    Ok(out)
}

/// [`powerset_join_governed`] recorded as one `powerset-join` span.
pub fn powerset_join_traced<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &FragmentSet,
    f2: &FragmentSet,
    stats: &mut EvalStats,
    gov: &Governor,
    tracer: &Tracer<'_>,
) -> Result<FragmentSet, Breach> {
    let nav = nav.into();
    tracer.scoped("powerset-join", stats, |stats| {
        powerset_join_governed(nav, f1, f2, stats, gov)
    })
}

/// The unique *candidate fragment sets* of a powerset join — the second
/// column of the paper's Table 1: each distinct union `F1' ∪ F2'` of
/// non-empty subsets, paired with the fragment its n-ary join produces.
/// Returned in first-encountered order (enumeration by ascending masks).
pub fn powerset_join_candidates<'n>(
    nav: impl Into<Nav<'n>>,
    f1: &FragmentSet,
    f2: &FragmentSet,
    stats: &mut EvalStats,
) -> Result<Vec<(Vec<Fragment>, Fragment)>, PowersetTooLarge> {
    let nav = nav.into();
    for s in [f1, f2] {
        if s.len() > POWERSET_LIMIT {
            return Err(PowersetTooLarge { len: s.len() });
        }
    }
    let a: Vec<&Fragment> = f1.iter().collect();
    let b: Vec<&Fragment> = f2.iter().collect();
    let mut seen: std::collections::HashSet<Vec<Fragment>> = Default::default();
    let mut out = Vec::new();
    for ma in 1u32..(1 << a.len()) {
        for mb in 1u32..(1 << b.len()) {
            let mut union: Vec<Fragment> = a
                .iter()
                .enumerate()
                .filter(|(i, _)| ma & (1 << i) != 0)
                .map(|(_, f)| (*f).clone())
                .collect();
            for (i, f) in b.iter().enumerate() {
                if mb & (1 << i) != 0 && !union.contains(f) {
                    union.push((*f).clone());
                }
            }
            union.sort();
            if seen.insert(union.clone()) {
                // invariant: ma is non-zero, so union holds at least one
                // fragment from f1.
                let joined =
                    fragment_join_all(nav, union.iter(), stats).expect("non-empty candidate");
                out.push((union, joined));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xfrag_doc::{Document, DocumentBuilder};

    /// The tree of the paper's Figure 3(a), renumbered to pre-order from 0:
    ///
    /// ```text
    ///            n0
    ///      ┌─────┼─────┐
    ///      n1    n7    n9
    ///      │     │
    ///      n2    n8
    ///    ┌─┴─┐
    ///    n3  n5
    ///    │   │
    ///    n4  n6
    /// ```
    ///
    /// (The paper labels these n1..n10; the mapping is paper nᵢ → ours
    /// n(i-1) because our ids are 0-based pre-order ranks.)
    pub(crate) fn figure3_doc() -> Document {
        let mut b = DocumentBuilder::new();
        b.begin("n0");
        {
            b.begin("n1");
            {
                b.begin("n2");
                b.begin("n3");
                b.leaf("n4", "");
                b.end();
                b.begin("n5");
                b.leaf("n6", "");
                b.end();
                b.end();
            }
            b.end();
            b.begin("n7");
            b.leaf("n8", "");
            b.end();
            b.leaf("n9", "");
        }
        b.end();
        b.finish().unwrap()
    }

    fn frag(doc: &Document, ns: &[u32]) -> Fragment {
        Fragment::from_nodes(doc, ns.iter().map(|&n| NodeId(n))).unwrap()
    }

    /// Figure 3(b): ⟨n4,n5⟩ ⋈ ⟨n7,n9⟩ = ⟨n3,n4,n5,n6,n7,n9⟩ in paper
    /// numbering, i.e. ⟨n3,n4⟩ ⋈ ⟨n6,n8⟩ = ⟨n2..n6,n8⟩ in ours.
    #[test]
    fn figure3b_fragment_join() {
        let d = figure3_doc();
        let f1 = frag(&d, &[3, 4]);
        let f2 = frag(&d, &[5, 6]); // paper ⟨n6,n7⟩
        let mut st = EvalStats::new();
        let j = fragment_join(&d, &f1, &f2, &mut st);
        assert_eq!(j, frag(&d, &[2, 3, 4, 5, 6]));
        assert_eq!(j.root(), NodeId(2));
        assert_eq!(st.joins, 1);
    }

    #[test]
    fn join_of_disjoint_subtrees_passes_root() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let j = fragment_join(&d, &frag(&d, &[4]), &frag(&d, &[8]), &mut st);
        assert_eq!(j, frag(&d, &[0, 1, 2, 3, 4, 7, 8]));
    }

    #[test]
    fn join_laws_idempotent_commutative_absorptive() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let f1 = frag(&d, &[2, 3, 4]);
        let f2 = frag(&d, &[5]);
        // Idempotency
        assert_eq!(fragment_join(&d, &f1, &f1, &mut st), f1);
        // Commutativity
        assert_eq!(
            fragment_join(&d, &f1, &f2, &mut st),
            fragment_join(&d, &f2, &f1, &mut st)
        );
        // Absorption: f2' ⊆ f1 ⇒ f1 ⋈ f2' = f1
        let sub = frag(&d, &[3, 4]);
        assert_eq!(fragment_join(&d, &f1, &sub, &mut st), f1);
    }

    #[test]
    fn join_associative_on_example() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let (a, b, c) = (frag(&d, &[4]), frag(&d, &[6]), frag(&d, &[9]));
        let left = fragment_join(&d, &fragment_join(&d, &a, &b, &mut st), &c, &mut st);
        let right = fragment_join(&d, &a, &fragment_join(&d, &b, &c, &mut st), &mut st);
        assert_eq!(left, right);
    }

    #[test]
    fn join_all_folds() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let fs = [frag(&d, &[4]), frag(&d, &[6]), frag(&d, &[8])];
        let j = fragment_join_all(&d, fs.iter(), &mut st).unwrap();
        assert_eq!(j, frag(&d, &[0, 1, 2, 3, 4, 5, 6, 7, 8]));
        assert!(fragment_join_all(&d, [].iter(), &mut st).is_none());
    }

    #[test]
    fn join_many_matches_fold() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        for fs in [
            vec![frag(&d, &[4])],
            vec![frag(&d, &[4]), frag(&d, &[6])],
            vec![frag(&d, &[4]), frag(&d, &[6]), frag(&d, &[8])],
            vec![frag(&d, &[2, 3, 4]), frag(&d, &[9]), frag(&d, &[5, 6])],
            vec![frag(&d, &[0]), frag(&d, &[4]), frag(&d, &[4])],
        ] {
            let fold = fragment_join_all(&d, fs.iter(), &mut st);
            let many = fragment_join_many(&d, fs.iter(), &mut st);
            assert_eq!(fold, many, "inputs {fs:?}");
        }
        assert!(fragment_join_many(&d, [].iter(), &mut st).is_none());
        // Join accounting matches the fold convention: n − 1 joins.
        let mut st2 = EvalStats::new();
        let fs = [frag(&d, &[4]), frag(&d, &[6]), frag(&d, &[8])];
        fragment_join_many(&d, fs.iter(), &mut st2);
        assert_eq!(st2.joins, 2);
    }

    /// Figure 3(c): pairwise join of F1 = {f11, f12}, F2 = {f21, f22}
    /// produces the four pairwise joins.
    #[test]
    fn figure3c_pairwise() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let f11 = frag(&d, &[3, 4]);
        let f12 = frag(&d, &[9]);
        let f21 = frag(&d, &[5, 6]);
        let f22 = frag(&d, &[8]);
        let s1 = FragmentSet::from_iter([f11.clone(), f12.clone()]);
        let s2 = FragmentSet::from_iter([f21.clone(), f22.clone()]);
        let out = pairwise_join(&d, &s1, &s2, &mut st);
        let expect = FragmentSet::from_iter([
            fragment_join(&d, &f11, &f21, &mut st),
            fragment_join(&d, &f11, &f22, &mut st),
            fragment_join(&d, &f12, &f21, &mut st),
            fragment_join(&d, &f12, &f22, &mut st),
        ]);
        assert_eq!(out, expect);
        assert_eq!(st.fragments_emitted, 4);
    }

    #[test]
    fn pairwise_laws() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let s1 = FragmentSet::from_iter([frag(&d, &[4]), frag(&d, &[6])]);
        let s2 = FragmentSet::from_iter([frag(&d, &[8]), frag(&d, &[9])]);
        let s3 = FragmentSet::from_iter([frag(&d, &[2])]);
        // Commutativity
        assert_eq!(
            pairwise_join(&d, &s1, &s2, &mut st),
            pairwise_join(&d, &s2, &s1, &mut st)
        );
        // Associativity
        let l = pairwise_join(&d, &pairwise_join(&d, &s1, &s2, &mut st), &s3, &mut st);
        let r = pairwise_join(&d, &s1, &pairwise_join(&d, &s2, &s3, &mut st), &mut st);
        assert_eq!(l, r);
        // Monotonicity: F1 ⋈ F1 ⊇ F1
        let sq = pairwise_join(&d, &s1, &s1, &mut st);
        for f in s1.iter() {
            assert!(sq.contains(f));
        }
        // Distributivity over union
        let l = pairwise_join(&d, &s1, &s2.union(&s3), &mut st);
        let r = pairwise_join(&d, &s1, &s2, &mut st).union(&pairwise_join(&d, &s1, &s3, &mut st));
        assert_eq!(l, r);
    }

    /// Pairwise join is NOT idempotent (the paper notes counterexamples
    /// exist): joining two separated nodes creates a larger fragment not
    /// in the original set.
    #[test]
    fn pairwise_not_idempotent() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let s = FragmentSet::from_iter([frag(&d, &[4]), frag(&d, &[6])]);
        let sq = pairwise_join(&d, &s, &s, &mut st);
        assert_ne!(sq, s);
        assert!(sq.contains(&frag(&d, &[2, 3, 4, 5, 6])));
    }

    /// Figure 3(d): powerset join produces strictly more fragments than
    /// pairwise join on the same operands.
    #[test]
    fn figure3d_powerset_superset_of_pairwise() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let s1 = FragmentSet::from_iter([frag(&d, &[3, 4]), frag(&d, &[9])]);
        let s2 = FragmentSet::from_iter([frag(&d, &[5, 6]), frag(&d, &[8])]);
        let pw = pairwise_join(&d, &s1, &s2, &mut st);
        let ps = powerset_join(&d, &s1, &s2, &mut st).unwrap();
        for f in pw.iter() {
            assert!(ps.contains(f), "powerset must contain pairwise result {f}");
        }
        assert!(ps.len() > pw.len());
    }

    #[test]
    fn powerset_singletons_degenerates_to_pairwise() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let s1 = FragmentSet::from_iter([frag(&d, &[4])]);
        let s2 = FragmentSet::from_iter([frag(&d, &[6])]);
        let ps = powerset_join(&d, &s1, &s2, &mut st).unwrap();
        assert_eq!(ps, pairwise_join(&d, &s1, &s2, &mut st));
    }

    #[test]
    fn powerset_rejects_oversized() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let big = FragmentSet::from_iter((0..10).flat_map(|i| {
            (0..2).map(move |j| Fragment::node(NodeId(i * 1000 + j))) // ids unused
        }));
        let s2 = FragmentSet::from_iter([frag(&d, &[6])]);
        assert!(powerset_join(&d, &big, &s2, &mut st).is_err());
    }

    #[test]
    fn candidates_unique_and_consistent() {
        let d = figure3_doc();
        let mut st = EvalStats::new();
        let s1 = FragmentSet::from_iter([frag(&d, &[4]), frag(&d, &[6])]);
        let s2 = FragmentSet::from_iter([frag(&d, &[6]), frag(&d, &[8])]);
        let cands = powerset_join_candidates(&d, &s1, &s2, &mut st).unwrap();
        // Candidate unions must be unique.
        let mut seen = std::collections::HashSet::new();
        for (u, _) in &cands {
            assert!(seen.insert(u.clone()));
        }
        // And their joins must reproduce the powerset-join output set.
        let ps = powerset_join(&d, &s1, &s2, &mut st).unwrap();
        let from_cands = FragmentSet::from_iter(cands.into_iter().map(|(_, f)| f));
        assert_eq!(ps, from_cands);
    }
}
